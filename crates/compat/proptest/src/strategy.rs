//! The [`Strategy`] trait and the primitive strategies: ranges, tuples, constants, mapping.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type, mirroring upstream `proptest::strategy::Strategy`.
///
/// Unlike upstream there is no shrinking: a strategy simply draws a fresh value from the test
/// RNG for every case.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(v)` for every value `v` this strategy produces,
    /// mirroring upstream `prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A [`Strategy`] is generated through a shared reference, so `&S` is a strategy too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces the same value, mirroring upstream `Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // Inclusive width in [1, 2^64]; multiply-shift keeps the endpoints reachable
                // even for full-domain ranges like `0..=T::MAX`.
                let width = ((end as i128).wrapping_sub(start as i128) as u128) + 1;
                let offset = ((rand::RngCore::next_u64(rng.rng()) as u128)
                    .wrapping_mul(width)
                    >> 64) as i128;
                ((start as i128) + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident, $idx:tt);+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, 0)
    (A, 0; B, 1)
    (A, 0; B, 1; C, 2)
    (A, 0; B, 1; C, 2; D, 3)
    (A, 0; B, 1; C, 2; D, 3; E, 4)
    (A, 0; B, 1; C, 2; D, 3; E, 4; F, 5)
    (A, 0; B, 1; C, 2; D, 3; E, 4; F, 5; G, 6)
    (A, 0; B, 1; C, 2; D, 3; E, 4; F, 5; G, 6; H, 7)
    (A, 0; B, 1; C, 2; D, 3; E, 4; F, 5; G, 6; H, 7; I, 8)
    (A, 0; B, 1; C, 2; D, 3; E, 4; F, 5; G, 6; H, 7; I, 8; J, 9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_range_reaches_both_endpoints_at_type_max() {
        let mut rng = TestRng::deterministic("inclusive_range_reaches_both_endpoints");
        let strat = 0u8..=u8::MAX;
        let mut seen_min = false;
        let mut seen_max = false;
        for _ in 0..10_000 {
            let v = strat.generate(&mut rng);
            seen_min |= v == 0;
            seen_max |= v == u8::MAX;
        }
        assert!(seen_min && seen_max, "min {seen_min}, max {seen_max}");
    }

    #[test]
    fn inclusive_range_respects_signed_bounds() {
        let mut rng = TestRng::deterministic("inclusive_range_respects_signed_bounds");
        let strat = -3i64..=3;
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((-3..=3).contains(&v), "{v}");
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("prop_map_and_tuples_compose");
        let strat = (0usize..10, 0u32..5).prop_map(|(a, b)| a + b as usize);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 14);
        }
    }
}
