//! Strategies that sample from explicit value lists, mirroring upstream `proptest::sample`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// Returns a strategy choosing uniformly among the given values, mirroring upstream
/// `proptest::sample::select`. Accepts anything convertible to a `Vec` (a `Vec` itself, or a
/// slice of `Clone` items).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn select<T, I>(values: I) -> Select<T>
where
    T: Clone + Debug,
    I: Into<Vec<T>>,
{
    let values = values.into();
    assert!(!values.is_empty(), "cannot select from an empty list");
    Select { values }
}

/// The result of [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone + Debug> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.rng().gen_range(0..self.values.len());
        self.values[index].clone()
    }
}
