//! Offline, API-compatible subset of the [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! This container has no access to a crates.io registry, so the workspace vendors the slice of
//! the proptest API its property tests use: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), the [`strategy::Strategy`] trait with `prop_map`, range / tuple /
//! boolean / collection / sample strategies, and the [`prop_assert!`] / [`prop_assert_eq!`]
//! assertion forms.
//!
//! Semantics differ from upstream in one deliberate way: there is **no shrinking**. A failing
//! case panics immediately with the generated inputs printed, which is enough to reproduce it
//! (generation is fully deterministic per test name). If registry access ever becomes
//! available, delete `crates/compat/proptest` and point the `proptest` entry of
//! `[workspace.dependencies]` at crates.io — no call site changes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bool;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `proptest::prop` re-export module, so call sites can write
/// `prop::sample::select`, `prop::collection::vec` and `prop::bool::ANY` after importing the
/// [`prelude`].
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines a block of property tests, mirroring upstream's `proptest!` macro.
///
/// Supports the optional `#![proptest_config(expr)]` header and any number of
/// `fn name(arg in strategy, ...) { body }` items carrying outer attributes (including the
/// `#[test]` attribute itself and doc comments, both of which are re-emitted verbatim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            // A tuple of strategies is itself a strategy, which lets the failure path below
            // regenerate the exact inputs from a pre-generation RNG snapshot instead of
            // Debug-formatting every passing case eagerly.
            let strategies = ($(&($strat),)+);
            for case in 0..config.cases {
                let rng_before = rng.clone();
                let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    let mut replay = rng_before;
                    let inputs =
                        $crate::strategy::Strategy::generate(&strategies, &mut replay);
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs ({}): {:?}",
                        case + 1,
                        config.cases,
                        err,
                        stringify!($($arg),+),
                        inputs,
                    );
                }
            }
        }
    )*};
}

/// Fails the enclosing property test if the condition is false, mirroring upstream
/// `prop_assert!`. Accepts an optional trailing format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the enclosing property test if the two expressions are unequal, mirroring upstream
/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the enclosing property test if the two expressions are equal, mirroring upstream
/// `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}
