//! Boolean strategies, mirroring upstream `proptest::bool`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Generates `true` and `false` with equal probability, mirroring upstream `prop::bool::ANY`.
pub const ANY: Any = Any;

/// The type of [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng().gen_range(0u32..2) == 1
    }
}
