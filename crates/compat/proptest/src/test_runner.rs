//! Test configuration, the deterministic per-test RNG, and the failure type returned by the
//! `prop_assert*` macros.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test-block configuration, mirroring upstream `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG strategies draw from. Seeded deterministically from the test's name so every run
/// (and every failure report) is reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates the RNG for the named test, deterministically.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-spread 64-bit seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { rng: StdRng::seed_from_u64(hash) }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a single test case failed, mirroring upstream `TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure carrying the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The result type the bodies of `proptest!` cases are evaluated as.
pub type TestCaseResult = Result<(), TestCaseError>;
