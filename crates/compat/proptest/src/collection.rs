//! Collection strategies, mirroring upstream `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive size specification for generated collections, mirroring upstream
/// `SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self { min: exact, max: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self { min: range.start, max: range.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        Self { min: *range.start(), max: range.end() + 1 }
    }
}

/// Returns a strategy generating `Vec`s whose length lies in `size` and whose elements come
/// from `element`, mirroring upstream `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.rng().gen_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
