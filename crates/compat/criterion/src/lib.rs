//! Offline, API-compatible subset of the [`criterion`](https://docs.rs/criterion/0.5) crate.
//!
//! This container has no access to a crates.io registry, so the workspace vendors the slice of
//! the criterion API its benches use: [`Criterion`] with builder-style configuration,
//! [`BenchmarkGroup`]s, [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery this harness times a warm-up, then measures
//! `sample_size` samples (bounded by `measurement_time`) and reports the per-iteration mean,
//! minimum and maximum as one line per benchmark. That is deliberately simple but honest enough
//! to compare the orders of magnitude EXPERIMENTS.md records. If registry access ever becomes
//! available, delete `crates/compat/criterion` and point the `criterion` entry of
//! `[workspace.dependencies]` at crates.io — no call site changes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver, mirroring upstream `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
    /// True when invoked with `--test` (as `cargo test` does for bench targets): run every
    /// benchmark body exactly once and skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration run before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`--test`, `--bench`, a positional name filter, and the
    /// value-carrying upstream flags), as the expansion of [`criterion_group!`] does.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Value-carrying flags this harness honors.
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                "--warm-up-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse().ok()) {
                        self.warm_up_time = Duration::from_secs_f64(secs);
                    }
                }
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse().ok()) {
                        self.measurement_time = Duration::from_secs_f64(secs);
                    }
                }
                // Value-carrying upstream flags this harness ignores: consume the value so it
                // is not mistaken for a name filter.
                "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--color"
                | "--output-format"
                | "--profile-time"
                | "--significance-level"
                | "--confidence-level"
                | "--noise-threshold"
                | "--nresamples" => {
                    args.next();
                }
                // Valueless harness flags that change nothing here.
                "--bench" | "--nocapture" | "-q" | "--quiet" | "--verbose" | "--exact"
                | "--list" => {}
                other => {
                    if !other.starts_with('-') {
                        self.filter = Some(other.to_string());
                    }
                }
            }
        }
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn run_one<F>(&self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            bencher.report(name);
        }
    }
}

/// A named collection of benchmarks sharing the parent [`Criterion`] configuration, mirroring
/// upstream `BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs a benchmark parameterized by `input` inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group. (Upstream emits summary reports here; this harness reports per
    /// benchmark, so it is a no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter, mirroring upstream
/// `BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { id: name }
    }
}

/// Times closures for one benchmark, mirroring upstream `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up for the configured duration (at least one call) and estimate per-call cost.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let warm_up_start = Instant::now();
        let mut warm_up_calls: u32 = 0;
        loop {
            black_box(routine());
            warm_up_calls = warm_up_calls.saturating_add(1);
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        let per_call = warm_up_start.elapsed() / warm_up_calls.max(1);
        // Batch enough calls per sample that the two clock reads are amortized; without this,
        // sub-microsecond routines would mostly measure timer overhead.
        const TARGET_SAMPLE: Duration = Duration::from_micros(50);
        let iters_per_sample: u32 =
            (TARGET_SAMPLE.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u32;
        // Measure `sample_size` samples, stopping early if the time budget runs out.
        let measurement_end = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
            if Instant::now() >= measurement_end {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples collected)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<50} time: [{} {} {}]  ({} samples)",
            format_duration(*min),
            format_duration(mean),
            format_duration(*max),
            self.samples.len(),
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring upstream `criterion_group!`. Supports both
/// the `name = ..; config = ..; targets = ..` form and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running the given benchmark groups, mirroring upstream
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls = black_box(calls.wrapping_add(1))));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(format!("{}", BenchmarkId::new("forward", 256)), "forward/256");
    }
}
