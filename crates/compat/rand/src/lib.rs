//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! This container has no access to a crates.io registry, so the workspace vendors the small
//! slice of the `rand 0.8` API the reproduction actually uses as a local path dependency:
//!
//! * [`SeedableRng::seed_from_u64`] to build deterministic generators from a `u64` seed;
//! * [`rngs::StdRng`], here backed by **xoshiro256++** (Blackman & Vigna, public domain) seeded
//!   through SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), which is fine
//!   because upstream makes no cross-version stream guarantee and the reproduction only relies
//!   on determinism, not on specific values;
//! * [`Rng::gen_range`] over half-open ranges of the primitive numeric types.
//!
//! If registry access ever becomes available, delete `crates/compat/rand` and point the
//! `rand` entry of `[workspace.dependencies]` at crates.io — no call site changes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Range;

/// A random number generator: the two raw-output methods everything else builds on.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 24 bits of precision, uniform in [0, 1); widen to f64 so the range width cannot
        // overflow to infinity even for `-f32::MAX..f32::MAX`.
        let x = (rng.next_u32() >> 8) as f64 * (1.0 / (1u32 << 24) as f64);
        let v = (self.start as f64 + (self.end as f64 - self.start as f64) * x) as f32;
        // Rounding in the multiply-add (or the narrowing cast) can land exactly on `end`;
        // clamp to the nearest representable value below it, as upstream does.
        if v < self.end {
            v.max(self.start)
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 bits of precision, uniform in [0, 1).
        let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Halved arithmetic keeps the width finite even for `-f64::MAX..f64::MAX`.
        let half_width = self.end / 2.0 - self.start / 2.0;
        let v = self.start + half_width * x + half_width * x;
        if v < self.end {
            v.max(self.start)
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                // Rejection-free multiply-shift (Lemire); the bias over a u128 scaled draw is
                // far below anything a test could observe.
                let draw = rng.next_u64() as u128;
                self.start.wrapping_add(((draw * width) >> 64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The standard generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: **xoshiro256++**.
    ///
    /// Upstream `rand`'s `StdRng` is ChaCha12; this produces a different (still deterministic,
    /// still high-quality) stream, which is all the reproduction depends on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&v), "{v}");
            let w = rng.gen_range(-10.0f32..10.0);
            assert!((-10.0..10.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn int_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn extreme_float_ranges_stay_finite_and_vary() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let v32 = rng.gen_range(-f32::MAX..f32::MAX);
            assert!(v32.is_finite() && (-f32::MAX..f32::MAX).contains(&v32));
            let v64 = rng.gen_range(-f64::MAX..f64::MAX);
            assert!(v64.is_finite() && (-f64::MAX..f64::MAX).contains(&v64));
            distinct.insert(v64.to_bits());
        }
        assert!(distinct.len() > 90, "draws should vary, got {} distinct", distinct.len());
    }

    #[test]
    fn floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
