//! The typed error surface of the checkpoint store.
//!
//! The corruption-robustness contract (pinned by `tests/corruption_props.rs`) is that **every**
//! malformed input — bit-flipped, truncated, hand-rolled — decodes to one of these variants.
//! Nothing in the store path panics on bad bytes, and nothing mis-loads silently: the container
//! checksum catches payload corruption, the header fields catch their own corruption, and the
//! payload decoder bounds-checks every read and re-validates every structure it rebuilds.

use bnn_lfsr::LfsrError;
use bnn_tensor::TensorError;
use std::fmt;

/// Errors produced by checkpoint encoding/decoding and the model registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed (`std::io::Error` flattened to keep the type `Clone`).
    Io {
        /// The path the operation touched.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// The bytes do not start with the checkpoint magic (`"BNST"`).
    BadMagic,
    /// The container declares a format version this build does not understand.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The container is shorter than its header or its declared payload length.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
        /// How many more bytes the decoder needed.
        needed: usize,
    },
    /// Bytes remain after the declared payload (corrupted length field or appended garbage).
    TrailingBytes {
        /// Declared total size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// The payload checksum does not match the header's (bit corruption in flight or at rest).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// The payload structure is invalid (bad tag, impossible count, inconsistent field).
    Malformed {
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
    /// A captured GRNG/LFSR state failed re-validation on restore.
    Lfsr(LfsrError),
    /// A captured tensor/layer failed shape re-validation on rebuild.
    Shape(TensorError),
    /// Rebuilding a trainer from the checkpoint's training state failed.
    Train(String),
    /// The checkpoint holds only a posterior; it cannot resume training.
    NotATrainingCheckpoint,
    /// The registry has no model under this name.
    UnknownModel {
        /// The requested model name.
        name: String,
    },
    /// The registry has no such version of this model.
    UnknownVersion {
        /// The requested model name.
        name: String,
        /// The requested version.
        version: u32,
    },
    /// A model name contains characters the registry's on-disk layout does not allow.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// Every published version of the model failed validation — there is nothing to fall
    /// back to (see `ModelRegistry::load_latest_valid`).
    NoValidVersion {
        /// The requested model name.
        name: String,
        /// The versions tried, newest first, all of which failed to decode.
        tried: Vec<u32>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "I/O error on {path}: {detail}"),
            StoreError::BadMagic => write!(f, "not a bnn-store checkpoint (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            StoreError::Truncated { offset, needed } => {
                write!(f, "truncated checkpoint: needed {needed} more byte(s) at offset {offset}")
            }
            StoreError::TrailingBytes { expected, actual } => {
                write!(f, "trailing bytes after checkpoint: expected {expected}, got {actual}")
            }
            StoreError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: header {expected:016x}, payload {actual:016x}"
                )
            }
            StoreError::Malformed { offset, detail } => {
                write!(f, "malformed checkpoint at offset {offset}: {detail}")
            }
            StoreError::Lfsr(e) => write!(f, "invalid captured generator state: {e}"),
            StoreError::Shape(e) => write!(f, "invalid captured parameters: {e}"),
            StoreError::Train(detail) => write!(f, "cannot resume trainer: {detail}"),
            StoreError::NotATrainingCheckpoint => {
                write!(f, "checkpoint holds a posterior only, no trainer state to resume")
            }
            StoreError::UnknownModel { name } => write!(f, "no model {name:?} in the registry"),
            StoreError::UnknownVersion { name, version } => {
                write!(f, "model {name:?} has no version {version}")
            }
            StoreError::InvalidName { name } => {
                write!(f, "invalid model name {name:?} (use 1-64 ASCII letters, digits, '-', '_')")
            }
            StoreError::NoValidVersion { name, tried } => {
                write!(f, "model {name:?} has no valid version (tried, newest first: {tried:?})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<LfsrError> for StoreError {
    fn from(e: LfsrError) -> Self {
        StoreError::Lfsr(e)
    }
}

impl From<TensorError> for StoreError {
    fn from(e: TensorError) -> Self {
        StoreError::Shape(e)
    }
}

impl StoreError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: &std::path::Path, error: std::io::Error) -> StoreError {
        StoreError::Io { path: path.display().to_string(), detail: error.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_failure() {
        let cases: Vec<(StoreError, &str)> = vec![
            (StoreError::BadMagic, "bad magic"),
            (StoreError::UnsupportedVersion { found: 9 }, "version 9"),
            (StoreError::Truncated { offset: 10, needed: 4 }, "offset 10"),
            (StoreError::TrailingBytes { expected: 5, actual: 9 }, "trailing"),
            (StoreError::ChecksumMismatch { expected: 1, actual: 2 }, "checksum"),
            (StoreError::Malformed { offset: 3, detail: "bad tag 7".into() }, "bad tag 7"),
            (StoreError::NotATrainingCheckpoint, "posterior only"),
            (StoreError::UnknownModel { name: "m".into() }, "no model"),
            (StoreError::UnknownVersion { name: "m".into(), version: 2 }, "version 2"),
            (StoreError::InvalidName { name: "a/b".into() }, "invalid model name"),
            (StoreError::NoValidVersion { name: "m".into(), tried: vec![2, 1] }, "no valid"),
            (StoreError::Train("boom".into()), "boom"),
        ];
        for (error, needle) in cases {
            assert!(error.to_string().contains(needle), "{error}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
