//! The byte-level codec: little-endian primitive writer/reader and the checksummed container
//! frame every checkpoint travels in.
//!
//! Layout of the container (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "BNST"
//! 4       4     format version (currently 1)
//! 8       8     payload length in bytes
//! 16      8     FNV-1a 64 checksum of the payload
//! 24      n     payload
//! ```
//!
//! The design constraints, in order:
//!
//! * **determinism** — encoding is a pure function of the value (no maps, no timestamps, no
//!   platform-dependent widths), so identical checkpoints are byte-identical and their FNV
//!   digests are committable baselines;
//! * **corruption robustness** — every read is bounds-checked *before* any allocation is
//!   sized from untrusted bytes, so a flipped or truncated input yields a typed
//!   [`StoreError`], never a panic or an over-allocation;
//! * **versioning** — the header's format version gates decoding, so a future layout change
//!   fails loudly on old readers instead of mis-loading.

use crate::error::StoreError;
use shift_bnn::sweep::json::{fnv1a as fnv1a_stream, fnv1a_hex};

/// The 4-byte container magic.
pub const MAGIC: [u8; 4] = *b"BNST";

/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Container header size in bytes.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// FNV-1a 64 of a byte slice (the checksum the container header records) — the workspace's
/// shared [`shift_bnn::sweep::json::fnv1a`] over the slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_stream(bytes.iter().copied())
}

/// Wraps a payload in the checksummed container frame.
pub fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates a container frame (magic, version, length, checksum) and returns its payload.
///
/// # Errors
///
/// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`], [`StoreError::Truncated`],
/// [`StoreError::TrailingBytes`] or [`StoreError::ChecksumMismatch`] — each header field
/// guards itself, and the checksum guards every payload byte.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            offset: bytes.len(),
            needed: HEADER_LEN - bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let available = (bytes.len() - HEADER_LEN) as u64;
    if declared > available {
        return Err(StoreError::Truncated {
            offset: bytes.len(),
            needed: (declared - available) as usize,
        });
    }
    if declared < available {
        return Err(StoreError::TrailingBytes {
            expected: HEADER_LEN + declared as usize,
            actual: bytes.len(),
        });
    }
    let expected = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    let actual = fnv1a(payload);
    if expected != actual {
        return Err(StoreError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

/// The FNV-1a digest of a full container, as 16 hex characters — the committable fingerprint
/// of a checkpoint's exact bytes.
pub fn digest(bytes: &[u8]) -> String {
    fnv1a_hex(bytes.iter().copied())
}

/// Little-endian primitive writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finishes and returns the written bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` by bit pattern (lossless, `−0.0`/NaN payloads included).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (checkpoints are platform-independent).
    pub fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `u64` slice as a `u32` count followed by the words.
    pub fn u64_seq(&mut self, values: &[u64]) {
        self.u32(values.len() as u32);
        for &v in values {
            self.u64(v);
        }
    }

    /// Writes a `usize` slice as a `u32` count followed by `u64` words.
    pub fn usize_seq(&mut self, values: &[usize]) {
        self.u32(values.len() as u32);
        for &v in values {
            self.u64(v as u64);
        }
    }

    /// Raw access for writing pre-encoded blocks (e.g. tensor bit streams).
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// A [`StoreError::Malformed`] at the current offset.
    pub fn malformed(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Malformed { offset: self.pos, detail: detail.into() }
    }

    /// Fails unless every byte has been consumed (payloads must be exact).
    pub fn finish(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::TrailingBytes { expected: self.pos, actual: self.bytes.len() });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { offset: self.pos, needed: n - self.remaining() });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f32` by bit pattern.
    pub fn f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_bits(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes"))))
    }

    /// Reads a `u64` written by [`Writer::size`] back as a `usize`, rejecting values that do
    /// not fit the platform.
    pub fn size(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.malformed(format!("length {v} overflows usize")))
    }

    /// Reads a `u64` sequence written by [`Writer::u64_seq`]. The count is validated against
    /// the remaining bytes *before* the vector is sized (with the byte count computed
    /// overflow-checked, so a forged count cannot wrap the guard on 32-bit targets), so
    /// corrupted counts cannot trigger huge allocations.
    pub fn u64_seq(&mut self) -> Result<Vec<u64>, StoreError> {
        let count = self.u32()? as usize;
        let bytes_needed = count
            .checked_mul(8)
            .ok_or_else(|| self.malformed(format!("sequence of {count} words overflows")))?;
        if self.remaining() < bytes_needed {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed: bytes_needed - self.remaining(),
            });
        }
        (0..count).map(|_| self.u64()).collect()
    }

    /// Reads a `usize` sequence written by [`Writer::usize_seq`] (same bounds discipline).
    pub fn usize_seq(&mut self) -> Result<Vec<usize>, StoreError> {
        let words = self.u64_seq()?;
        words
            .into_iter()
            .map(|v| {
                usize::try_from(v)
                    .map_err(|_| self.malformed(format!("sequence value {v} overflows usize")))
            })
            .collect()
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f32(-0.0);
        w.f32(f32::NAN);
        w.size(12345);
        w.u64_seq(&[1, 2, 3]);
        w.usize_seq(&[9, 8]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.f32().unwrap().is_nan());
        assert_eq!(r.size().unwrap(), 12345);
        assert_eq!(r.u64_seq().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.usize_seq().unwrap(), vec![9, 8]);
        r.finish().unwrap();
    }

    #[test]
    fn reads_past_the_end_are_truncation_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(StoreError::Truncated { .. })));
        // The failed read consumed nothing; smaller reads still succeed.
        assert_eq!(r.u8().unwrap(), 1);
    }

    #[test]
    fn huge_sequence_counts_fail_before_allocating() {
        // A corrupted count of ~4 billion must be caught by the remaining-bytes check.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.u64_seq(), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn unconsumed_payload_bytes_are_an_error() {
        let r = {
            let mut r = Reader::new(&[0, 0, 0]);
            r.u8().unwrap();
            r
        };
        assert!(matches!(r.finish(), Err(StoreError::TrailingBytes { .. })));
    }

    #[test]
    fn frame_round_trips_and_guards_every_header_field() {
        let payload = b"posterior bytes".to_vec();
        let framed = frame(payload.clone());
        assert_eq!(unframe(&framed).unwrap(), &payload[..]);

        // Magic.
        let mut bad = framed.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(unframe(&bad), Err(StoreError::BadMagic)));
        // Version.
        let mut bad = framed.clone();
        bad[4] = 99;
        assert!(matches!(unframe(&bad), Err(StoreError::UnsupportedVersion { found: 99 })));
        // Declared length too long.
        let mut bad = framed.clone();
        bad[8] += 1;
        assert!(matches!(unframe(&bad), Err(StoreError::Truncated { .. })));
        // Trailing garbage.
        let mut bad = framed.clone();
        bad.push(0);
        assert!(matches!(unframe(&bad), Err(StoreError::TrailingBytes { .. })));
        // Checksum field corruption.
        let mut bad = framed.clone();
        bad[16] ^= 1;
        assert!(matches!(unframe(&bad), Err(StoreError::ChecksumMismatch { .. })));
        // Payload corruption.
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        assert!(matches!(unframe(&bad), Err(StoreError::ChecksumMismatch { .. })));
        // Truncation below the header.
        assert!(matches!(unframe(&framed[..10]), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn empty_payloads_frame_cleanly() {
        let framed = frame(Vec::new());
        assert_eq!(framed.len(), HEADER_LEN);
        assert_eq!(unframe(&framed).unwrap(), &[] as &[u8]);
    }
}
