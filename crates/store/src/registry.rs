//! The model registry: named, monotonically-versioned checkpoints with atomic publish.
//!
//! On-disk layout (one directory per model, one file per version):
//!
//! ```text
//! <root>/
//!   blenet/
//!     v000001.ckpt
//!     v000002.ckpt
//!   bmlp/
//!     v000001.ckpt
//! ```
//!
//! The directory listing *is* the index — no manifest file exists to go stale or to corrupt
//! independently of the data. Two properties make the registry safe to read while being
//! written:
//!
//! * **atomic publish** — a checkpoint is written to a hidden temporary file and *linked*
//!   into its final version name. Readers either see a complete, checksummed file or no file;
//!   never a partial one. The link step fails (rather than overwriting) if the version
//!   already exists, so concurrent publishers bump to the next number instead of clobbering
//!   each other;
//! * **monotonic versions** — versions are allocated as `max(existing) + 1`; published
//!   checkpoints are immutable (nothing in this API rewrites or deletes a version).
//!
//! A serving engine wires in through [`ModelRegistry::serve_source`], which loads a version
//! (or the latest) as a [`ModelSource`] ready for `InferenceEngine::from_source` or a
//! hot-swap schedule.

use crate::checkpoint::Checkpoint;
use crate::error::StoreError;
use bnn_serve::{CheckpointReplica, ModelSource};
use std::fs;
use std::path::{Path, PathBuf};

/// A filesystem-backed registry of named, versioned checkpoints.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

/// Versions are rendered zero-padded (`v000042.ckpt`) so lexicographic directory order is
/// version order for every version below one million.
fn version_file(version: u32) -> String {
    format!("v{version:06}.ckpt")
}

/// Accepts only the exact canonical form [`version_file`] writes (zero-padded), so the
/// versions the listing reports are always the versions [`ModelRegistry::load`] can find —
/// a hand-copied `v7.ckpt` is ignored rather than listed-but-unloadable.
fn parse_version(file_name: &str) -> Option<u32> {
    let digits = file_name.strip_prefix('v')?.strip_suffix(".ckpt")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let version: u32 = digits.parse().ok()?;
    (version_file(version) == file_name).then_some(version)
}

/// True for errors that mean "these bytes are not a valid checkpoint" — the corruption
/// class [`ModelRegistry::load_latest_valid`] falls back past — as opposed to environmental
/// failures (I/O, bad names) that trying an older version cannot fix.
fn is_corruption(error: &StoreError) -> bool {
    matches!(
        error,
        StoreError::BadMagic
            | StoreError::UnsupportedVersion { .. }
            | StoreError::Truncated { .. }
            | StoreError::TrailingBytes { .. }
            | StoreError::ChecksumMismatch { .. }
            | StoreError::Malformed { .. }
            | StoreError::Lfsr(_)
            | StoreError::Shape(_)
    )
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

impl ModelRegistry {
    /// Opens (creating if necessary) a registry rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the root cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<ModelRegistry, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError::io(&root, e))?;
        Ok(ModelRegistry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path a given version of a model lives at (whether or not it exists yet).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] for names the on-disk layout cannot hold.
    pub fn checkpoint_path(&self, name: &str, version: u32) -> Result<PathBuf, StoreError> {
        Ok(self.model_dir(name)?.join(version_file(version)))
    }

    fn model_dir(&self, name: &str) -> Result<PathBuf, StoreError> {
        if !valid_name(name) {
            return Err(StoreError::InvalidName { name: name.to_string() });
        }
        Ok(self.root.join(name))
    }

    /// All model names with at least one published version, sorted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the root cannot be listed.
    pub fn models(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| StoreError::io(&self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&self.root, e))?;
            let is_dir = entry.file_type().map_err(|e| StoreError::io(&self.root, e))?.is_dir();
            let name = entry.file_name().to_string_lossy().into_owned();
            // Stray files in the root (notes, backups) are not models; only directories
            // holding at least one version count.
            if is_dir && valid_name(&name) && !self.versions(&name)?.is_empty() {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// The published versions of a model, ascending (empty if the model is unknown).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] / [`StoreError::Io`] on bad names or unreadable
    /// directories.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, StoreError> {
        let dir = self.model_dir(name)?;
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::io(&dir, e)),
        };
        let mut versions = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
            if let Some(version) = parse_version(&entry.file_name().to_string_lossy()) {
                versions.push(version);
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// The newest published version of a model, if any.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelRegistry::versions`] failures.
    pub fn latest(&self, name: &str) -> Result<Option<u32>, StoreError> {
        Ok(self.versions(name)?.last().copied())
    }

    /// Publishes a checkpoint under `name`, returning the newly allocated version
    /// (`max(existing) + 1`, starting at 1).
    ///
    /// The publish is atomic: the bytes land in a hidden temporary file first and are then
    /// hard-linked into the version name, which fails — and retries with the next number —
    /// if a concurrent publisher claimed it. Readers never observe partial checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] / [`StoreError::Io`] on bad names or filesystem
    /// failures.
    pub fn publish(&self, name: &str, checkpoint: &Checkpoint) -> Result<u32, StoreError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static PUBLISH_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = self.model_dir(name)?;
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        let tmp = dir.join(format!(
            ".tmp-publish-{}-{}",
            std::process::id(),
            PUBLISH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, checkpoint.to_bytes()).map_err(|e| StoreError::io(&tmp, e))?;
        let result = self.link_next_version(name, &dir, &tmp);
        let _ = fs::remove_file(&tmp);
        result
    }

    fn link_next_version(&self, name: &str, dir: &Path, tmp: &Path) -> Result<u32, StoreError> {
        loop {
            let version = self.latest(name)?.unwrap_or(0) + 1;
            let target = dir.join(version_file(version));
            match fs::hard_link(tmp, &target) {
                Ok(()) => return Ok(version),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // A concurrent publisher claimed this number; rescan and take the next.
                    continue;
                }
                Err(e) => return Err(StoreError::io(&target, e)),
            }
        }
    }

    /// Loads one version of a model (fully validated; see [`Checkpoint::from_bytes`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownVersion`] when the file does not exist; otherwise the usual
    /// decode errors.
    pub fn load(&self, name: &str, version: u32) -> Result<Checkpoint, StoreError> {
        let path = self.checkpoint_path(name, version)?;
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::UnknownVersion { name: name.to_string(), version });
            }
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        Checkpoint::from_bytes(&bytes)
    }

    /// Loads the newest version of a model.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`] when no version has been published.
    pub fn load_latest(&self, name: &str) -> Result<(u32, Checkpoint), StoreError> {
        let version = self
            .latest(name)?
            .ok_or_else(|| StoreError::UnknownModel { name: name.to_string() })?;
        Ok((version, self.load(name, version)?))
    }

    /// Loads the newest version of a model **that validates**, skipping corrupted or
    /// truncated files from the top down.
    ///
    /// This is the serving-path loader: a publisher crash, a torn disk, or a bad deploy can
    /// leave the *newest* version unreadable, and a server restarting into that state must
    /// come back up on the last good posterior rather than crash-loop. Returns the loaded
    /// version, its checkpoint, and the versions skipped (newest first) so callers can emit
    /// a typed fallback event. A version that vanishes between the listing and the read
    /// (a concurrent cleaner) is treated like corruption and skipped.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`] when no version has been published at all;
    /// [`StoreError::NoValidVersion`] when every published version fails validation
    /// (nothing to fall back to); I/O errors other than not-found propagate — fallback
    /// cannot fix an unreadable disk.
    pub fn load_latest_valid(&self, name: &str) -> Result<(u32, Checkpoint, Vec<u32>), StoreError> {
        let versions = self.versions(name)?;
        if versions.is_empty() {
            return Err(StoreError::UnknownModel { name: name.to_string() });
        }
        let mut skipped = Vec::new();
        for &version in versions.iter().rev() {
            match self.load(name, version) {
                Ok(checkpoint) => return Ok((version, checkpoint, skipped)),
                Err(e) if is_corruption(&e) => skipped.push(version),
                Err(StoreError::UnknownVersion { .. }) => skipped.push(version),
                Err(e) => return Err(e),
            }
        }
        Err(StoreError::NoValidVersion { name: name.to_string(), tried: skipped })
    }

    /// Loads a version (or the latest, for `None`) as a serving [`ModelSource`], labelled
    /// `"<name>@v<version>"` — ready for `InferenceEngine::from_source` or a
    /// `VersionSwap`. `input_shape` is the request shape the served model expects.
    ///
    /// The `None` (latest) path goes through [`ModelRegistry::load_latest_valid`]: a corrupt
    /// newest version falls back to the last good one instead of failing the server. An
    /// explicit version is loaded exactly as asked — callers pinning a version want its
    /// corruption surfaced, not papered over.
    ///
    /// # Errors
    ///
    /// Propagates load errors; the replica validation itself cannot fail for checkpoints
    /// that decoded successfully.
    pub fn serve_source(
        &self,
        name: &str,
        version: Option<u32>,
        input_shape: Vec<usize>,
    ) -> Result<(u32, ModelSource), StoreError> {
        let (version, checkpoint) = match version {
            Some(v) => (v, self.load(name, v)?),
            None => {
                let (version, checkpoint, _skipped) = self.load_latest_valid(name)?;
                (version, checkpoint)
            }
        };
        let replica =
            CheckpointReplica::new(format!("{name}@v{version}"), checkpoint.network, input_shape)?;
        Ok((version, ModelSource::Checkpoint(replica)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_file_names_round_trip() {
        assert_eq!(version_file(1), "v000001.ckpt");
        assert_eq!(version_file(999_999), "v999999.ckpt");
        assert_eq!(parse_version("v000042.ckpt"), Some(42));
        assert_eq!(parse_version("v1000000.ckpt"), Some(1_000_000), "wide versions round-trip");
        assert_eq!(parse_version("v1.ckpt"), None, "non-canonical padding is not listed");
        assert_eq!(parse_version("v0000042.ckpt"), None, "over-padding is not listed");
        assert_eq!(parse_version(".tmp-publish-7"), None);
        assert_eq!(parse_version("v.ckpt"), None);
        assert_eq!(parse_version("vx2.ckpt"), None);
        assert_eq!(parse_version("v2.json"), None);
    }

    /// A fresh registry root in the system temp dir, cleaned before use so reruns start
    /// from nothing.
    fn scratch_root(label: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("bnn-store-registry-{label}"));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn posterior() -> Checkpoint {
        use bnn_train::variational::BayesConfig;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(91);
        let network = bnn_train::Network::bayes_mlp(4, &[3], 2, BayesConfig::default(), &mut rng);
        Checkpoint::posterior(&network)
    }

    #[test]
    fn corrupt_newest_version_falls_back_to_the_last_valid_one() {
        let registry = ModelRegistry::open(scratch_root("fallback")).unwrap();
        let checkpoint = posterior();
        let v1 = registry.publish("m", &checkpoint).unwrap();
        let v2 = registry.publish("m", &checkpoint).unwrap();
        let v3 = registry.publish("m", &checkpoint).unwrap();

        // Truncate v3 (torn write) and bit-flip v2's payload (at-rest corruption).
        let p3 = registry.checkpoint_path("m", v3).unwrap();
        let bytes = fs::read(&p3).unwrap();
        fs::write(&p3, &bytes[..bytes.len() / 2]).unwrap();
        let p2 = registry.checkpoint_path("m", v2).unwrap();
        let mut bytes = fs::read(&p2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&p2, bytes).unwrap();

        let (version, loaded, skipped) = registry.load_latest_valid("m").unwrap();
        assert_eq!(version, v1);
        assert_eq!(skipped, vec![v3, v2], "skips are reported newest first");
        assert_eq!(loaded.digest(), checkpoint.digest());

        // The serving path inherits the fallback: latest == the last valid version.
        let (served, _) = registry.serve_source("m", None, vec![4]).unwrap();
        assert_eq!(served, v1);
        // But pinning the corrupt version explicitly surfaces its corruption.
        assert!(registry.serve_source("m", Some(v3), vec![4]).is_err());
    }

    #[test]
    fn all_versions_corrupt_is_a_typed_error_not_a_panic() {
        let registry = ModelRegistry::open(scratch_root("no-valid")).unwrap();
        let v1 = registry.publish("m", &posterior()).unwrap();
        let path = registry.checkpoint_path("m", v1).unwrap();
        fs::write(&path, b"garbage").unwrap();
        match registry.load_latest_valid("m") {
            Err(StoreError::NoValidVersion { name, tried }) => {
                assert_eq!(name, "m");
                assert_eq!(tried, vec![v1]);
            }
            other => panic!("expected NoValidVersion, got {other:?}"),
        }
        // And an unpublished model is still the distinct UnknownModel error.
        assert!(matches!(
            registry.load_latest_valid("ghost"),
            Err(StoreError::UnknownModel { .. })
        ));
    }

    #[test]
    fn name_validation_rejects_path_escapes() {
        for bad in ["", "a/b", "..", "a b", "é", &"x".repeat(65)] {
            assert!(!valid_name(bad), "{bad:?} must be rejected");
        }
        for good in ["blenet", "B-MLP_v2", "x", &"x".repeat(64)] {
            assert!(valid_name(good), "{good:?} must be accepted");
        }
    }
}
