//! The model registry: named, monotonically-versioned checkpoints with atomic publish.
//!
//! On-disk layout (one directory per model, one file per version):
//!
//! ```text
//! <root>/
//!   blenet/
//!     v000001.ckpt
//!     v000002.ckpt
//!   bmlp/
//!     v000001.ckpt
//! ```
//!
//! The directory listing *is* the index — no manifest file exists to go stale or to corrupt
//! independently of the data. Two properties make the registry safe to read while being
//! written:
//!
//! * **atomic publish** — a checkpoint is written to a hidden temporary file and *linked*
//!   into its final version name. Readers either see a complete, checksummed file or no file;
//!   never a partial one. The link step fails (rather than overwriting) if the version
//!   already exists, so concurrent publishers bump to the next number instead of clobbering
//!   each other;
//! * **monotonic versions** — versions are allocated as `max(existing) + 1`; published
//!   checkpoints are immutable (nothing in this API rewrites or deletes a version).
//!
//! A serving engine wires in through [`ModelRegistry::serve_source`], which loads a version
//! (or the latest) as a [`ModelSource`] ready for `InferenceEngine::from_source` or a
//! hot-swap schedule.

use crate::checkpoint::Checkpoint;
use crate::error::StoreError;
use bnn_serve::{CheckpointReplica, ModelSource};
use std::fs;
use std::path::{Path, PathBuf};

/// A filesystem-backed registry of named, versioned checkpoints.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

/// Versions are rendered zero-padded (`v000042.ckpt`) so lexicographic directory order is
/// version order for every version below one million.
fn version_file(version: u32) -> String {
    format!("v{version:06}.ckpt")
}

/// Accepts only the exact canonical form [`version_file`] writes (zero-padded), so the
/// versions the listing reports are always the versions [`ModelRegistry::load`] can find —
/// a hand-copied `v7.ckpt` is ignored rather than listed-but-unloadable.
fn parse_version(file_name: &str) -> Option<u32> {
    let digits = file_name.strip_prefix('v')?.strip_suffix(".ckpt")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let version: u32 = digits.parse().ok()?;
    (version_file(version) == file_name).then_some(version)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

impl ModelRegistry {
    /// Opens (creating if necessary) a registry rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the root cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<ModelRegistry, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError::io(&root, e))?;
        Ok(ModelRegistry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path a given version of a model lives at (whether or not it exists yet).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] for names the on-disk layout cannot hold.
    pub fn checkpoint_path(&self, name: &str, version: u32) -> Result<PathBuf, StoreError> {
        Ok(self.model_dir(name)?.join(version_file(version)))
    }

    fn model_dir(&self, name: &str) -> Result<PathBuf, StoreError> {
        if !valid_name(name) {
            return Err(StoreError::InvalidName { name: name.to_string() });
        }
        Ok(self.root.join(name))
    }

    /// All model names with at least one published version, sorted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the root cannot be listed.
    pub fn models(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| StoreError::io(&self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&self.root, e))?;
            let is_dir = entry.file_type().map_err(|e| StoreError::io(&self.root, e))?.is_dir();
            let name = entry.file_name().to_string_lossy().into_owned();
            // Stray files in the root (notes, backups) are not models; only directories
            // holding at least one version count.
            if is_dir && valid_name(&name) && !self.versions(&name)?.is_empty() {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// The published versions of a model, ascending (empty if the model is unknown).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] / [`StoreError::Io`] on bad names or unreadable
    /// directories.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, StoreError> {
        let dir = self.model_dir(name)?;
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::io(&dir, e)),
        };
        let mut versions = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
            if let Some(version) = parse_version(&entry.file_name().to_string_lossy()) {
                versions.push(version);
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// The newest published version of a model, if any.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelRegistry::versions`] failures.
    pub fn latest(&self, name: &str) -> Result<Option<u32>, StoreError> {
        Ok(self.versions(name)?.last().copied())
    }

    /// Publishes a checkpoint under `name`, returning the newly allocated version
    /// (`max(existing) + 1`, starting at 1).
    ///
    /// The publish is atomic: the bytes land in a hidden temporary file first and are then
    /// hard-linked into the version name, which fails — and retries with the next number —
    /// if a concurrent publisher claimed it. Readers never observe partial checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] / [`StoreError::Io`] on bad names or filesystem
    /// failures.
    pub fn publish(&self, name: &str, checkpoint: &Checkpoint) -> Result<u32, StoreError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static PUBLISH_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = self.model_dir(name)?;
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        let tmp = dir.join(format!(
            ".tmp-publish-{}-{}",
            std::process::id(),
            PUBLISH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, checkpoint.to_bytes()).map_err(|e| StoreError::io(&tmp, e))?;
        let result = self.link_next_version(name, &dir, &tmp);
        let _ = fs::remove_file(&tmp);
        result
    }

    fn link_next_version(&self, name: &str, dir: &Path, tmp: &Path) -> Result<u32, StoreError> {
        loop {
            let version = self.latest(name)?.unwrap_or(0) + 1;
            let target = dir.join(version_file(version));
            match fs::hard_link(tmp, &target) {
                Ok(()) => return Ok(version),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // A concurrent publisher claimed this number; rescan and take the next.
                    continue;
                }
                Err(e) => return Err(StoreError::io(&target, e)),
            }
        }
    }

    /// Loads one version of a model (fully validated; see [`Checkpoint::from_bytes`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownVersion`] when the file does not exist; otherwise the usual
    /// decode errors.
    pub fn load(&self, name: &str, version: u32) -> Result<Checkpoint, StoreError> {
        let path = self.checkpoint_path(name, version)?;
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::UnknownVersion { name: name.to_string(), version });
            }
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        Checkpoint::from_bytes(&bytes)
    }

    /// Loads the newest version of a model.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`] when no version has been published.
    pub fn load_latest(&self, name: &str) -> Result<(u32, Checkpoint), StoreError> {
        let version = self
            .latest(name)?
            .ok_or_else(|| StoreError::UnknownModel { name: name.to_string() })?;
        Ok((version, self.load(name, version)?))
    }

    /// Loads a version (or the latest, for `None`) as a serving [`ModelSource`], labelled
    /// `"<name>@v<version>"` — ready for `InferenceEngine::from_source` or a
    /// `VersionSwap`. `input_shape` is the request shape the served model expects.
    ///
    /// # Errors
    ///
    /// Propagates load errors; the replica validation itself cannot fail for checkpoints
    /// that decoded successfully.
    pub fn serve_source(
        &self,
        name: &str,
        version: Option<u32>,
        input_shape: Vec<usize>,
    ) -> Result<(u32, ModelSource), StoreError> {
        let (version, checkpoint) = match version {
            Some(v) => (v, self.load(name, v)?),
            None => self.load_latest(name)?,
        };
        let replica =
            CheckpointReplica::new(format!("{name}@v{version}"), checkpoint.network, input_shape)?;
        Ok((version, ModelSource::Checkpoint(replica)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_file_names_round_trip() {
        assert_eq!(version_file(1), "v000001.ckpt");
        assert_eq!(version_file(999_999), "v999999.ckpt");
        assert_eq!(parse_version("v000042.ckpt"), Some(42));
        assert_eq!(parse_version("v1000000.ckpt"), Some(1_000_000), "wide versions round-trip");
        assert_eq!(parse_version("v1.ckpt"), None, "non-canonical padding is not listed");
        assert_eq!(parse_version("v0000042.ckpt"), None, "over-padding is not listed");
        assert_eq!(parse_version(".tmp-publish-7"), None);
        assert_eq!(parse_version("v.ckpt"), None);
        assert_eq!(parse_version("vx2.ckpt"), None);
        assert_eq!(parse_version("v2.json"), None);
    }

    #[test]
    fn name_validation_rejects_path_escapes() {
        for bad in ["", "a/b", "..", "a b", "é", &"x".repeat(65)] {
            assert!(!valid_name(bad), "{bad:?} must be rejected");
        }
        for good in ["blenet", "B-MLP_v2", "x", &"x".repeat(64)] {
            assert!(valid_name(good), "{good:?} must be accepted");
        }
    }
}
