//! The checkpoint: a deterministic binary serialization of a posterior (and optionally the
//! full training state around it).
//!
//! What the paper treats as ephemeral (ε — regenerated from seeds) and what it treats as
//! durable (the posterior `θ = (μ, ρ)`) maps directly onto this format: a checkpoint carries
//! the durable artifact bit-exactly — every parameter as its raw `f32` bit pattern — plus,
//! for training checkpoints, the *seed-sized* generator states (a few hundred bytes per
//! Monte-Carlo sample) from which every future ε is regenerable. Nothing else a training run
//! touches needs persisting: datasets are seed-synthesized, scratch arenas hold no values,
//! and gradient accumulators are captured in place.
//!
//! Encoding is a pure function of the in-memory snapshot (field order fixed, integers
//! little-endian, floats by bit pattern), so identical states produce identical bytes and the
//! container digest ([`Checkpoint::digest`]) is a committable baseline. Decoding re-validates
//! everything: the container frame (magic/version/length/checksum), every structural count
//! against the remaining bytes, every enum tag, every tensor shape (each layer capture
//! checked against its geometry) and every GRNG capture (by rebuilding each generator) — a
//! checkpoint that decodes `Ok` is guaranteed to materialize.

use crate::codec::{self, Reader, Writer};
use crate::error::StoreError;
use bnn_lfsr::{Grng, GrngMode, GrngState, LfsrState};
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::{Precision, Tensor};
use bnn_train::snapshot::{LayerSnapshot, NetworkSnapshot, TrainerSnapshot};
use bnn_train::trainer::TrainError;
use bnn_train::variational::{BayesConfig, VariationalParams};
use bnn_train::{EpsilonStrategy, Network, SourceState, Trainer, TrainerConfig};

/// The non-posterior half of a training checkpoint: trainer configuration, step count, and
/// the mid-stream generator capture of every Monte-Carlo sample's ε source.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// The trainer's hyper-parameters (sample count, learning rate, ε strategy, base seed).
    pub config: TrainerConfig,
    /// Training steps completed at capture time.
    pub steps: u64,
    /// Per-sample ε source captures, in sample order.
    pub sources: Vec<SourceState>,
}

/// One checkpoint: a posterior, optionally with the full training state around it.
///
/// * [`Checkpoint::posterior`] captures a network alone — the artifact a serving engine
///   materializes replicas from;
/// * [`Checkpoint::from_trainer`] captures everything, so [`Checkpoint::resume_trainer`] at
///   step `K` continues **bit-identically** to a run that never stopped (pinned by
///   `tests/resume_determinism.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The captured posterior (parameters, accumulators, architecture).
    pub network: NetworkSnapshot,
    /// Training state, present only for checkpoints taken from a [`Trainer`].
    pub trainer: Option<TrainerState>,
}

impl Checkpoint {
    /// Captures a posterior-only checkpoint from a network.
    pub fn posterior(network: &Network) -> Checkpoint {
        Checkpoint { network: network.snapshot(), trainer: None }
    }

    /// Captures a full training checkpoint from a trainer at its current iteration boundary.
    ///
    /// # Panics
    ///
    /// Panics if the trainer sits mid-iteration (see [`Trainer::snapshot`]).
    pub fn from_trainer(trainer: &Trainer) -> Checkpoint {
        Checkpoint::from_trainer_snapshot(trainer.snapshot())
    }

    /// Wraps an already-captured [`TrainerSnapshot`].
    pub fn from_trainer_snapshot(snapshot: TrainerSnapshot) -> Checkpoint {
        Checkpoint {
            network: snapshot.network,
            trainer: Some(TrainerState {
                config: snapshot.config,
                steps: snapshot.steps,
                sources: snapshot.sources,
            }),
        }
    }

    /// Materializes the captured posterior as a fresh network (bit-identical to the captured
    /// one).
    ///
    /// # Errors
    ///
    /// Propagates shape validation — unreachable for checkpoints that came through
    /// [`Checkpoint::from_bytes`], which validates every shape on decode.
    pub fn build_network(&self) -> Result<Network, StoreError> {
        Ok(self.network.build()?)
    }

    /// The captured training state as a [`TrainerSnapshot`].
    ///
    /// # Errors
    ///
    /// [`StoreError::NotATrainingCheckpoint`] for posterior-only checkpoints.
    pub fn trainer_snapshot(&self) -> Result<TrainerSnapshot, StoreError> {
        let state = self.trainer.as_ref().ok_or(StoreError::NotATrainingCheckpoint)?;
        Ok(TrainerSnapshot {
            network: self.network.clone(),
            config: state.config,
            steps: state.steps,
            sources: state.sources.clone(),
        })
    }

    /// Rebuilds a trainer that resumes bit-identically to the captured run.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotATrainingCheckpoint`] for posterior-only checkpoints; otherwise
    /// propagates trainer restoration failures.
    pub fn resume_trainer(&self) -> Result<Trainer, StoreError> {
        let snapshot = self.trainer_snapshot()?;
        Trainer::from_snapshot(&snapshot).map_err(|e| match e {
            TrainError::Lfsr(inner) => StoreError::Lfsr(inner),
            TrainError::Tensor(inner) => StoreError::Shape(inner),
            TrainError::Snapshot(detail) => StoreError::Train(detail),
        })
    }

    /// Serializes into the checksummed container frame (deterministic: identical checkpoints
    /// produce identical bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.trainer {
            None => w.u8(0),
            Some(state) => {
                w.u8(1);
                encode_trainer_state(&mut w, state);
            }
        }
        encode_network(&mut w, &self.network);
        codec::frame(w.into_bytes())
    }

    /// Deserializes and **fully validates** a container: frame integrity, structure, tensor
    /// shapes (every layer capture is checked against its geometry) and generator states
    /// (each is rebuilt once). A returned checkpoint is guaranteed to materialize.
    ///
    /// # Errors
    ///
    /// Every corruption mode maps to a typed [`StoreError`] (see `tests/corruption_props.rs`
    /// — bit flips and truncations never panic and never mis-load).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, StoreError> {
        let payload = codec::unframe(bytes)?;
        let mut r = Reader::new(payload);
        let trainer = match r.u8()? {
            0 => None,
            1 => Some(decode_trainer_state(&mut r)?),
            tag => return Err(r.malformed(format!("unknown trainer-presence tag {tag}"))),
        };
        let network = decode_network(&mut r)?;
        r.finish()?;
        // Semantic validation: the posterior must materialize, and the generator captures
        // must restore. After this, downstream `build()` calls cannot fail — `validate()`
        // covers every shape `build()` checks, without cloning any tensors.
        network.validate()?;
        if let Some(state) = &trainer {
            if state.sources.len() != state.config.samples.max(1) {
                return Err(StoreError::Train(format!(
                    "{} source captures for {} configured samples",
                    state.sources.len(),
                    state.config.samples.max(1)
                )));
            }
            for source in &state.sources {
                Grng::from_state(&source.grng)?;
            }
        }
        Ok(Checkpoint { network, trainer })
    }

    /// FNV-1a digest of [`Checkpoint::to_bytes`], as 16 hex characters — the committable
    /// fingerprint of this checkpoint's exact content.
    pub fn digest(&self) -> String {
        codec::digest(&self.to_bytes())
    }

    /// ε values one Monte-Carlo sample of the captured posterior draws.
    pub fn epsilon_count(&self) -> usize {
        self.network.epsilon_count()
    }

    /// Whether this checkpoint can resume training (carries trainer state).
    pub fn is_training_checkpoint(&self) -> bool {
        self.trainer.is_some()
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_tensor(w: &mut Writer, tensor: &Tensor) {
    w.usize_seq(tensor.shape());
    tensor.extend_le_bytes(w.bytes_mut());
}

fn encode_params(w: &mut Writer, params: &VariationalParams) {
    w.usize_seq(params.shape());
    for tensor in [params.mu(), params.rho(), params.grad_mu(), params.grad_rho()] {
        tensor.extend_le_bytes(w.bytes_mut());
    }
}

fn encode_bayes_config(w: &mut Writer, config: &BayesConfig) {
    match config.precision {
        Precision::Fp32 => {
            w.u8(0);
            w.u32(0);
        }
        Precision::Fx16 { frac_bits } => {
            w.u8(1);
            w.u32(frac_bits);
        }
        Precision::Fx8 { frac_bits } => {
            w.u8(2);
            w.u32(frac_bits);
        }
    }
    w.f32(config.prior_sigma);
    w.f32(config.kl_weight);
    w.f32(config.init_rho);
}

fn encode_network(w: &mut Writer, network: &NetworkSnapshot) {
    encode_bayes_config(w, &network.config);
    w.u32(network.layers.len() as u32);
    for layer in &network.layers {
        match layer {
            LayerSnapshot::Linear { in_features, out_features, weights, bias, grad_bias } => {
                w.u8(0);
                w.size(*in_features);
                w.size(*out_features);
                encode_params(w, weights);
                encode_tensor(w, bias);
                encode_tensor(w, grad_bias);
            }
            LayerSnapshot::Conv { geometry, weights, bias, grad_bias } => {
                w.u8(1);
                w.size(geometry.in_channels);
                w.size(geometry.out_channels);
                w.size(geometry.kernel);
                w.size(geometry.stride);
                w.size(geometry.padding);
                encode_params(w, weights);
                encode_tensor(w, bias);
                encode_tensor(w, grad_bias);
            }
            LayerSnapshot::Relu => w.u8(2),
            LayerSnapshot::MaxPool { window } => {
                w.u8(3);
                w.size(*window);
            }
            LayerSnapshot::Flatten => w.u8(4),
        }
    }
}

fn encode_trainer_state(w: &mut Writer, state: &TrainerState) {
    w.size(state.config.samples);
    w.f32(state.config.learning_rate);
    w.u8(match state.config.strategy {
        EpsilonStrategy::StoreReplay => 0,
        EpsilonStrategy::LfsrRetrieve => 1,
    });
    w.u64(state.config.seed);
    w.u64(state.steps);
    w.u32(state.sources.len() as u32);
    for source in &state.sources {
        let grng = &source.grng;
        w.size(grng.lfsr.width);
        w.usize_seq(&grng.lfsr.taps);
        w.u64_seq(&grng.lfsr.state_words);
        w.i64(grng.lfsr.position);
        w.u32(grng.initial_sum);
        w.u32(grng.current_sum);
        w.u8(match grng.mode {
            GrngMode::Forward => 0,
            GrngMode::Backward => 1,
            GrngMode::Idle => 2,
        });
        w.i64(grng.outstanding);
        w.u64(source.stored);
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Validated element count of a shape: the product, with overflow and an over-read of the
/// remaining payload both rejected before any allocation is sized from it.
fn shape_len(r: &Reader<'_>, shape: &[usize]) -> Result<usize, StoreError> {
    let mut len: usize = 1;
    for &dim in shape {
        len = len
            .checked_mul(dim)
            .ok_or_else(|| r.malformed(format!("tensor shape {shape:?} overflows")))?;
    }
    let bytes_needed = len
        .checked_mul(4)
        .ok_or_else(|| r.malformed(format!("tensor of {len} elements overflows byte count")))?;
    if bytes_needed > r.remaining() {
        return Err(StoreError::Truncated {
            offset: r.offset(),
            needed: bytes_needed - r.remaining(),
        });
    }
    Ok(len)
}

fn decode_tensor_data(r: &mut Reader<'_>, shape: Vec<usize>) -> Result<Tensor, StoreError> {
    let len = shape_len(r, &shape)?;
    let bytes = r.raw(len * 4)?;
    Ok(Tensor::from_le_bytes(shape, bytes)?)
}

fn decode_tensor(r: &mut Reader<'_>) -> Result<Tensor, StoreError> {
    let shape = r.usize_seq()?;
    decode_tensor_data(r, shape)
}

fn decode_params(r: &mut Reader<'_>) -> Result<VariationalParams, StoreError> {
    let shape = r.usize_seq()?;
    let mu = decode_tensor_data(r, shape.clone())?;
    let rho = decode_tensor_data(r, shape.clone())?;
    let grad_mu = decode_tensor_data(r, shape.clone())?;
    let grad_rho = decode_tensor_data(r, shape)?;
    Ok(VariationalParams::from_raw(mu, rho, grad_mu, grad_rho)?)
}

fn decode_bayes_config(r: &mut Reader<'_>) -> Result<BayesConfig, StoreError> {
    let tag = r.u8()?;
    let frac_bits = r.u32()?;
    // Canonical-form discipline: every accepted payload must re-encode to identical bytes
    // (so a loaded checkpoint's digest always matches the file's), hence the zero-field
    // requirement for Fp32 rather than read-and-ignore.
    let precision = match tag {
        0 if frac_bits == 0 => Precision::Fp32,
        0 => {
            return Err(r.malformed(format!("Fp32 precision with nonzero frac_bits {frac_bits}")));
        }
        1 if frac_bits < 16 => Precision::Fx16 { frac_bits },
        2 if frac_bits < 8 => Precision::Fx8 { frac_bits },
        1 | 2 => {
            return Err(r.malformed(format!("fractional bits {frac_bits} out of range")));
        }
        other => return Err(r.malformed(format!("unknown precision tag {other}"))),
    };
    Ok(BayesConfig { precision, prior_sigma: r.f32()?, kl_weight: r.f32()?, init_rho: r.f32()? })
}

fn decode_network(r: &mut Reader<'_>) -> Result<NetworkSnapshot, StoreError> {
    let config = decode_bayes_config(r)?;
    let layer_count = r.u32()? as usize;
    // Every layer occupies at least its 1-byte tag; reject counts the payload cannot hold.
    if layer_count > r.remaining() {
        return Err(StoreError::Truncated {
            offset: r.offset(),
            needed: layer_count - r.remaining(),
        });
    }
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let layer = match r.u8()? {
            0 => LayerSnapshot::Linear {
                in_features: r.size()?,
                out_features: r.size()?,
                weights: decode_params(r)?,
                bias: decode_tensor(r)?,
                grad_bias: decode_tensor(r)?,
            },
            1 => {
                let geometry = ConvGeometry {
                    in_channels: r.size()?,
                    out_channels: r.size()?,
                    kernel: r.size()?,
                    stride: r.size()?,
                    padding: r.size()?,
                };
                LayerSnapshot::Conv {
                    geometry,
                    weights: decode_params(r)?,
                    bias: decode_tensor(r)?,
                    grad_bias: decode_tensor(r)?,
                }
            }
            2 => LayerSnapshot::Relu,
            3 => {
                let window = r.size()?;
                if window == 0 {
                    return Err(r.malformed("zero pooling window"));
                }
                LayerSnapshot::MaxPool { window }
            }
            4 => LayerSnapshot::Flatten,
            tag => return Err(r.malformed(format!("unknown layer tag {tag}"))),
        };
        layers.push(layer);
    }
    Ok(NetworkSnapshot { config, layers })
}

fn decode_trainer_state(r: &mut Reader<'_>) -> Result<TrainerState, StoreError> {
    let samples = r.size()?;
    let learning_rate = r.f32()?;
    let strategy = match r.u8()? {
        0 => EpsilonStrategy::StoreReplay,
        1 => EpsilonStrategy::LfsrRetrieve,
        tag => return Err(r.malformed(format!("unknown epsilon strategy tag {tag}"))),
    };
    let seed = r.u64()?;
    let steps = r.u64()?;
    let source_count = r.u32()? as usize;
    if source_count > r.remaining() {
        return Err(StoreError::Truncated {
            offset: r.offset(),
            needed: source_count - r.remaining(),
        });
    }
    let mut sources = Vec::with_capacity(source_count);
    for _ in 0..source_count {
        let width = r.size()?;
        let taps = r.usize_seq()?;
        // Canonical form: `Lfsr::state` emits taps strictly ascending; accepting any other
        // order would make decode → encode change bytes (digests would stop matching files).
        if !taps.windows(2).all(|pair| pair[0] < pair[1]) {
            return Err(r.malformed("LFSR taps not strictly ascending"));
        }
        let state_words = r.u64_seq()?;
        let position = r.i64()?;
        let initial_sum = r.u32()?;
        let current_sum = r.u32()?;
        let mode = match r.u8()? {
            0 => GrngMode::Forward,
            1 => GrngMode::Backward,
            2 => GrngMode::Idle,
            tag => return Err(r.malformed(format!("unknown GRNG mode tag {tag}"))),
        };
        let outstanding = r.i64()?;
        let stored = r.u64()?;
        sources.push(SourceState {
            grng: GrngState {
                lfsr: LfsrState { width, taps, state_words, position },
                initial_sum,
                current_sum,
                mode,
                outstanding,
            },
            stored,
        });
    }
    Ok(TrainerState {
        config: TrainerConfig { samples, learning_rate, strategy, seed },
        steps,
        sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_network(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::bayes_lenet(&[1, 8, 8], 3, BayesConfig::default(), &mut rng)
    }

    #[test]
    fn posterior_checkpoint_round_trips_bit_exactly() {
        let network = small_network(5);
        let checkpoint = Checkpoint::posterior(&network);
        let bytes = checkpoint.to_bytes();
        let decoded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, checkpoint);
        assert!(!decoded.is_training_checkpoint());
        assert_eq!(decoded.epsilon_count(), network.epsilon_count());
        assert!(matches!(decoded.resume_trainer(), Err(StoreError::NotATrainingCheckpoint)));
        // Serialization is deterministic: same state, same bytes, same digest.
        assert_eq!(bytes, checkpoint.to_bytes());
        assert_eq!(decoded.digest(), checkpoint.digest());
    }

    #[test]
    fn training_checkpoint_round_trips_with_all_state() {
        let trainer = Trainer::new(
            small_network(7),
            TrainerConfig { samples: 3, ..TrainerConfig::default() },
        )
        .unwrap();
        let checkpoint = Checkpoint::from_trainer(&trainer);
        let decoded = Checkpoint::from_bytes(&checkpoint.to_bytes()).unwrap();
        assert_eq!(decoded, checkpoint);
        let state = decoded.trainer.as_ref().unwrap();
        assert_eq!(state.sources.len(), 3);
        assert_eq!(state.config.samples, 3);
        let resumed = decoded.resume_trainer().unwrap();
        assert_eq!(resumed.steps(), 0);
        assert_eq!(resumed.snapshot().network, trainer.snapshot().network);
    }

    #[test]
    fn quantized_configs_round_trip() {
        let mut rng = StdRng::seed_from_u64(9);
        let config = BayesConfig { kl_weight: 0.25, ..BayesConfig::default() }
            .with_precision(Precision::PAPER_16BIT);
        let network = Network::bayes_mlp(6, &[5], 2, config, &mut rng);
        let decoded = Checkpoint::from_bytes(&Checkpoint::posterior(&network).to_bytes()).unwrap();
        assert_eq!(decoded.network.config, config);
    }

    #[test]
    fn source_count_mismatch_is_rejected() {
        let trainer = Trainer::new(
            small_network(2),
            TrainerConfig { samples: 2, ..TrainerConfig::default() },
        )
        .unwrap();
        let mut checkpoint = Checkpoint::from_trainer(&trainer);
        checkpoint.trainer.as_mut().unwrap().sources.pop();
        let bytes = checkpoint.to_bytes();
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(StoreError::Train(_))));
    }

    #[test]
    fn non_canonical_encodings_are_rejected() {
        // Canonical-form contract: decode → encode is an identity, so a loaded checkpoint's
        // digest always matches the digest of the file bytes. Forged near-miss encodings
        // must therefore be rejected, not normalized.

        // Fp32 precision tag with a nonzero (ignored-looking) frac_bits field. In a
        // posterior-only payload the config starts at byte 1 (after the trainer tag).
        let network = small_network(4);
        let bytes = Checkpoint::posterior(&network).to_bytes();
        let mut payload = codec::unframe(&bytes).unwrap().to_vec();
        assert_eq!(payload[1], 0, "Fp32 tag expected at the config offset");
        payload[2] = 7; // low byte of frac_bits
        let forged = codec::frame(payload);
        assert!(matches!(Checkpoint::from_bytes(&forged), Err(StoreError::Malformed { .. })));

        // LFSR taps out of canonical (strictly ascending) order in a trainer capture.
        let trainer = Trainer::new(small_network(4), TrainerConfig::default()).unwrap();
        let mut checkpoint = Checkpoint::from_trainer(&trainer);
        checkpoint.trainer.as_mut().unwrap().sources[0].grng.lfsr.taps.reverse();
        let bytes = checkpoint.to_bytes();
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(StoreError::Malformed { .. })));
    }

    #[test]
    fn decoded_checkpoints_re_encode_to_identical_bytes() {
        let trainer = Trainer::new(small_network(6), TrainerConfig::default()).unwrap();
        for checkpoint in
            [Checkpoint::from_trainer(&trainer), Checkpoint::posterior(&small_network(6))]
        {
            let bytes = checkpoint.to_bytes();
            let decoded = Checkpoint::from_bytes(&bytes).unwrap();
            assert_eq!(decoded.to_bytes(), bytes, "decode → encode must be an identity");
        }
    }

    #[test]
    fn inconsistent_grng_capture_is_rejected() {
        let trainer = Trainer::new(small_network(2), TrainerConfig::default()).unwrap();
        let mut checkpoint = Checkpoint::from_trainer(&trainer);
        checkpoint.trainer.as_mut().unwrap().sources[0].grng.current_sum ^= 1;
        let bytes = checkpoint.to_bytes();
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(StoreError::Lfsr(_))));
    }
}
