//! **bnn-store** — the deterministic posterior checkpoint store and versioned model registry
//! of the Shift-BNN reproduction.
//!
//! The paper's central observation is a statement about *what is durable*: the posterior
//! `θ = (μ, ρ)` is the artifact of Bayesian training, while every Gaussian ε is regenerable
//! from an LFSR seed and therefore never worth storing. This crate is that observation turned
//! into a persistence layer, completing the train → snapshot → serve → hot-swap lifecycle:
//!
//! * [`Checkpoint`] — a versioned, checksummed, hand-rolled binary serialization (no serde;
//!   the same offline constraint as `sweep::json`) of a [`NetworkSnapshot`] and, for training
//!   checkpoints, the full trainer state: step count, gradient accumulators, and the
//!   mid-stream GRNG register capture of every Monte-Carlo sample's ε source. Save at step
//!   `N`, load, resume — the continued run is **bit-identical** to one that never stopped
//!   (`tests/resume_determinism.rs`);
//! * [`ModelRegistry`] — named, monotonically-versioned checkpoints with atomic publish
//!   (write-then-link; readers never observe partial files), feeding `bnn-serve`'s
//!   `ModelSource::Checkpoint` path so `InferenceEngine`s materialize replicas from trained
//!   posteriors and hot-swap new versions across all pool workers between batches
//!   (`tests/serve_equivalence.rs`);
//! * [`StoreError`] — the typed decode surface: bit-flipped or truncated checkpoint bytes
//!   always fail loudly (checksum/version/bounds), never panic, never mis-load
//!   (`tests/corruption_props.rs`).
//!
//! # Example: train → save → resume → serve
//!
//! ```
//! use bnn_store::{Checkpoint, ModelRegistry};
//! use bnn_train::data::SyntheticDataset;
//! use bnn_train::variational::BayesConfig;
//! use bnn_train::{Network, Trainer, TrainerConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train a few steps.
//! let dataset = SyntheticDataset::generate(&[6], 2, 4, 0.2, 3);
//! let mut rng = StdRng::seed_from_u64(0);
//! let network = Network::bayes_mlp(6, &[8], 2, BayesConfig::default(), &mut rng);
//! let mut trainer = Trainer::new(network, TrainerConfig::default())?;
//! trainer.train_epoch(&dataset)?;
//!
//! // Snapshot everything; bytes round-trip bit-exactly.
//! let checkpoint = Checkpoint::from_trainer(&trainer);
//! let decoded = Checkpoint::from_bytes(&checkpoint.to_bytes())?;
//! let mut resumed = decoded.resume_trainer()?;
//! assert_eq!(resumed.steps(), trainer.steps());
//!
//! // Publish to a registry (atomic, monotonically versioned).
//! let root = std::env::temp_dir().join(format!("bnn-store-doc-{}", std::process::id()));
//! let registry = ModelRegistry::open(&root)?;
//! let version = registry.publish("bmlp", &checkpoint)?;
//! assert_eq!(registry.latest("bmlp")?, Some(version));
//! let (_, source) = registry.serve_source("bmlp", None, vec![6])?;
//! assert_eq!(source.epsilon_count(), checkpoint.epsilon_count());
//! # std::fs::remove_dir_all(&root).ok();
//! # Ok(())
//! # }
//! ```
//!
//! [`NetworkSnapshot`]: bnn_train::snapshot::NetworkSnapshot

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod registry;

pub use checkpoint::{Checkpoint, TrainerState};
pub use error::StoreError;
pub use registry::ModelRegistry;
