//! Resume determinism: train `K` steps → checkpoint (through the **full binary round trip**)
//! → train `K` more, versus `2K` uninterrupted — `to_bits()`-identical posteriors and a
//! bit-identical loss trace.
//!
//! This is the acceptance test of the whole store: a checkpoint that loses *any* state —
//! one gradient accumulator, one GRNG register bit, one ρ value rounded through text — would
//! diverge here, because Bayes-by-Backprop training is chaotic in exactly the way that
//! amplifies single-ULP differences into visible loss drift within a few steps.

use bnn_store::Checkpoint;
use bnn_tensor::Precision;
use bnn_train::data::SyntheticDataset;
use bnn_train::trainer::StepMetrics;
use bnn_train::variational::BayesConfig;
use bnn_train::{EpsilonStrategy, Network, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(&[1, 8, 8], 3, 6, 0.2, 41)
}

fn fresh_trainer(strategy: EpsilonStrategy, precision: Precision) -> Trainer {
    let mut rng = StdRng::seed_from_u64(1213);
    let config = BayesConfig::default().with_precision(precision);
    let network = Network::bayes_lenet(&[1, 8, 8], 3, config, &mut rng);
    Trainer::new(network, TrainerConfig { samples: 3, learning_rate: 0.05, strategy, seed: 99 })
        .unwrap()
}

/// Drives training steps `start..start + steps`, cycling the dataset by global step index
/// (the trainer's own step counter keeps the cursor consistent across resume boundaries).
fn drive(trainer: &mut Trainer, dataset: &SyntheticDataset, steps: usize) -> Vec<StepMetrics> {
    (0..steps)
        .map(|_| {
            let (image, label) = dataset.example(trainer.steps() as usize % dataset.len());
            trainer.train_example(image, label).unwrap()
        })
        .collect()
}

/// Every parameter bit of two runs, compared exactly (`PartialEq` on tensors is `f32`
/// equality, which distinguishes every bit pattern except `0.0 == -0.0` and NaN — the
/// additional digest equality below closes even that gap at the byte level).
fn assert_identical_runs(strategy: EpsilonStrategy, precision: Precision, k: usize) {
    let data = dataset();

    // Arm A: 2K uninterrupted steps.
    let mut uninterrupted = fresh_trainer(strategy, precision);
    let trace_a = drive(&mut uninterrupted, &data, 2 * k);

    // Arm B: K steps, checkpoint through bytes, resume in a brand-new trainer, K more.
    let mut first_leg = fresh_trainer(strategy, precision);
    let mut trace_b = drive(&mut first_leg, &data, k);
    let bytes = Checkpoint::from_trainer(&first_leg).to_bytes();
    drop(first_leg);
    let mut resumed = Checkpoint::from_bytes(&bytes).unwrap().resume_trainer().unwrap();
    assert_eq!(resumed.steps(), k as u64, "step count must survive the round trip");
    trace_b.extend(drive(&mut resumed, &data, k));

    // The loss traces must agree step for step, bit for bit.
    assert_eq!(trace_a.len(), trace_b.len());
    for (step, (a, b)) in trace_a.iter().zip(&trace_b).enumerate() {
        assert_eq!(
            a.total_loss.to_bits(),
            b.total_loss.to_bits(),
            "loss diverged at step {step} ({strategy:?}, {precision:?}): {} vs {}",
            a.total_loss,
            b.total_loss
        );
        assert_eq!(a.nll.to_bits(), b.nll.to_bits(), "nll diverged at step {step}");
    }

    // And the final states must be byte-identical, posterior and generators alike.
    let final_a = Checkpoint::from_trainer(&uninterrupted);
    let final_b = Checkpoint::from_trainer(&resumed);
    assert_eq!(final_a.digest(), final_b.digest(), "final checkpoint bytes diverged");
    assert_eq!(final_a, final_b);
}

#[test]
fn lfsr_retrieve_resume_is_bit_identical() {
    assert_identical_runs(EpsilonStrategy::LfsrRetrieve, Precision::Fp32, 5);
}

#[test]
fn store_replay_resume_is_bit_identical() {
    assert_identical_runs(EpsilonStrategy::StoreReplay, Precision::Fp32, 4);
}

#[test]
fn quantized_training_resume_is_bit_identical() {
    assert_identical_runs(EpsilonStrategy::LfsrRetrieve, Precision::PAPER_16BIT, 4);
}

#[test]
fn snapshot_boundaries_compose() {
    // Checkpointing twice (K, then K more) must equal checkpointing once — boundaries are
    // transparent wherever they land.
    let data = dataset();
    let mut reference = fresh_trainer(EpsilonStrategy::LfsrRetrieve, Precision::Fp32);
    drive(&mut reference, &data, 6);

    let mut leg1 = fresh_trainer(EpsilonStrategy::LfsrRetrieve, Precision::Fp32);
    drive(&mut leg1, &data, 2);
    let mut leg2 = Checkpoint::from_bytes(&Checkpoint::from_trainer(&leg1).to_bytes())
        .unwrap()
        .resume_trainer()
        .unwrap();
    // Continue where leg1 stopped: steps 2 and 3 of the cycled dataset.
    for s in 2..4 {
        let (image, label) = data.example(s % data.len());
        leg2.train_example(image, label).unwrap();
    }
    let mut leg3 = Checkpoint::from_bytes(&Checkpoint::from_trainer(&leg2).to_bytes())
        .unwrap()
        .resume_trainer()
        .unwrap();
    for s in 4..6 {
        let (image, label) = data.example(s % data.len());
        leg3.train_example(image, label).unwrap();
    }
    assert_eq!(
        Checkpoint::from_trainer(&reference).digest(),
        Checkpoint::from_trainer(&leg3).digest(),
        "two checkpoint boundaries diverged from zero boundaries"
    );
}
