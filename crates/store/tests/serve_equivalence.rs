//! Serve equivalence: a replica materialized from a checkpoint that went **through the full
//! persistence pipeline** (encode → publish → registry load → decode) answers byte-identically
//! to a replica built from the in-memory posterior it captured — across 1-vs-N workers, and
//! whether the checkpoint arrives as the engine's initial source or via a mid-stream hot-swap.
//!
//! This closes the lifecycle loop the store exists for: train → snapshot → publish → serve →
//! hot-swap, with the answers provably independent of which side of the disk the posterior
//! came from.

use bnn_serve::{
    BatchPolicy, CheckpointReplica, InferenceEngine, ModelSource, ServeMode, VersionSwap,
    WorkloadSpec,
};
use bnn_store::{Checkpoint, ModelRegistry};
use bnn_train::data::SyntheticDataset;
use bnn_train::variational::BayesConfig;
use bnn_train::{Network, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

const INPUT_SHAPE: [usize; 3] = [1, 8, 8];

/// A fresh registry root under cargo's per-target temp dir (inside `target/`, cleaned by
/// `cargo clean`, never colliding across parallel test binaries). Wiped on every call so
/// version numbers restart at 1 however many times the test binary has run before.
fn registry_root(label: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("registry-{label}"));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Trains a small conv net for a few steps so the served posterior is a *trained* artifact,
/// not an initializer (the lifecycle the store exists for).
fn trained_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = Network::bayes_lenet(&INPUT_SHAPE, 3, BayesConfig::default(), &mut rng);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig { samples: 2, learning_rate: 0.05, ..TrainerConfig::default() },
    )
    .unwrap();
    let dataset = SyntheticDataset::generate(&INPUT_SHAPE, 3, 2, 0.2, seed);
    trainer.train_epoch(&dataset).unwrap();
    Checkpoint::from_trainer(&trainer).build_network().unwrap()
}

fn in_memory_source(network: &Network, label: &str) -> ModelSource {
    ModelSource::Checkpoint(
        CheckpointReplica::new(label, network.snapshot(), INPUT_SHAPE.to_vec()).unwrap(),
    )
}

fn trace(requests: usize) -> Vec<bnn_serve::InferRequest> {
    WorkloadSpec::uniform(requests, 3, 4, 2026).generate_for_shape(&INPUT_SHAPE)
}

#[test]
fn registry_loaded_replicas_answer_byte_identically_to_in_memory_ones() {
    let network = trained_network(7);
    let in_memory = in_memory_source(&network, "blenet@v1");

    // Through the full pipeline: bytes → atomic publish → registry load → ModelSource.
    let registry = ModelRegistry::open(registry_root("serve-equivalence")).unwrap();
    let version = registry.publish("blenet", &Checkpoint::posterior(&network)).unwrap();
    let (loaded_version, from_disk) =
        registry.serve_source("blenet", None, INPUT_SHAPE.to_vec()).unwrap();
    assert_eq!(loaded_version, version);

    let policy = BatchPolicy { max_batch: 4, max_wait_ticks: 8 };
    let requests = trace(18);
    let baseline = InferenceEngine::from_source(in_memory, policy, 1).run(&requests);
    for workers in [1, 2, 4] {
        let served =
            InferenceEngine::from_source(from_disk.clone(), policy, workers).run(&requests);
        assert_eq!(
            baseline.responses_json(),
            served.responses_json(),
            "disk-loaded replica diverged from the in-memory posterior at {workers} workers"
        );
    }
}

#[test]
fn hot_swapped_checkpoint_replicas_match_their_dedicated_engine() {
    let v1_network = trained_network(11);
    let v2_network = trained_network(12);
    let registry = ModelRegistry::open(registry_root("hot-swap")).unwrap();
    registry.publish("blenet", &Checkpoint::posterior(&v1_network)).unwrap();
    registry.publish("blenet", &Checkpoint::posterior(&v2_network)).unwrap();
    assert_eq!(registry.versions("blenet").unwrap(), vec![1, 2]);

    let (_, v1) = registry.serve_source("blenet", Some(1), INPUT_SHAPE.to_vec()).unwrap();
    let (_, v2) = registry.serve_source("blenet", Some(2), INPUT_SHAPE.to_vec()).unwrap();

    let policy = BatchPolicy { max_batch: 3, max_wait_ticks: 6 };
    let requests = trace(24);
    let swaps = [VersionSwap { at_tick: 45, source: v2.clone() }];

    let baseline =
        InferenceEngine::from_source(v1.clone(), policy, 1).run_with_swaps(&requests, &swaps);
    // 1-vs-N workers: byte-identical, swap schedule included.
    for workers in [2, 4] {
        let parallel = InferenceEngine::from_source(v1.clone(), policy, workers)
            .run_with_swaps(&requests, &swaps);
        assert_eq!(baseline.responses_json(), parallel.responses_json());
        assert_eq!(baseline.batches, parallel.batches);
    }

    // Each side of the boundary matches the single-version engine built from the same
    // registry artifact — the swapped-in replica is not an approximation of v2, it *is* v2.
    let v1_only = InferenceEngine::from_source(v1, policy, 2).run(&requests);
    let v2_only = InferenceEngine::from_source(v2, policy, 2).run(&requests);
    let mut request_index = 0usize;
    let mut saw_both = (false, false);
    for batch in &baseline.batches {
        for _ in 0..batch.size {
            let expected = if batch.version == 0 {
                saw_both.0 = true;
                &v1_only.responses[request_index]
            } else {
                saw_both.1 = true;
                &v2_only.responses[request_index]
            };
            assert_eq!(&baseline.responses[request_index], expected);
            request_index += 1;
        }
    }
    assert_eq!(request_index, requests.len());
    assert!(saw_both.0 && saw_both.1, "the swap must split this trace");
}

#[test]
fn publish_is_monotonic_and_immutable() {
    let network = trained_network(21);
    let registry = ModelRegistry::open(registry_root("monotonic")).unwrap();
    let checkpoint = Checkpoint::posterior(&network);
    let v1 = registry.publish("m", &checkpoint).unwrap();
    let v2 = registry.publish("m", &checkpoint).unwrap();
    let v3 = registry.publish("m", &checkpoint).unwrap();
    assert_eq!((v1, v2, v3), (1, 2, 3));
    assert_eq!(registry.latest("m").unwrap(), Some(3));
    assert_eq!(registry.models().unwrap(), vec!["m".to_string()]);
    // Same artifact in every version: loading any of them yields the same digest.
    for version in [v1, v2, v3] {
        assert_eq!(registry.load("m", version).unwrap().digest(), checkpoint.digest());
    }
    // Unknown lookups are typed errors.
    assert!(registry.load("m", 9).is_err());
    assert!(registry.load_latest("ghost").is_err());
    assert!(registry.publish("../escape", &checkpoint).is_err());
}

#[test]
fn concurrent_publishers_never_clobber_each_other() {
    let network = trained_network(31);
    let registry = ModelRegistry::open(registry_root("concurrent")).unwrap();
    let checkpoint = Checkpoint::posterior(&network);
    let versions: Vec<u32> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let registry = registry.clone();
                let checkpoint = &checkpoint;
                scope.spawn(move || registry.publish("racy", checkpoint).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut sorted = versions.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), versions.len(), "publishers claimed a duplicate version");
    assert_eq!(registry.versions("racy").unwrap().len(), 4);
    // Every published file is complete and valid (atomicity: no partial writes visible).
    for version in registry.versions("racy").unwrap() {
        registry.load("racy", version).unwrap();
    }
}

#[test]
fn moment_mode_survives_the_checkpoint_round_trip() {
    // The analytic backend serves a *persisted* posterior exactly like the in-memory one it
    // captured: encode → publish → registry load → `MomentNetwork::from_snapshot` produces a
    // byte-identical moment engine, across worker counts, with every response analytic.
    let network = trained_network(41);
    let in_memory = in_memory_source(&network, "blenet@v1");
    let registry = ModelRegistry::open(registry_root("moment-serve")).unwrap();
    registry.publish("blenet", &Checkpoint::posterior(&network)).unwrap();
    let (_, from_disk) = registry.serve_source("blenet", None, INPUT_SHAPE.to_vec()).unwrap();

    let policy = BatchPolicy { max_batch: 4, max_wait_ticks: 8 };
    let requests = trace(18);
    let baseline = InferenceEngine::from_source_with_mode(in_memory, ServeMode::Moment, policy, 1)
        .run(&requests);
    assert!(baseline.responses.iter().all(|r| r.samples == 0));
    for workers in [1, 2, 4] {
        let served = InferenceEngine::from_source_with_mode(
            from_disk.clone(),
            ServeMode::Moment,
            policy,
            workers,
        )
        .run(&requests);
        assert_eq!(
            baseline.responses_json(),
            served.responses_json(),
            "disk-loaded moment replica diverged from the in-memory posterior at {workers} workers"
        );
    }

    // The backends answer from the same posterior but are genuinely different summaries:
    // Monte-Carlo responses over the same trace differ from the analytic ones.
    let mc = InferenceEngine::from_source_with_mode(from_disk, ServeMode::MonteCarlo, policy, 2)
        .run(&requests);
    assert_ne!(baseline.responses_json(), mc.responses_json());
}
