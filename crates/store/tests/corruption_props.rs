//! Corruption robustness: **every** mutilated checkpoint byte stream decodes to a typed
//! [`StoreError`] — never a panic, never a silent mis-load.
//!
//! Strategy: take real checkpoints (posterior-only and full-training), then feed
//! [`Checkpoint::from_bytes`] systematically corrupted variants — single and multiple bit
//! flips at arbitrary offsets, truncations to arbitrary lengths, appended garbage and random
//! byte soup. The container checksum makes silent payload mis-loads impossible (a flip that
//! decodes `Ok` would need an FNV-1a collision *and* a still-valid structure); the header
//! fields each guard themselves; and the payload decoder bounds-checks every read, so even
//! hand-rolled frames with valid checksums cannot panic.

use bnn_store::{Checkpoint, StoreError};
use bnn_train::variational::BayesConfig;
use bnn_train::{Network, Trainer, TrainerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn training_checkpoint_bytes() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(77);
    let network = Network::bayes_lenet(&[1, 8, 8], 3, BayesConfig::default(), &mut rng);
    let trainer =
        Trainer::new(network, TrainerConfig { samples: 2, ..TrainerConfig::default() }).unwrap();
    Checkpoint::from_trainer(&trainer).to_bytes()
}

fn posterior_checkpoint_bytes() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(78);
    let network = Network::bayes_mlp(6, &[5], 2, BayesConfig::default(), &mut rng);
    Checkpoint::posterior(&network).to_bytes()
}

/// Decoding must return a typed error — this helper also re-asserts it cannot panic (the
/// proptest harness would surface a panic as a test failure anyway, making the contract
/// explicit here).
fn assert_typed_failure(bytes: &[u8]) {
    match Checkpoint::from_bytes(bytes) {
        Ok(_) => panic!("corrupted checkpoint decoded successfully"),
        Err(
            StoreError::BadMagic
            | StoreError::UnsupportedVersion { .. }
            | StoreError::Truncated { .. }
            | StoreError::TrailingBytes { .. }
            | StoreError::ChecksumMismatch { .. }
            | StoreError::Malformed { .. }
            | StoreError::Lfsr(_)
            | StoreError::Shape(_)
            | StoreError::Train(_),
        ) => {}
        Err(other) => panic!("unexpected error class for byte corruption: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any single bit flip anywhere in a training checkpoint fails loudly.
    #[test]
    fn single_bit_flips_yield_typed_errors(position in 0usize..1_000_000, bit in 0u8..8) {
        let mut bytes = training_checkpoint_bytes();
        let index = position % bytes.len();
        bytes[index] ^= 1 << bit;
        assert_typed_failure(&bytes);
    }

    /// Multiple simultaneous flips (burst corruption) fail loudly too.
    #[test]
    fn burst_corruption_yields_typed_errors(
        flips in prop::collection::vec((0usize..1_000_000, 0u8..8), 2..16),
    ) {
        let mut bytes = posterior_checkpoint_bytes();
        let mut changed = false;
        let original = bytes.clone();
        for (position, bit) in flips {
            let index = position % bytes.len();
            bytes[index] ^= 1 << bit;
            changed = changed || bytes[index] != original[index];
        }
        // Paired flips can cancel; only a stream that actually differs must fail.
        if changed {
            assert_typed_failure(&bytes);
        }
    }

    /// Every truncation length — header-only, mid-payload, off-by-one — fails loudly.
    #[test]
    fn truncations_yield_typed_errors(keep in 0usize..1_000_000) {
        let bytes = training_checkpoint_bytes();
        let keep = keep % bytes.len(); // strictly shorter than the full stream
        assert_typed_failure(&bytes[..keep]);
    }

    /// Appended garbage (a torn download concatenated with noise) fails loudly.
    #[test]
    fn trailing_garbage_yields_typed_errors(garbage in prop::collection::vec(0u8..=255, 1..64)) {
        let mut bytes = posterior_checkpoint_bytes();
        bytes.extend_from_slice(&garbage);
        assert_typed_failure(&bytes);
    }

    /// Random byte soup — no valid header at all — fails loudly.
    #[test]
    fn random_bytes_yield_typed_errors(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        // The odds of randomly producing the magic, a valid version, a consistent length
        // AND a matching checksum are negligible; if it ever happens the structure check
        // still has to pass, which `assert_typed_failure` would surface.
        if Checkpoint::from_bytes(&bytes).is_ok() {
            panic!("random bytes decoded as a checkpoint");
        }
    }
}

#[test]
fn uncorrupted_checkpoints_still_decode() {
    // The control arm: the generators above produce valid streams before mutation.
    let training = training_checkpoint_bytes();
    let posterior = posterior_checkpoint_bytes();
    assert!(Checkpoint::from_bytes(&training).unwrap().is_training_checkpoint());
    assert!(!Checkpoint::from_bytes(&posterior).unwrap().is_training_checkpoint());
}
