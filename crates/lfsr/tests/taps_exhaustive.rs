//! Exhaustive validation of the maximal-length tap table.
//!
//! Before this suite, `taps::validate_taps` was only exercised for the widths the defaults
//! happen to use; a stale entry at any other width would ship silently. Here every entry of
//! the table is checked for:
//!
//! * structural validity (`validate_taps`, sortedness, tail tap present);
//! * the reversibility contract — forward/backward round-trips restore the seed pattern at
//!   every width, including the multi-word ones;
//! * **maximality**: for every brute-forceable width (≤ 16) the sequence must visit all
//!   `2^w − 1` non-zero patterns before repeating; wider entries get a no-early-cycle spot
//!   check (a truly stale polynomial typically collapses into a short cycle).

use bnn_lfsr::taps::{maximal_taps, supported_widths, validate_taps};
use bnn_lfsr::{Lfsr, LfsrError};

#[test]
fn every_table_entry_is_structurally_valid() {
    let widths = supported_widths();
    assert!(!widths.is_empty());
    for width in widths {
        let taps = maximal_taps(width).expect("listed width must resolve");
        validate_taps(width, &taps).expect("table entry must validate");
        assert_eq!(*taps.last().unwrap(), width, "tail register must be tapped (width {width})");
        assert!(taps.windows(2).all(|p| p[0] < p[1]), "taps sorted (width {width})");
        assert!(taps.len() == 2 || taps.len() == 4, "2 or 4 taps (width {width})");
    }
}

#[test]
fn forward_backward_round_trip_restores_the_seed_at_every_width() {
    for width in supported_widths() {
        let mut lfsr = Lfsr::with_maximal_taps(width, 0xACE1_2345_6789_ABCD).unwrap();
        let seed_state = lfsr.clone();
        lfsr.step_forward_by(1000);
        lfsr.step_backward_by(1000);
        assert_eq!(lfsr.state_words(), seed_state.state_words(), "width {width}");
        assert_eq!(lfsr.position(), 0, "width {width}");

        // Interleaved walk: net displacement of zero must restore the pattern too.
        for (fwd, bwd) in [(7usize, 3usize), (11, 15), (0, 0)] {
            lfsr.step_forward_by(fwd);
            lfsr.step_backward_by(bwd);
        }
        lfsr.step_forward_by(0);
        lfsr.step_backward_by(0);
        assert_eq!(lfsr.state_words(), seed_state.state_words(), "width {width}");
    }
}

#[test]
fn backward_steps_reproduce_the_dropped_forward_bits_at_every_width() {
    for width in supported_widths() {
        let mut lfsr = Lfsr::with_maximal_taps(width, 0xBEEF).unwrap();
        let mut dropped = Vec::new();
        for _ in 0..128 {
            dropped.push(lfsr.step_forward());
        }
        for expected_tail in dropped.iter().rev() {
            lfsr.step_backward();
            assert_eq!(lfsr.register(width), *expected_tail, "width {width}");
        }
    }
}

#[test]
fn brute_forceable_widths_are_maximal_length() {
    // For every width small enough to enumerate, the tap polynomial must generate the full
    // m-sequence: all 2^w - 1 non-zero patterns, then the seed again.
    for width in supported_widths().into_iter().filter(|&w| w <= 16) {
        let mut lfsr = Lfsr::with_maximal_taps(width, 1).unwrap();
        let seed = lfsr.state_words().to_vec();
        let maximal = (1u64 << width) - 1;
        let mut period = 0u64;
        loop {
            lfsr.step_forward();
            period += 1;
            if lfsr.state_words() == seed.as_slice() {
                break;
            }
            assert!(period <= maximal, "width {width}: period exceeds 2^{width}-1, entry is stale");
        }
        assert_eq!(period, maximal, "width {width}: tap entry is not maximal-length");
    }
}

#[test]
fn wide_entries_do_not_collapse_into_short_cycles() {
    // Full enumeration is infeasible beyond ~16 bits; a stale polynomial usually betrays
    // itself by cycling quickly, so check no pattern recurs within a generous window.
    for width in supported_widths().into_iter().filter(|&w| w > 16) {
        let mut lfsr = Lfsr::with_maximal_taps(width, 0x1).unwrap();
        let seed = lfsr.state_words().to_vec();
        for step in 1..=10_000u32 {
            lfsr.step_forward();
            assert_ne!(
                lfsr.state_words(),
                seed.as_slice(),
                "width {width}: sequence returned to the seed after only {step} steps"
            );
        }
    }
}

#[test]
fn validate_taps_rejects_malformed_sets_at_every_width() {
    for width in supported_widths() {
        assert!(validate_taps(width, &[]).is_err(), "empty (width {width})");
        assert!(validate_taps(width, &[0, width]).is_err(), "zero tap (width {width})");
        assert!(validate_taps(width, &[width + 1, width]).is_err(), "out of range (width {width})");
        assert!(validate_taps(width, &[width, width]).is_err(), "duplicate (width {width})");
        if width > 1 {
            assert!(validate_taps(width, &[width - 1]).is_err(), "missing tail (width {width})");
        }
        assert!(validate_taps(width, &[width]).is_ok(), "tail alone validates (width {width})");
    }
}

#[test]
fn widths_outside_the_table_error_cleanly() {
    for width in [0usize, 1, 2, 3, 5, 7, 9, 100, 255, 257, 4096] {
        assert_eq!(
            maximal_taps(width),
            Err(LfsrError::UnknownTapWidth { width }),
            "width {width} must not resolve"
        );
    }
}
