//! Property-based tests for the snapshot/restore APIs ([`Lfsr::state`], [`Grng::state`] and
//! the `from_state`/`restore` counterparts).
//!
//! The checkpoint store's resume-determinism guarantee rests on one invariant: a generator
//! rebuilt from a captured state continues its stream **exactly** where the original left
//! off — same values, same register trajectory, in both directions, for every supported
//! register width. These properties pin that invariant at the LFSR layer so the store's
//! end-to-end tests only have to cover the serialization on top.

use bnn_lfsr::taps::supported_widths;
use bnn_lfsr::{Grng, GrngMode, Lfsr};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = usize> {
    prop::sample::select(supported_widths())
}

fn arb_seed() -> impl Strategy<Value = u64> {
    // Force the lowest bit so the seed stays non-zero after masking to any register width.
    (1u64..u64::MAX).prop_map(|s| s | 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A register restored from a mid-stream capture replays the identical forward bit
    /// sequence and trajectory the original continues with.
    #[test]
    fn lfsr_restore_continues_the_forward_stream(
        width in arb_width(),
        seed in arb_seed(),
        prefix in 0usize..500,
        tail in 1usize..300,
    ) {
        let mut original = Lfsr::with_maximal_taps(width, seed).unwrap();
        original.step_forward_by(prefix);
        let snapshot = original.state();
        let mut resumed = Lfsr::from_state(&snapshot).unwrap();
        prop_assert_eq!(resumed.position(), original.position());
        for _ in 0..tail {
            prop_assert_eq!(resumed.step_forward(), original.step_forward());
            prop_assert_eq!(resumed.state_words(), original.state_words());
        }
    }

    /// The same continuation equality holds walking backwards across the snapshot boundary.
    #[test]
    fn lfsr_restore_continues_the_backward_stream(
        width in arb_width(),
        seed in arb_seed(),
        prefix in 1usize..500,
    ) {
        let mut original = Lfsr::with_maximal_taps(width, seed).unwrap();
        original.step_forward_by(prefix);
        let mut resumed = Lfsr::from_state(&original.state()).unwrap();
        for _ in 0..prefix {
            prop_assert_eq!(resumed.step_backward(), original.step_backward());
        }
        prop_assert_eq!(resumed.state_words(), original.state_words());
        prop_assert_eq!(resumed.position(), 0);
    }

    /// A generator restored mid-stream emits the identical ε continuation (forward), then
    /// retrieves the identical reversed stream across the snapshot boundary — the exact
    /// situation of a training run resumed from a checkpoint between iterations.
    #[test]
    fn grng_restore_continues_generation_and_retrieval(
        width in arb_width(),
        seed in arb_seed(),
        prefix in 0usize..300,
        tail in 1usize..200,
    ) {
        let mut original = Grng::new(width, seed).unwrap();
        original.generate(prefix);
        let snapshot = original.state();
        let mut resumed = Grng::from_state(&snapshot).unwrap();
        prop_assert_eq!(resumed.generate(tail), original.generate(tail));
        original.set_mode(GrngMode::Backward);
        resumed.set_mode(GrngMode::Backward);
        // Retrieval walks back across the snapshot boundary into the prefix.
        prop_assert_eq!(
            resumed.retrieve(prefix + tail),
            original.retrieve(prefix + tail)
        );
        prop_assert_eq!(resumed.outstanding(), original.outstanding());
        prop_assert_eq!(resumed.current_sum(), original.current_sum());
    }

    /// Restoring a capture into an unrelated generator of the same width overwrites it
    /// completely: the restored generator is indistinguishable from the original.
    #[test]
    fn grng_in_place_restore_equals_from_state(
        width in arb_width(),
        seed_a in arb_seed(),
        seed_b in arb_seed(),
        prefix in 0usize..200,
    ) {
        let mut original = Grng::new(width, seed_a).unwrap();
        original.generate(prefix);
        let snapshot = original.state();
        let mut target = Grng::new(width, seed_b).unwrap();
        target.generate(3);
        target.restore(&snapshot).unwrap();
        prop_assert_eq!(&target, &Grng::from_state(&snapshot).unwrap());
        prop_assert_eq!(target.generate(32), original.generate(32));
    }
}
