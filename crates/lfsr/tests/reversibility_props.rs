//! Property-based tests for the reversibility invariants of the LFSR and GRNG.
//!
//! These are the invariants the whole Shift-BNN design rests on: every forward pattern/ε stream
//! must be retrievable, bit-exactly and in reverse order, by shifting backwards — for any width,
//! seed, and interleaving of forward/backward phases.

use bnn_lfsr::taps::supported_widths;
use bnn_lfsr::{Grng, GrngBank, GrngMode, Lfsr};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = usize> {
    prop::sample::select(supported_widths())
}

fn arb_seed() -> impl Strategy<Value = u64> {
    // Force the lowest bit so the seed stays non-zero after masking to any register width.
    (1u64..u64::MAX).prop_map(|s| s | 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward `n` steps followed by backward `n` steps restores the exact register state.
    #[test]
    fn forward_backward_identity(width in arb_width(), seed in arb_seed(), steps in 0usize..2000) {
        let mut lfsr = Lfsr::with_maximal_taps(width, seed).unwrap();
        let original = lfsr.clone();
        lfsr.step_forward_by(steps);
        lfsr.step_backward_by(steps);
        prop_assert_eq!(lfsr.state_words(), original.state_words());
        prop_assert_eq!(lfsr.position(), 0);
    }

    /// The backward pattern sequence is exactly the reversed forward pattern sequence.
    #[test]
    fn backward_patterns_reverse_forward_patterns(width in arb_width(), seed in arb_seed(), steps in 1usize..300) {
        let mut lfsr = Lfsr::with_maximal_taps(width, seed).unwrap();
        let mut forward_patterns = Vec::with_capacity(steps);
        for _ in 0..steps {
            lfsr.step_forward();
            forward_patterns.push(lfsr.pattern());
        }
        // Walking backwards visits the same patterns in reverse order *before* each back-step.
        for expected in forward_patterns.iter().rev() {
            prop_assert_eq!(&lfsr.pattern(), expected);
            lfsr.step_backward();
        }
    }

    /// The GRNG's ε retrieval is the bit-exact reverse of generation, for any width and count.
    #[test]
    fn grng_retrieval_is_exact(width in arb_width(), seed in arb_seed(), count in 1usize..512) {
        let mut grng = Grng::new(width, seed).unwrap();
        let forward = grng.generate(count);
        grng.set_mode(GrngMode::Backward);
        let retrieved = grng.retrieve(count);
        let reversed: Vec<f64> = forward.into_iter().rev().collect();
        prop_assert_eq!(retrieved, reversed);
    }

    /// The incremental pop-count never drifts from a full recount, across arbitrary
    /// interleavings of forward and backward bursts (as happens across FW/BW/GC stage
    /// boundaries of consecutive training iterations).
    #[test]
    fn incremental_sum_never_drifts(seed in arb_seed(), bursts in prop::collection::vec((prop::bool::ANY, 1usize..64), 1..20)) {
        let mut grng = Grng::shift_bnn_default(seed).unwrap();
        let mut generated: i64 = 0;
        for (forward, len) in bursts {
            if forward || generated == 0 {
                grng.set_mode(GrngMode::Forward);
                grng.generate(len);
                generated += len as i64;
            } else {
                let take = (len as i64).min(generated) as usize;
                grng.set_mode(GrngMode::Backward);
                grng.retrieve(take);
                generated -= take as i64;
            }
            prop_assert_eq!(grng.current_sum(), grng.lfsr().popcount());
        }
    }

    /// Banks round-trip per-slice streams regardless of slice count.
    #[test]
    fn bank_round_trip(count in 1usize..16, seed in arb_seed(), per_slice in 1usize..64) {
        let mut bank = GrngBank::new(count, 64, seed).unwrap();
        let mut forward = vec![Vec::new(); count];
        for _ in 0..per_slice {
            for (i, eps) in bank.generate_all().into_iter().enumerate() {
                forward[i].push(eps);
            }
        }
        bank.set_mode(GrngMode::Backward);
        for step in (0..per_slice).rev() {
            for (i, eps) in bank.retrieve_all().into_iter().enumerate() {
                prop_assert_eq!(eps, forward[i][step]);
            }
        }
    }

    /// A forward step never changes the pop-count by more than one, which bounds how fast ε can
    /// move — the property the incremental "bit update" adder relies on.
    #[test]
    fn popcount_changes_by_at_most_one(width in arb_width(), seed in arb_seed(), steps in 1usize..500) {
        let mut lfsr = Lfsr::with_maximal_taps(width, seed).unwrap();
        let mut prev = lfsr.popcount() as i64;
        for _ in 0..steps {
            lfsr.step_forward();
            let cur = lfsr.popcount() as i64;
            prop_assert!((cur - prev).abs() <= 1);
            prev = cur;
        }
    }
}
