//! Pins the word-parallel ε generation (`Grng::fill_epsilon`, built on
//! `Lfsr::step_forward64`) against the bit-serial path for **every** supported LFSR width —
//! the same stream, the same register trajectory, and full reversibility afterwards.

use bnn_lfsr::taps::supported_widths;
use bnn_lfsr::{Grng, GrngMode, Lfsr};

/// Block lengths straddling the 64-step batch boundary.
const LENGTHS: &[usize] = &[1, 63, 64, 65, 128, 257];

#[test]
fn fill_epsilon_matches_bit_serial_stream_for_all_supported_widths() {
    for width in supported_widths() {
        for &len in LENGTHS {
            let mut fast = Grng::new(width, 0xACE1).unwrap();
            let mut serial = Grng::new(width, 0xACE1).unwrap();
            let mut got = vec![0.0f32; len];
            fast.fill_epsilon(&mut got);
            for (i, g) in got.iter().enumerate() {
                let want = serial.next_epsilon() as f32;
                assert_eq!(
                    g.to_bits(),
                    want.to_bits(),
                    "width {width}, len {len}, index {i}: {g} vs {want}"
                );
            }
            // The register trajectory itself must agree, not just the emitted stream.
            assert_eq!(
                fast.lfsr().state_words(),
                serial.lfsr().state_words(),
                "width {width}, len {len}: register state diverged"
            );
            assert_eq!(fast.current_sum(), serial.current_sum());
            assert_eq!(fast.outstanding(), serial.outstanding());
        }
    }
}

#[test]
fn default_shift_bnn_register_takes_the_word_parallel_path() {
    // The whole point of the batching: the production 256-bit register qualifies.
    let lfsr = Lfsr::shift_bnn_default(7).unwrap();
    assert!(lfsr.supports_batch64());
    // The 64-bit ablation width has a tap below 64 and must not (it would corrupt feedback).
    let lfsr = Lfsr::with_maximal_taps(64, 7).unwrap();
    assert!(!lfsr.supports_batch64());
}

#[test]
fn step_forward64_equals_sixty_four_single_steps() {
    for width in supported_widths() {
        let mut batched = Lfsr::with_maximal_taps(width, 0xBEEF).unwrap();
        if !batched.supports_batch64() {
            continue;
        }
        let mut serial = batched.clone();
        batched.step_forward64();
        serial.step_forward_by(64);
        assert_eq!(batched.state_words(), serial.state_words(), "width {width}");
        assert_eq!(batched.position(), serial.position());
    }
}

#[test]
fn word_parallel_generation_remains_fully_reversible() {
    // ε generated via the batch must be retrievable by backward shifting, exactly like the
    // bit-serial path — the paper's reversibility property is representation-independent.
    let mut grng = Grng::shift_bnn_default(42).unwrap();
    let mut forward = vec![0.0f32; 200];
    grng.fill_epsilon(&mut forward);
    grng.set_mode(GrngMode::Backward);
    let mut retrieved = vec![0.0f32; 200];
    grng.fill_retrieved(&mut retrieved);
    assert_eq!(forward, retrieved, "fill_retrieved must return the block in generation order");
    assert_eq!(grng.outstanding(), 0);
    assert_eq!(grng.current_sum(), grng.initial_sum());
}

#[test]
fn reseeding_reproduces_a_fresh_generator_without_reallocation() {
    let mut reused = Grng::shift_bnn_default(1).unwrap();
    let mut scratch = vec![0.0f32; 100];
    reused.fill_epsilon(&mut scratch);
    reused.reseed_shift_bnn(99);
    let mut fresh = Grng::shift_bnn_default(99).unwrap();
    let mut a = vec![0.0f32; 100];
    let mut b = vec![0.0f32; 100];
    reused.fill_epsilon(&mut a);
    fresh.fill_epsilon(&mut b);
    assert_eq!(a, b, "reseeded generator must replay the fresh generator's stream");

    let mut reused = Grng::new(16, 3).unwrap();
    reused.generate(10);
    reused.reseed_plain(5).unwrap();
    let mut fresh = Grng::new(16, 5).unwrap();
    assert_eq!(reused.generate(20), fresh.generate(20));
    assert!(reused.reseed_plain(0).is_err(), "zero seeds stay rejected");
}

#[test]
fn skip_forward_lands_in_the_bit_serial_state() {
    for width in supported_widths() {
        for &n in &[0usize, 1, 63, 64, 100, 257] {
            let mut skipped = Grng::new(width, 0x1D).unwrap();
            let mut stepped = Grng::new(width, 0x1D).unwrap();
            skipped.skip_forward(n);
            for _ in 0..n {
                stepped.next_epsilon();
            }
            assert_eq!(
                skipped.lfsr().state_words(),
                stepped.lfsr().state_words(),
                "width {width}, n {n}"
            );
            assert_eq!(skipped.current_sum(), stepped.current_sum());
            assert_eq!(skipped.outstanding(), stepped.outstanding());
        }
    }
}

#[test]
fn generate_delegates_to_the_same_word_parallel_core() {
    let mut a = Grng::shift_bnn_default(1234).unwrap();
    let mut b = Grng::shift_bnn_default(1234).unwrap();
    let via_vec = a.generate(150);
    let mut via_fill = vec![0.0f32; 150];
    b.fill_epsilon(&mut via_fill);
    for (x, y) in via_vec.iter().zip(&via_fill) {
        assert_eq!((*x as f32).to_bits(), y.to_bits());
    }
}
