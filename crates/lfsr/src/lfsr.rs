//! Reversible Fibonacci linear feedback shift registers.
//!
//! The register file is modelled exactly as in Fig. 4 of the paper: registers `R_1..R_n`, where
//! `R_1` is the *head* (receives the feedback bit on a forward shift) and `R_n` is the *tail*
//! (its value is dropped on a forward shift). A forward shift moves every bit one position to the
//! right (`R_i -> R_{i+1}`).
//!
//! The crate's central property is **reversibility**: because XOR satisfies `A = C ⊕ B` whenever
//! `A ⊕ B = C`, the bit dropped from the tail can be reconstructed from the current head and the
//! shifted tap registers (Eq. 3 of the paper), so shifting the register *backwards* reproduces
//! every earlier pattern without storing anything.

use crate::error::LfsrError;
use crate::taps::{maximal_taps, validate_taps};

/// Maximum supported register width, in bits.
pub const MAX_WIDTH: usize = 4096;

/// The 4-word splitmix64 expansion [`Lfsr::shift_bnn_default`] seeds a 256-bit register from
/// (exposed so in-place reseeding can reproduce the construction exactly).
pub fn shift_bnn_seed_words(seed: u64) -> [u64; 4] {
    let mut words = [0u64; 4];
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    for w in &mut words {
        // splitmix64 step: deterministic, well-mixed, never all zero across 4 words.
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *w = z ^ (z >> 31);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    }
    words
}

/// A complete, restorable capture of an [`Lfsr`]'s state: everything a register needs to
/// continue its pattern sequence exactly where it left off — the primitive the checkpoint
/// store (`bnn-store`) serializes so a resumed training run draws the identical ε stream.
///
/// Produced by [`Lfsr::state`]; consumed by [`Lfsr::from_state`] / [`Lfsr::restore`], which
/// re-validate every field (a corrupted capture yields an [`LfsrError`], never a register in
/// an impossible configuration).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LfsrState {
    /// Register width in bits.
    pub width: usize,
    /// Tap positions, 1-based, ascending.
    pub taps: Vec<usize>,
    /// Packed register state words (bit `i` of the concatenation is `R_{i+1}`).
    pub state_words: Vec<u64>,
    /// Net forward steps since construction ([`Lfsr::position`]).
    pub position: i64,
}

/// A reversible Fibonacci LFSR with an arbitrary register width.
///
/// Bits are stored packed into `u64` words; bit `i` of the packed state holds register
/// `R_{i+1}`, i.e. index 0 is the head and index `width-1` is the tail.
///
/// # Examples
///
/// ```
/// use bnn_lfsr::Lfsr;
///
/// # fn main() -> Result<(), bnn_lfsr::LfsrError> {
/// let mut lfsr = Lfsr::with_maximal_taps(8, 0b1111_0000)?;
/// let before = lfsr.pattern();
/// lfsr.step_forward();
/// lfsr.step_backward();
/// assert_eq!(lfsr.pattern(), before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr {
    width: usize,
    /// Tap positions, 1-based, sorted ascending; always contains `width`.
    taps: Vec<usize>,
    /// Packed register state: bit `i` is register `R_{i+1}`.
    state: Vec<u64>,
    /// Number of forward steps minus backward steps since construction.
    position: i64,
}

fn words_for(width: usize) -> usize {
    width.div_ceil(64)
}

impl Lfsr {
    /// Creates an LFSR with explicit tap positions and a seed.
    ///
    /// The seed is taken from the low `width` bits of `seed_words` (little-endian words); if
    /// fewer words than necessary are supplied the remaining registers start at zero.
    ///
    /// # Errors
    ///
    /// * [`LfsrError::InvalidWidth`] if `width < 2` or `width > MAX_WIDTH`.
    /// * [`LfsrError::InvalidTaps`] if the tap set is invalid (see
    ///   [`validate_taps`](crate::taps::validate_taps)).
    /// * [`LfsrError::ZeroSeed`] if the resulting seed is all zeroes.
    pub fn new(width: usize, taps: &[usize], seed_words: &[u64]) -> Result<Self, LfsrError> {
        if !(2..=MAX_WIDTH).contains(&width) {
            return Err(LfsrError::InvalidWidth { width });
        }
        validate_taps(width, taps)?;
        let mut state = vec![0u64; words_for(width)];
        for (i, word) in state.iter_mut().enumerate() {
            *word = seed_words.get(i).copied().unwrap_or(0);
        }
        // Mask off bits beyond `width` in the last word.
        let rem = width % 64;
        if rem != 0 {
            if let Some(last) = state.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if state.iter().all(|&w| w == 0) {
            return Err(LfsrError::ZeroSeed);
        }
        let mut taps = taps.to_vec();
        taps.sort_unstable();
        Ok(Self { width, taps, state, position: 0 })
    }

    /// Creates an LFSR of the given width using the known maximal-length taps and a 64-bit seed.
    ///
    /// # Errors
    ///
    /// Returns an error if the width has no known maximal-length taps, or the seed is zero.
    pub fn with_maximal_taps(width: usize, seed: u64) -> Result<Self, LfsrError> {
        let taps = maximal_taps(width)?;
        Self::new(width, &taps, &[seed])
    }

    /// Creates a 256-bit LFSR as used by one Shift-BNN GRNG slice, seeding every word from a
    /// simple splitmix of `seed` so the whole register starts populated.
    ///
    /// # Errors
    ///
    /// Returns an error only if `seed`'s expansion happens to be all zeroes, which the splitmix
    /// expansion cannot produce for any input.
    pub fn shift_bnn_default(seed: u64) -> Result<Self, LfsrError> {
        let words = shift_bnn_seed_words(seed);
        let taps = maximal_taps(256)?;
        Self::new(256, &taps, &words)
    }

    /// Width of the register, in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Tap positions, 1-based, ascending.
    pub fn taps(&self) -> &[usize] {
        &self.taps
    }

    /// Net number of forward steps taken since construction (backward steps decrement it).
    ///
    /// A value of zero means the register currently holds its seed pattern.
    pub fn position(&self) -> i64 {
        self.position
    }

    /// Reads register `R_pos` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is zero or greater than the width.
    pub fn register(&self, pos: usize) -> bool {
        assert!(pos >= 1 && pos <= self.width, "register index {pos} out of range");
        let idx = pos - 1;
        (self.state[idx / 64] >> (idx % 64)) & 1 == 1
    }

    fn set_register(&mut self, pos: usize, value: bool) {
        let idx = pos - 1;
        let mask = 1u64 << (idx % 64);
        if value {
            self.state[idx / 64] |= mask;
        } else {
            self.state[idx / 64] &= !mask;
        }
    }

    /// Returns the current pattern as a vector of register values `R_1..R_n`.
    pub fn pattern(&self) -> Vec<bool> {
        (1..=self.width).map(|p| self.register(p)).collect()
    }

    /// Returns the packed state words (bit `i` of the concatenation is `R_{i+1}`).
    pub fn state_words(&self) -> &[u64] {
        &self.state
    }

    /// Number of registers currently holding a `1` (the pattern's population count).
    pub fn popcount(&self) -> u32 {
        self.state.iter().map(|w| w.count_ones()).sum()
    }

    /// XOR of the tapped registers, i.e. the feedback bit a forward shift writes into `R_1`
    /// (Eq. 2 of the paper).
    pub fn feedback_bit(&self) -> bool {
        self.taps.iter().fold(false, |acc, &t| acc ^ self.register(t))
    }

    /// Shifts the register one position forward (right), producing the next pattern.
    ///
    /// Returns the bit that was dropped from the tail register `R_n`.
    pub fn step_forward(&mut self) -> bool {
        let new_head = self.feedback_bit();
        let dropped = self.register(self.width);
        self.shift_right_one();
        self.set_register(1, new_head);
        self.position += 1;
        dropped
    }

    /// Shifts the register one position backward (left), reproducing the previous pattern.
    ///
    /// The tail register receives the bit reconstructed via Eq. 3 of the paper:
    /// `R_n = R'_1 ⊕ R_{a+1} ⊕ R_{b+1} ⊕ ...` where `a, b, ...` are the non-tail taps of the
    /// previous pattern (which now live one position to the right). Returns the bit that was
    /// dropped from the head register `R_1`.
    pub fn step_backward(&mut self) -> bool {
        // XOR the current head with the shifted images of every non-tail tap.
        let mut recovered = self.register(1);
        for &t in &self.taps {
            if t != self.width {
                recovered ^= self.register(t + 1);
            }
        }
        let dropped_head = self.register(1);
        self.shift_left_one();
        self.set_register(self.width, recovered);
        self.position -= 1;
        dropped_head
    }

    /// Whether this register supports the word-parallel 64-step batch
    /// ([`Lfsr::step_forward64`]): the width must be a whole number of 64-bit words and every
    /// tap must sit at position ≥ 64, so that none of the 64 feedback bits of a batch depends
    /// on a bit produced *within* the batch. The Shift-BNN default (width 256, taps
    /// `{246, 251, 254, 256}`) qualifies; narrow ablation widths fall back to bit-serial
    /// stepping.
    pub fn supports_batch64(&self) -> bool {
        self.width >= 64 && self.width.is_multiple_of(64) && self.taps.iter().all(|&t| t >= 64)
    }

    /// Reads 64 consecutive registers starting at 0-based bit position `pos` as one `u64`
    /// (bit `i` of the result is register `R_{pos+i+1}`).
    fn extract64(&self, pos: usize) -> u64 {
        debug_assert!(pos + 64 <= self.width);
        let (wi, sh) = (pos / 64, pos % 64);
        if sh == 0 {
            self.state[wi]
        } else {
            (self.state[wi] >> sh) | (self.state[wi + 1] << (64 - sh))
        }
    }

    /// Advances the register by exactly 64 forward steps in one word-parallel operation —
    /// bit-identical to 64 calls of [`Lfsr::step_forward`], but costing a handful of word
    /// XOR/shift operations instead of 64 full-register shifts.
    ///
    /// Because every tap position `t` satisfies `t ≥ 64`, feedback bit `f_j` of the batch
    /// (`j = 0..64`) is `⊕_t b_{t−1−j}` over *pre-batch* register bits only, so all 64 bits
    /// are computed at once: `⊕_t extract64(t − 64)` holds `f_j` at bit `63 − j` — which is
    /// exactly the value the low word holds after 64 single steps. The remaining words just
    /// move up one slot.
    ///
    /// Returns `(entering, leaving)`: bit `63 − j` of `entering` is the feedback bit inserted
    /// at step `j`, bit `63 − j` of `leaving` is the tail bit dropped at step `j` — the two
    /// streams a GRNG needs to maintain its incremental pop-count through the batch.
    ///
    /// # Panics
    ///
    /// Debug-asserts [`Lfsr::supports_batch64`].
    pub fn step_forward64(&mut self) -> (u64, u64) {
        debug_assert!(self.supports_batch64(), "step_forward64 requires word-aligned taps");
        let mut entering = 0u64;
        for &t in &self.taps {
            entering ^= self.extract64(t - 64);
        }
        let leaving = self.extract64(self.width - 64);
        for i in (1..self.state.len()).rev() {
            self.state[i] = self.state[i - 1];
        }
        self.state[0] = entering;
        self.position += 64;
        (entering, leaving)
    }

    /// Captures the register's complete state for later restoration (or serialization by the
    /// checkpoint store). The capture is self-contained: [`Lfsr::from_state`] rebuilds an
    /// identical register from it alone.
    pub fn state(&self) -> LfsrState {
        LfsrState {
            width: self.width,
            taps: self.taps.clone(),
            state_words: self.state.clone(),
            position: self.position,
        }
    }

    /// Rebuilds a register from a captured state, continuing the pattern sequence exactly
    /// where [`Lfsr::state`] left it (`from_state(lfsr.state())` and `lfsr` produce identical
    /// streams in both directions).
    ///
    /// # Errors
    ///
    /// Every field is re-validated, so a corrupted capture fails loudly:
    ///
    /// * [`LfsrError::InvalidWidth`] / [`LfsrError::InvalidTaps`] for out-of-range geometry;
    /// * [`LfsrError::InvalidState`] when the word count does not match the width or bits are
    ///   set beyond it;
    /// * [`LfsrError::ZeroSeed`] for the all-zero (degenerate) pattern.
    pub fn from_state(state: &LfsrState) -> Result<Self, LfsrError> {
        if !(2..=MAX_WIDTH).contains(&state.width) {
            return Err(LfsrError::InvalidWidth { width: state.width });
        }
        validate_taps(state.width, &state.taps)?;
        if state.state_words.len() != words_for(state.width) {
            return Err(LfsrError::InvalidState {
                detail: format!(
                    "{} state words for a {}-bit register (need {})",
                    state.state_words.len(),
                    state.width,
                    words_for(state.width)
                ),
            });
        }
        let rem = state.width % 64;
        if rem != 0 {
            let last = state.state_words[state.state_words.len() - 1];
            if last & !((1u64 << rem) - 1) != 0 {
                return Err(LfsrError::InvalidState {
                    detail: format!("bits set beyond the {}-bit register width", state.width),
                });
            }
        }
        if state.state_words.iter().all(|&w| w == 0) {
            return Err(LfsrError::ZeroSeed);
        }
        let mut taps = state.taps.clone();
        taps.sort_unstable();
        Ok(Self {
            width: state.width,
            taps,
            state: state.state_words.clone(),
            position: state.position,
        })
    }

    /// Restores a captured state into this register in place (same validation as
    /// [`Lfsr::from_state`]; on error the current state is left untouched).
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Lfsr::from_state`].
    pub fn restore(&mut self, state: &LfsrState) -> Result<(), LfsrError> {
        *self = Self::from_state(state)?;
        Ok(())
    }

    /// Re-seeds the register in place from little-endian `seed_words` (the same convention as
    /// [`Lfsr::new`]), resetting [`Lfsr::position`] to zero without reallocating — the
    /// primitive that lets a serving worker reuse one register per replica across requests.
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError::ZeroSeed`] (leaving the current state untouched) if the masked
    /// seed would be all zeroes.
    pub fn reseed_words(&mut self, seed_words: &[u64]) -> Result<(), LfsrError> {
        let rem = self.width % 64;
        let last = self.state.len() - 1;
        let masked = |i: usize| {
            let w = seed_words.get(i).copied().unwrap_or(0);
            if i == last && rem != 0 {
                w & ((1u64 << rem) - 1)
            } else {
                w
            }
        };
        if (0..self.state.len()).all(|i| masked(i) == 0) {
            return Err(LfsrError::ZeroSeed);
        }
        for i in 0..self.state.len() {
            self.state[i] = masked(i);
        }
        self.position = 0;
        Ok(())
    }

    /// Advances the register by `n` forward steps.
    pub fn step_forward_by(&mut self, n: usize) {
        for _ in 0..n {
            self.step_forward();
        }
    }

    /// Rewinds the register by `n` backward steps.
    pub fn step_backward_by(&mut self, n: usize) {
        for _ in 0..n {
            self.step_backward();
        }
    }

    /// Shift every register one position toward the tail (`R_i -> R_{i+1}`), i.e. a left shift
    /// of the packed little-endian bit vector. The head bit becomes stale and must be set by the
    /// caller.
    fn shift_right_one(&mut self) {
        let mut carry = 0u64;
        for word in self.state.iter_mut() {
            let new_carry = *word >> 63;
            *word = (*word << 1) | carry;
            carry = new_carry;
        }
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(last) = self.state.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Shift every register one position toward the head (`R_{i+1} -> R_i`), i.e. a right shift
    /// of the packed bit vector. The tail bit becomes stale and must be set by the caller.
    fn shift_left_one(&mut self) {
        let words = self.state.len();
        for i in 0..words {
            let upper = if i + 1 < words { self.state[i + 1] & 1 } else { 0 };
            self.state[i] = (self.state[i] >> 1) | (upper << 63);
        }
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(last) = self.state.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfsr8(seed: u64) -> Lfsr {
        Lfsr::with_maximal_taps(8, seed).unwrap()
    }

    #[test]
    fn construction_validates_width_taps_and_seed() {
        assert!(matches!(Lfsr::new(1, &[1], &[1]), Err(LfsrError::InvalidWidth { .. })));
        assert!(matches!(Lfsr::new(8, &[3, 5], &[1]), Err(LfsrError::InvalidTaps { .. })));
        assert!(matches!(Lfsr::new(8, &[4, 5, 6, 8], &[0]), Err(LfsrError::ZeroSeed)));
        assert!(Lfsr::new(8, &[4, 5, 6, 8], &[0xF0]).is_ok());
    }

    #[test]
    fn seed_bits_beyond_width_are_masked_off() {
        let lfsr = Lfsr::new(8, &[4, 5, 6, 8], &[0xFFFF]).unwrap();
        assert_eq!(lfsr.popcount(), 8);
    }

    #[test]
    fn register_indexing_matches_paper_convention() {
        // Seed 0b1111_0000 means R1..R4 = 0 and R5..R8 = 1 (bit i-1 of the word is R_i).
        let lfsr = lfsr8(0b1111_0000);
        assert!(!lfsr.register(1));
        assert!(!lfsr.register(4));
        assert!(lfsr.register(5));
        assert!(lfsr.register(8));
    }

    #[test]
    fn forward_step_matches_figure_4_example() {
        // Fig. 4(c): pattern #1 = 0 0 0 0 1 1 1 1 (R1..R8), taps R4 R5 R6 R8.
        // Feedback = R4 ^ R5 ^ R6 ^ R8 = 0 ^ 1 ^ 1 ^ 1 = 1, so pattern #2 = 1 0 0 0 0 1 1 1.
        let mut lfsr = lfsr8(0b1111_0000);
        let dropped = lfsr.step_forward();
        assert!(dropped, "the tail bit of pattern #1 is 1");
        let expect = vec![true, false, false, false, false, true, true, true];
        assert_eq!(lfsr.pattern(), expect);
        // Pattern #3 = 0 1 0 0 0 0 1 1 per Fig. 4(c).
        lfsr.step_forward();
        let expect = vec![false, true, false, false, false, false, true, true];
        assert_eq!(lfsr.pattern(), expect);
        // Pattern #4 = 1 0 1 0 0 0 0 1 per Fig. 4(c).
        lfsr.step_forward();
        let expect = vec![true, false, true, false, false, false, false, true];
        assert_eq!(lfsr.pattern(), expect);
    }

    #[test]
    fn backward_step_reproduces_figure_4_reverse_sequence() {
        let mut lfsr = lfsr8(0b1111_0000);
        let p1 = lfsr.pattern();
        lfsr.step_forward();
        let p2 = lfsr.pattern();
        lfsr.step_forward();
        let p3 = lfsr.pattern();
        lfsr.step_forward();
        // Reverse: #4 -> #3 -> #2 -> #1.
        lfsr.step_backward();
        assert_eq!(lfsr.pattern(), p3);
        lfsr.step_backward();
        assert_eq!(lfsr.pattern(), p2);
        lfsr.step_backward();
        assert_eq!(lfsr.pattern(), p1);
        assert_eq!(lfsr.position(), 0);
    }

    #[test]
    fn forward_then_backward_is_identity_for_many_steps() {
        let mut lfsr = Lfsr::shift_bnn_default(42).unwrap();
        let seed_state = lfsr.clone();
        lfsr.step_forward_by(1000);
        lfsr.step_backward_by(1000);
        assert_eq!(lfsr.state_words(), seed_state.state_words());
        assert_eq!(lfsr.position(), 0);
    }

    #[test]
    fn eight_bit_maximal_lfsr_has_period_255() {
        let mut lfsr = lfsr8(0x1);
        let seed = lfsr.pattern();
        let mut period = 0usize;
        loop {
            lfsr.step_forward();
            period += 1;
            if lfsr.pattern() == seed {
                break;
            }
            assert!(period <= 256, "period exceeded 2^8, taps are not maximal");
        }
        assert_eq!(period, 255);
    }

    #[test]
    fn four_bit_maximal_lfsr_has_period_15() {
        let mut lfsr = Lfsr::with_maximal_taps(4, 0b1000).unwrap();
        let seed = lfsr.pattern();
        let mut period = 0usize;
        loop {
            lfsr.step_forward();
            period += 1;
            if lfsr.pattern() == seed {
                break;
            }
            assert!(period <= 16);
        }
        assert_eq!(period, 15);
    }

    #[test]
    fn multiword_widths_shift_across_word_boundaries() {
        let mut lfsr = Lfsr::with_maximal_taps(128, 0xDEAD_BEEF_0BAD_F00D).unwrap();
        let start = lfsr.clone();
        lfsr.step_forward_by(300);
        assert_ne!(lfsr.state_words(), start.state_words());
        lfsr.step_backward_by(300);
        assert_eq!(lfsr.state_words(), start.state_words());
    }

    #[test]
    fn popcount_matches_pattern_ones() {
        let lfsr = Lfsr::shift_bnn_default(7).unwrap();
        let ones = lfsr.pattern().iter().filter(|&&b| b).count() as u32;
        assert_eq!(lfsr.popcount(), ones);
    }

    #[test]
    fn dropped_bits_round_trip_between_directions() {
        let mut lfsr = Lfsr::shift_bnn_default(11).unwrap();
        let mut dropped_fw = Vec::new();
        for _ in 0..64 {
            // The bit dropped from the tail going forward is exactly the bit the backward step
            // must reconstruct into the tail.
            let tail_before = lfsr.register(lfsr.width());
            assert_eq!(lfsr.step_forward(), tail_before);
            dropped_fw.push(tail_before);
        }
        for expected_tail in dropped_fw.iter().rev() {
            lfsr.step_backward();
            assert_eq!(lfsr.register(lfsr.width()), *expected_tail);
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut lfsr = Lfsr::shift_bnn_default(33).unwrap();
        lfsr.step_forward_by(137);
        let state = lfsr.state();
        let mut restored = Lfsr::from_state(&state).unwrap();
        assert_eq!(restored.position(), lfsr.position());
        for _ in 0..300 {
            assert_eq!(restored.step_forward(), lfsr.step_forward());
            assert_eq!(restored.state_words(), lfsr.state_words());
        }
        let mut in_place = Lfsr::shift_bnn_default(99).unwrap();
        in_place.restore(&state).unwrap();
        in_place.step_backward_by(10);
        restored.step_backward_by(310);
        assert_eq!(in_place.state_words(), restored.state_words());
    }

    #[test]
    fn from_state_rejects_corrupted_captures() {
        let lfsr = lfsr8(0xA5);
        let good = lfsr.state();

        let mut bad = good.clone();
        bad.width = 1;
        assert!(matches!(Lfsr::from_state(&bad), Err(LfsrError::InvalidWidth { .. })));

        let mut bad = good.clone();
        bad.taps = vec![3, 5];
        assert!(matches!(Lfsr::from_state(&bad), Err(LfsrError::InvalidTaps { .. })));

        let mut bad = good.clone();
        bad.state_words.push(0);
        assert!(matches!(Lfsr::from_state(&bad), Err(LfsrError::InvalidState { .. })));

        let mut bad = good.clone();
        bad.state_words[0] |= 1 << 9; // beyond the 8-bit width
        assert!(matches!(Lfsr::from_state(&bad), Err(LfsrError::InvalidState { .. })));

        let mut bad = good.clone();
        bad.state_words[0] = 0;
        assert!(matches!(Lfsr::from_state(&bad), Err(LfsrError::ZeroSeed)));
    }

    #[test]
    fn position_tracks_net_steps() {
        let mut lfsr = lfsr8(3);
        lfsr.step_forward_by(10);
        lfsr.step_backward_by(4);
        assert_eq!(lfsr.position(), 6);
    }
}
