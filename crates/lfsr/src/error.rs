//! Error types for LFSR and GRNG construction.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or configuring an [`Lfsr`](crate::Lfsr) or
/// [`Grng`](crate::Grng).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LfsrError {
    /// The requested register width is zero or exceeds the supported maximum.
    InvalidWidth {
        /// The width that was requested.
        width: usize,
    },
    /// The tap set is empty, references a register outside the LFSR, or does not include the
    /// tail register (which a Fibonacci LFSR always taps).
    InvalidTaps {
        /// The offending tap positions (1-based, as in the paper's `R_1..R_n` notation).
        taps: Vec<usize>,
        /// Width of the LFSR the taps were validated against.
        width: usize,
    },
    /// The seed provided for the LFSR state was all zeroes, which is a fixed point of the
    /// shift recurrence and therefore produces a degenerate (constant) sequence.
    ZeroSeed,
    /// No maximal-length tap configuration is known for the requested width.
    UnknownTapWidth {
        /// The width for which no tap table entry exists.
        width: usize,
    },
    /// A captured register/generator state failed validation on restore (wrong word count,
    /// stray bits beyond the width, or an inconsistent pop-count).
    InvalidState {
        /// What was inconsistent about the state.
        detail: String,
    },
}

impl fmt::Display for LfsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfsrError::InvalidWidth { width } => {
                write!(f, "invalid LFSR width {width}: must be between 2 and 4096 bits")
            }
            LfsrError::InvalidTaps { taps, width } => {
                write!(f, "invalid tap set {taps:?} for a {width}-bit LFSR")
            }
            LfsrError::ZeroSeed => write!(f, "LFSR seed must not be all zeroes"),
            LfsrError::UnknownTapWidth { width } => {
                write!(f, "no known maximal-length taps for width {width}")
            }
            LfsrError::InvalidState { detail } => {
                write!(f, "invalid captured LFSR state: {detail}")
            }
        }
    }
}

impl Error for LfsrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LfsrError::InvalidWidth { width: 0 };
        assert!(e.to_string().contains("invalid LFSR width 0"));
        let e = LfsrError::InvalidTaps { taps: vec![9], width: 8 };
        assert!(e.to_string().contains("[9]"));
        assert!(e.to_string().contains("8-bit"));
        let e = LfsrError::ZeroSeed;
        assert!(e.to_string().contains("all zeroes"));
        let e = LfsrError::UnknownTapWidth { width: 7 };
        assert!(e.to_string().contains("width 7"));
        let e = LfsrError::InvalidState { detail: "pop-count drifted".into() };
        assert!(e.to_string().contains("pop-count drifted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LfsrError>();
    }
}
