//! Maximal-length Fibonacci LFSR tap tables.
//!
//! The Shift-BNN GRNG uses a 256-bit Fibonacci LFSR; the design-space exploration and the unit
//! tests in this crate also exercise smaller widths. The tap positions below are classic
//! maximal-length configurations (XNOR/XOR tap tables as published in Xilinx XAPP 052 and in
//! standard LFSR references). Positions are **1-based**, matching the paper's `R_1..R_n`
//! notation, and always include the tail register `R_n`.

use crate::error::LfsrError;

/// A maximal-length tap configuration for a given LFSR width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TapConfig {
    /// Number of registers in the LFSR.
    pub width: usize,
    /// Tap positions (1-based). The last entry is always `width` (the tail register).
    pub taps: [usize; 4],
    /// Number of meaningful entries in `taps` (2 or 4; maximal-length LFSRs use 2 or 4 taps).
    pub len: usize,
}

impl TapConfig {
    /// Returns the tap positions as a slice.
    pub fn positions(&self) -> &[usize] {
        &self.taps[..self.len]
    }
}

/// Known maximal-length tap configurations, indexed by width.
///
/// Source: standard m-sequence polynomial tables (Xilinx XAPP 052 and Ward & Molteno's tables).
const TABLE: &[TapConfig] = &[
    TapConfig { width: 4, taps: [3, 4, 0, 0], len: 2 },
    TapConfig { width: 8, taps: [4, 5, 6, 8], len: 4 },
    TapConfig { width: 12, taps: [1, 4, 6, 12], len: 4 },
    TapConfig { width: 16, taps: [4, 13, 15, 16], len: 4 },
    TapConfig { width: 24, taps: [17, 22, 23, 24], len: 4 },
    TapConfig { width: 32, taps: [1, 2, 22, 32], len: 4 },
    TapConfig { width: 48, taps: [20, 21, 47, 48], len: 4 },
    TapConfig { width: 64, taps: [60, 61, 63, 64], len: 4 },
    TapConfig { width: 96, taps: [47, 49, 94, 96], len: 4 },
    TapConfig { width: 128, taps: [99, 101, 126, 128], len: 4 },
    TapConfig { width: 160, taps: [142, 143, 159, 160], len: 4 },
    TapConfig { width: 192, taps: [177, 178, 190, 192], len: 4 },
    TapConfig { width: 256, taps: [246, 251, 254, 256], len: 4 },
];

/// Looks up the maximal-length tap positions for `width`.
///
/// # Errors
///
/// Returns [`LfsrError::UnknownTapWidth`] if no entry exists for `width`.
///
/// # Examples
///
/// ```
/// let taps = bnn_lfsr::taps::maximal_taps(8)?;
/// assert_eq!(taps, vec![4, 5, 6, 8]);
/// # Ok::<(), bnn_lfsr::LfsrError>(())
/// ```
pub fn maximal_taps(width: usize) -> Result<Vec<usize>, LfsrError> {
    TABLE
        .iter()
        .find(|cfg| cfg.width == width)
        .map(|cfg| cfg.positions().to_vec())
        .ok_or(LfsrError::UnknownTapWidth { width })
}

/// Returns every width for which a maximal-length tap configuration is known.
///
/// # Examples
///
/// ```
/// assert!(bnn_lfsr::taps::supported_widths().contains(&256));
/// ```
pub fn supported_widths() -> Vec<usize> {
    TABLE.iter().map(|cfg| cfg.width).collect()
}

/// Validates a tap set against an LFSR width.
///
/// A valid Fibonacci tap set is non-empty, references only registers `1..=width`, contains no
/// duplicates, and includes the tail register `width` (the feedback always consumes the bit that
/// is about to be shifted out).
///
/// # Errors
///
/// Returns [`LfsrError::InvalidTaps`] when any of the above conditions is violated.
pub fn validate_taps(width: usize, taps: &[usize]) -> Result<(), LfsrError> {
    let invalid = || LfsrError::InvalidTaps { taps: taps.to_vec(), width };
    if taps.is_empty() || taps.len() > width {
        return Err(invalid());
    }
    let mut seen = vec![false; width + 1];
    for &t in taps {
        if t == 0 || t > width {
            return Err(invalid());
        }
        if seen[t] {
            return Err(invalid());
        }
        seen[t] = true;
    }
    if !seen[width] {
        return Err(invalid());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_entries_are_self_consistent() {
        for cfg in TABLE {
            validate_taps(cfg.width, cfg.positions()).expect("table entry must validate");
            assert_eq!(*cfg.positions().last().unwrap(), cfg.width);
            // Positions must be strictly increasing so the feedback XOR order is well defined.
            for pair in cfg.positions().windows(2) {
                assert!(pair[0] < pair[1], "taps must be sorted for width {}", cfg.width);
            }
        }
    }

    #[test]
    fn maximal_taps_returns_paper_eight_bit_configuration() {
        // Fig. 4(a) of the paper taps R4, R5, R6 and R8.
        assert_eq!(maximal_taps(8).unwrap(), vec![4, 5, 6, 8]);
    }

    #[test]
    fn maximal_taps_has_256_bit_entry_used_by_shift_bnn() {
        let taps = maximal_taps(256).unwrap();
        assert_eq!(taps.len(), 4);
        assert_eq!(*taps.last().unwrap(), 256);
    }

    #[test]
    fn unknown_width_is_an_error() {
        assert_eq!(maximal_taps(7), Err(LfsrError::UnknownTapWidth { width: 7 }));
    }

    #[test]
    fn validate_rejects_empty_out_of_range_duplicate_and_missing_tail() {
        assert!(validate_taps(8, &[]).is_err());
        assert!(validate_taps(8, &[0, 8]).is_err());
        assert!(validate_taps(8, &[9, 8]).is_err());
        assert!(validate_taps(8, &[4, 4, 8]).is_err());
        assert!(validate_taps(8, &[4, 5, 6]).is_err(), "tail register must be tapped");
        assert!(validate_taps(8, &[4, 5, 6, 8]).is_ok());
    }

    #[test]
    fn supported_widths_lists_all_table_entries() {
        let widths = supported_widths();
        assert_eq!(widths.len(), TABLE.len());
        assert!(widths.contains(&8));
        assert!(widths.contains(&128));
    }
}
