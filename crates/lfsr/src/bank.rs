//! Banks of GRNGs as instantiated inside a Sample Processing Unit.
//!
//! Each Shift-BNN SPU contains a 4×4 array of GRNG slices, one per processing element. During a
//! convolutional layer only one slice is enabled (the sampled weight is broadcast to every PE);
//! during a fully-connected layer all slices run in parallel, each sampling the weight for its
//! own PE. A [`GrngBank`] models that array, keeps every slice independently seeded and provides
//! the bulk generate/retrieve operations the dataflow needs.

use crate::error::LfsrError;
use crate::grng::{Grng, GrngMode};

/// An array of independently seeded [`Grng`]s with a common width and a shared operating mode.
///
/// # Examples
///
/// ```
/// use bnn_lfsr::{GrngBank, GrngMode};
///
/// # fn main() -> Result<(), bnn_lfsr::LfsrError> {
/// // A 4x4 PE tile's worth of 256-bit GRNGs.
/// let mut bank = GrngBank::new(16, 256, 0xC0FFEE)?;
/// let kernel = bank.generate_on(0, 9); // 3x3 kernel sampled by slice 0
/// bank.set_mode(GrngMode::Backward);
/// let retrieved = bank.retrieve_on(0, 9);
/// assert_eq!(retrieved, kernel.iter().rev().copied().collect::<Vec<_>>());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GrngBank {
    slices: Vec<Grng>,
    mode: GrngMode,
}

impl GrngBank {
    /// Creates a bank of `count` GRNGs of the given LFSR `width`.
    ///
    /// Slice `i` is seeded deterministically from `base_seed` and `i` so that independent banks
    /// built from the same base seed are reproducible while slices within a bank are decorrelated.
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError`] if the width is unsupported or `count` is zero (reported as an
    /// invalid width of zero, since a zero-sized bank has no meaningful register).
    pub fn new(count: usize, width: usize, base_seed: u64) -> Result<Self, LfsrError> {
        if count == 0 {
            return Err(LfsrError::InvalidWidth { width: 0 });
        }
        let mut slices = Vec::with_capacity(count);
        for i in 0..count {
            // A fixed odd multiplier keeps per-slice seeds well separated; seed 0 is avoided by
            // the +1 offset.
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((i as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95));
            let grng = if width == 256 {
                Grng::shift_bnn_default(seed)?
            } else {
                Grng::new(width, seed | 1)?
            };
            slices.push(grng);
        }
        Ok(Self { slices, mode: GrngMode::Forward })
    }

    /// Number of GRNG slices in the bank.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Returns `true` if the bank holds no slices (never true for a successfully constructed
    /// bank, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// The LFSR width shared by every slice.
    pub fn width(&self) -> usize {
        self.slices[0].width()
    }

    /// The bank-wide operating mode.
    pub fn mode(&self) -> GrngMode {
        self.mode
    }

    /// Switches every slice to `mode`.
    pub fn set_mode(&mut self, mode: GrngMode) {
        self.mode = mode;
        for s in &mut self.slices {
            s.set_mode(mode);
        }
    }

    /// Immutable access to slice `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn slice(&self, index: usize) -> &Grng {
        &self.slices[index]
    }

    /// Mutable access to slice `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn slice_mut(&mut self, index: usize) -> &mut Grng {
        &mut self.slices[index]
    }

    /// Iterates over the slices.
    pub fn iter(&self) -> std::slice::Iter<'_, Grng> {
        self.slices.iter()
    }

    /// Generates `count` ε values on slice `index` (convolutional-layer mode: one slice active).
    pub fn generate_on(&mut self, index: usize, count: usize) -> Vec<f64> {
        self.slices[index].generate(count)
    }

    /// Retrieves `count` ε values on slice `index` in reverse generation order.
    pub fn retrieve_on(&mut self, index: usize, count: usize) -> Vec<f64> {
        self.slices[index].retrieve(count)
    }

    /// Generates one ε on every slice (fully-connected-layer mode: all slices active), returning
    /// them in slice order.
    pub fn generate_all(&mut self) -> Vec<f64> {
        self.slices.iter_mut().map(Grng::next_epsilon).collect()
    }

    /// Retrieves one ε from every slice, returning them in slice order.
    pub fn retrieve_all(&mut self) -> Vec<f64> {
        self.slices.iter_mut().map(Grng::retrieve_epsilon).collect()
    }

    /// Total ε values generated forward and not yet retrieved, summed over all slices.
    pub fn outstanding(&self) -> i64 {
        self.slices.iter().map(Grng::outstanding).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_requires_at_least_one_slice() {
        assert!(GrngBank::new(0, 64, 1).is_err());
    }

    #[test]
    fn slices_are_decorrelated() {
        let mut bank = GrngBank::new(4, 64, 7).unwrap();
        let a = bank.generate_on(0, 16);
        let b = bank.generate_on(1, 16);
        assert_ne!(a, b);
    }

    #[test]
    fn generate_all_then_retrieve_all_round_trips_each_slice() {
        let mut bank = GrngBank::new(16, 256, 42).unwrap();
        let mut forward = Vec::new();
        for _ in 0..10 {
            forward.push(bank.generate_all());
        }
        bank.set_mode(GrngMode::Backward);
        for step in (0..10).rev() {
            let retrieved = bank.retrieve_all();
            assert_eq!(retrieved, forward[step]);
        }
        assert_eq!(bank.outstanding(), 0);
    }

    #[test]
    fn same_base_seed_reproduces_identical_banks() {
        let mut a = GrngBank::new(3, 128, 5).unwrap();
        let mut b = GrngBank::new(3, 128, 5).unwrap();
        assert_eq!(a.generate_all(), b.generate_all());
    }

    #[test]
    fn mode_is_applied_to_every_slice() {
        let mut bank = GrngBank::new(2, 64, 9).unwrap();
        bank.set_mode(GrngMode::Backward);
        assert!(bank.iter().all(|g| g.mode() == GrngMode::Backward));
        assert_eq!(bank.mode(), GrngMode::Backward);
    }

    #[test]
    fn width_and_len_report_construction_parameters() {
        let bank = GrngBank::new(5, 128, 1).unwrap();
        assert_eq!(bank.len(), 5);
        assert!(!bank.is_empty());
        assert_eq!(bank.width(), 128);
    }
}
