//! Reversible LFSR-based Gaussian random number generation, the core mechanism behind
//! **Shift-BNN** (MICRO 2021).
//!
//! Training a Bayesian neural network with variational inference draws one Gaussian random
//! variable ε per weight per sample during the forward pass (`w = μ + ε∘σ`) and needs the *same*
//! ε again during backpropagation and gradient calculation. On a conventional accelerator those
//! ε are written to DRAM after the forward pass and read back later — and they dominate off-chip
//! traffic. Shift-BNN's observation is that the ε are produced by Fibonacci LFSRs, and a
//! Fibonacci LFSR is *reversible*: shifting it backwards (with the tap XOR rearranged per
//! `A = C ⊕ B ⇔ C = A ⊕ B`) reproduces every earlier pattern in exactly the reversed order that
//! backpropagation consumes them in. The ε therefore never need to leave the chip.
//!
//! This crate provides bit-exact software models of:
//!
//! * [`Lfsr`] — a reversible Fibonacci LFSR of arbitrary width ([`taps`] has maximal-length tap
//!   tables, including the 8-bit example of the paper's Fig. 4 and the 256-bit register used by
//!   the Shift-BNN GRNG slice);
//! * [`Grng`] — the CLT-based Gaussian generator with forward / backward / idle modes and the
//!   incremental pop-count ("initial sum + bit update") datapath of Fig. 8(b);
//! * [`GrngBank`] — the 4×4 array of GRNG slices inside one Sample Processing Unit;
//! * [`gaussian`] — statistical helpers used to validate distribution quality.
//!
//! # Quick start
//!
//! ```
//! use bnn_lfsr::{Grng, GrngMode};
//!
//! # fn main() -> Result<(), bnn_lfsr::LfsrError> {
//! let mut grng = Grng::shift_bnn_default(0xBEEF)?;
//!
//! // Forward stage: sample weights for three 3x3 kernels.
//! let forward: Vec<f64> = (0..27).map(|_| grng.next_epsilon()).collect();
//!
//! // Backward stage: retrieve the same epsilons in reverse order, storing nothing.
//! grng.set_mode(GrngMode::Backward);
//! let retrieved: Vec<f64> = (0..27).map(|_| grng.retrieve_epsilon()).collect();
//! assert!(forward.iter().rev().zip(&retrieved).all(|(a, b)| a == b));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bank;
mod error;
pub mod gaussian;
mod grng;
#[allow(clippy::module_inception)]
mod lfsr;
pub mod profile;
pub mod taps;

pub use bank::GrngBank;
pub use error::LfsrError;
pub use grng::{Grng, GrngMode, GrngState};
pub use lfsr::{Lfsr, LfsrState, MAX_WIDTH};
