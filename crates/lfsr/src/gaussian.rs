//! Statistical helpers for validating the quality of LFSR-generated Gaussian variables.
//!
//! The CLT approximation used by the hardware GRNG is only as good as the LFSR width allows
//! (a 256-bit pattern gives a binomial with 257 support points mapped onto roughly ±16σ).
//! These helpers quantify how close a generated stream is to `N(0, 1)`; they are used by this
//! crate's tests, by `bnn-train`'s diagnostics, and by the width-ablation benchmark.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Sample skewness (third standardized moment).
    pub skewness: f64,
    /// Sample excess kurtosis (fourth standardized moment minus 3).
    pub excess_kurtosis: f64,
}

impl SampleStats {
    /// Computes summary statistics for `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` has fewer than two elements, since the variance would be undefined.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(samples.len() >= 2, "need at least two samples for statistics");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut m4 = 0.0;
        for &x in samples {
            let d = x - mean;
            m2 += d * d;
            m3 += d * d * d;
            m4 += d * d * d * d;
        }
        let variance = m2 / (n - 1.0);
        let sd = (m2 / n).sqrt();
        let (skewness, excess_kurtosis) =
            if sd > 0.0 { (m3 / n / sd.powi(3), m4 / n / sd.powi(4) - 3.0) } else { (0.0, 0.0) };
        Self { count: samples.len(), mean, variance, skewness, excess_kurtosis }
    }
}

/// The standard normal cumulative distribution function, computed from an Abramowitz–Stegun
/// style rational approximation of `erf` (absolute error below 1.5e-7, ample for the
/// goodness-of-fit checks performed here).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Pearson chi-square goodness-of-fit statistic of `samples` against `N(0,1)` using `bins`
/// equal-probability bins over (−∞, ∞).
///
/// Returns the statistic; with `bins - 1` degrees of freedom, values far above `bins` indicate a
/// poor fit. The GRNG tests use a generous threshold because a binomial-based generator is
/// discrete by construction.
///
/// # Panics
///
/// Panics if `bins < 2` or `samples` is empty.
pub fn chi_square_vs_normal(samples: &[f64], bins: usize) -> f64 {
    assert!(bins >= 2, "need at least two bins");
    assert!(!samples.is_empty(), "need samples");
    // Equal-probability bin edges.
    let mut edges = Vec::with_capacity(bins - 1);
    for i in 1..bins {
        let p = i as f64 / bins as f64;
        edges.push(normal_quantile(p));
    }
    let mut counts = vec![0usize; bins];
    for &x in samples {
        let mut idx = edges.partition_point(|&e| e < x);
        if idx >= bins {
            idx = bins - 1;
        }
        counts[idx] += 1;
    }
    let expected = samples.len() as f64 / bins as f64;
    counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum()
}

/// Approximate standard normal quantile (inverse CDF) via the Beasley–Springer–Moro algorithm.
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1)");
    const A: [f64; 4] = [2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637];
    const B: [f64; 4] = [-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let mut r = if y > 0.0 { 1.0 - p } else { p };
        r = (-r.ln()).ln();
        let mut x = C[0];
        let mut rp = 1.0;
        for &c in &C[1..] {
            rp *= r;
            x += c * rp;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

/// Lag-`k` autocorrelation of a sample stream. Values near zero indicate serial independence.
///
/// # Panics
///
/// Panics if `samples.len() <= lag`.
pub fn autocorrelation(samples: &[f64], lag: usize) -> f64 {
    assert!(samples.len() > lag, "need more samples than the requested lag");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let denom: f64 = samples.iter().map(|&x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag).map(|i| (samples[i] - mean) * (samples[i + lag] - mean)).sum();
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grng::Grng;

    #[test]
    fn stats_of_constant_shifted_stream() {
        let samples = vec![1.0, 1.0, 1.0, 1.0];
        let stats = SampleStats::from_samples(&samples);
        assert_eq!(stats.mean, 1.0);
        assert_eq!(stats.variance, 0.0);
        assert_eq!(stats.skewness, 0.0);
    }

    #[test]
    fn stats_of_symmetric_stream() {
        let samples = vec![-2.0, -1.0, 1.0, 2.0];
        let stats = SampleStats::from_samples(&samples);
        assert!(stats.mean.abs() < 1e-12);
        assert!(stats.skewness.abs() < 1e-12);
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((standard_normal_cdf(x) - p).abs() < 1e-3, "p={p}");
        }
    }

    #[test]
    fn cdf_known_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn grng_stream_is_approximately_standard_normal() {
        // Successive patterns differ by one shifted bit, so the ε stream is an Ehrenfest-style
        // mean-reverting walk with decorrelation time ~ width/2; a long stream is needed for
        // tight moment estimates.
        let mut grng = Grng::shift_bnn_default(2024).unwrap();
        let samples = grng.generate(200_000);
        let stats = SampleStats::from_samples(&samples);
        assert!(stats.mean.abs() < 0.08, "mean {}", stats.mean);
        assert!((stats.variance - 1.0).abs() < 0.12, "variance {}", stats.variance);
        assert!(stats.skewness.abs() < 0.15, "skewness {}", stats.skewness);
        assert!(stats.excess_kurtosis.abs() < 0.3, "kurtosis {}", stats.excess_kurtosis);
    }

    #[test]
    fn grng_stream_has_low_autocorrelation() {
        let mut grng = Grng::shift_bnn_default(77).unwrap();
        let samples = grng.generate(50_000);
        // Adjacent patterns differ by a single shifted bit, so the raw pop-count stream is
        // strongly correlated at lag 1 by construction; the paper's dataflow tolerates this
        // because each ε feeds a different weight. We nevertheless check that correlation decays
        // once patterns are a few register-widths apart.
        let far = autocorrelation(&samples, 600);
        assert!(far.abs() < 0.15, "lag-600 autocorrelation {far}");
    }

    #[test]
    fn chi_square_prefers_gaussian_over_uniform() {
        let mut grng = Grng::shift_bnn_default(5).unwrap();
        let gaussian = grng.generate(8_000);
        let uniform: Vec<f64> = (0..8_000).map(|i| (i % 100) as f64 / 25.0 - 2.0).collect();
        let chi_g = chi_square_vs_normal(&gaussian, 20);
        let chi_u = chi_square_vs_normal(&uniform, 20);
        assert!(chi_g < chi_u, "gaussian fit {chi_g} should beat uniform {chi_u}");
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn stats_require_two_samples() {
        SampleStats::from_samples(&[1.0]);
    }
}
