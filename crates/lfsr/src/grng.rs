//! Gaussian random number generation from LFSR patterns.
//!
//! Following VIBNN and Shift-BNN, a Gaussian random variable is obtained from an `n`-bit LFSR
//! pattern through the Central Limit Theorem: the number of ones in the pattern follows
//! `B(n, 0.5) ≈ N(n/2, n/4)`, so `ε = (ones − n/2) / sqrt(n/4)` is approximately a unit Gaussian.
//!
//! Shift-BNN's GRNG (Fig. 8(b) of the paper) adds two twists that are both modelled here:
//!
//! 1. **Three operating modes** — forward (FW stage), backward (BW stage) and idle — selected via
//!    [`Grng::set_mode`].
//! 2. **Incremental pop-count** — instead of recounting ones with an adder tree after every
//!    shift, the generator stores the seed's bit-sum and adds the difference between the bit that
//!    enters and the bit that leaves the register on each shift.

use crate::error::LfsrError;
use crate::lfsr::{Lfsr, LfsrState};

/// Operating mode of a [`Grng`], mirroring the three modes of the hardware GRNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GrngMode {
    /// Forward mode, used during the forward (FW) training stage: the LFSR shifts toward the
    /// tail and produces *new* ε values.
    #[default]
    Forward,
    /// Backward mode, used during backpropagation (BW/GC): the LFSR shifts toward the head and
    /// *retrieves* previously generated ε values in reverse order.
    Backward,
    /// Idle mode: registers hold their values; requesting an ε in this mode is a logic error.
    Idle,
}

/// A complete, restorable capture of a [`Grng`]'s state: the register capture plus the
/// pop-count/mode/outstanding bookkeeping of Fig. 8(b) — everything the checkpoint store
/// (`bnn-store`) needs so a restored generator continues both its forward and backward ε
/// streams bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GrngState {
    /// The underlying register capture.
    pub lfsr: LfsrState,
    /// Pop-count of the seed pattern (the "initial sum" register).
    pub initial_sum: u32,
    /// The incrementally maintained pop-count of the current pattern.
    pub current_sum: u32,
    /// The operating mode at capture time.
    pub mode: GrngMode,
    /// ε values generated forward and not yet retrieved backward.
    pub outstanding: i64,
}

/// A Gaussian random number generator backed by a reversible LFSR.
///
/// # Examples
///
/// Generate a forward ε stream and retrieve it again in reverse order without storing it:
///
/// ```
/// use bnn_lfsr::{Grng, GrngMode};
///
/// # fn main() -> Result<(), bnn_lfsr::LfsrError> {
/// let mut grng = Grng::shift_bnn_default(7)?;
/// let forward: Vec<f64> = (0..100).map(|_| grng.next_epsilon()).collect();
///
/// grng.set_mode(GrngMode::Backward);
/// let retrieved: Vec<f64> = (0..100).map(|_| grng.retrieve_epsilon()).collect();
///
/// let mut reversed = forward.clone();
/// reversed.reverse();
/// assert_eq!(retrieved, reversed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grng {
    lfsr: Lfsr,
    /// Pop-count of the seed pattern (the "initial sum" register of Fig. 8(b)).
    initial_sum: u32,
    /// Running pop-count maintained incrementally (the "bit update" path of Fig. 8(b)).
    current_sum: u32,
    mode: GrngMode,
    /// Number of ε values produced in forward mode minus values retrieved in backward mode.
    outstanding: i64,
}

impl Grng {
    /// Wraps an existing LFSR into a GRNG. The LFSR's current pattern becomes the seed pattern.
    pub fn from_lfsr(lfsr: Lfsr) -> Self {
        let sum = lfsr.popcount();
        Self { lfsr, initial_sum: sum, current_sum: sum, mode: GrngMode::Forward, outstanding: 0 }
    }

    /// Creates a GRNG over a maximal-length LFSR of the given width.
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError`] from LFSR construction (unknown width or zero seed).
    pub fn new(width: usize, seed: u64) -> Result<Self, LfsrError> {
        Ok(Self::from_lfsr(Lfsr::with_maximal_taps(width, seed)?))
    }

    /// Creates the 256-bit GRNG used by a Shift-BNN GRNG slice.
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError`] from LFSR construction.
    pub fn shift_bnn_default(seed: u64) -> Result<Self, LfsrError> {
        Ok(Self::from_lfsr(Lfsr::shift_bnn_default(seed)?))
    }

    /// The register width of the underlying LFSR.
    pub fn width(&self) -> usize {
        self.lfsr.width()
    }

    /// The current operating mode.
    pub fn mode(&self) -> GrngMode {
        self.mode
    }

    /// Switches the operating mode (forward / backward / idle).
    pub fn set_mode(&mut self, mode: GrngMode) {
        self.mode = mode;
    }

    /// Number of ε values generated forward and not yet retrieved backward.
    pub fn outstanding(&self) -> i64 {
        self.outstanding
    }

    /// Pop-count of the seed pattern.
    pub fn initial_sum(&self) -> u32 {
        self.initial_sum
    }

    /// The incrementally maintained pop-count of the current pattern.
    pub fn current_sum(&self) -> u32 {
        self.current_sum
    }

    /// Borrow of the underlying LFSR (for inspection in tests and the micro-simulator).
    pub fn lfsr(&self) -> &Lfsr {
        &self.lfsr
    }

    /// Converts a pattern pop-count into a unit Gaussian variable via the CLT approximation.
    pub fn epsilon_from_sum(&self, sum: u32) -> f64 {
        let n = self.lfsr.width() as f64;
        (f64::from(sum) - 0.5 * n) / (0.25 * n).sqrt()
    }

    /// The ε corresponding to the register's *current* pattern (no shift).
    pub fn current_epsilon(&self) -> f64 {
        self.epsilon_from_sum(self.current_sum)
    }

    /// Generates the next ε: shifts the LFSR forward once and returns the new pattern's ε.
    ///
    /// # Panics
    ///
    /// Panics if the GRNG is in [`GrngMode::Idle`] or [`GrngMode::Backward`]; hardware would
    /// simply not clock the register, and calling this in the wrong mode indicates a dataflow
    /// bug in the caller.
    pub fn next_epsilon(&mut self) -> f64 {
        assert_eq!(self.mode, GrngMode::Forward, "next_epsilon requires forward mode");
        let entering = self.lfsr.feedback_bit();
        let leaving = self.lfsr.step_forward();
        self.current_sum = self.current_sum + u32::from(entering) - u32::from(leaving);
        debug_assert_eq!(self.current_sum, self.lfsr.popcount());
        self.outstanding += 1;
        crate::profile::record_epsilon(1);
        self.current_epsilon()
    }

    /// Retrieves the most recently generated (and not yet retrieved) ε by reading the current
    /// pattern and then shifting the LFSR backward once.
    ///
    /// Calling this repeatedly returns the forward ε stream in exactly reversed order, which is
    /// the order backpropagation consumes the weight samples in (last layer first, kernels
    /// rotated 180°).
    ///
    /// # Panics
    ///
    /// Panics if the GRNG is not in [`GrngMode::Backward`].
    pub fn retrieve_epsilon(&mut self) -> f64 {
        assert_eq!(self.mode, GrngMode::Backward, "retrieve_epsilon requires backward mode");
        let epsilon = self.current_epsilon();
        let leaving_head = self.lfsr.step_backward();
        let entering_tail = self.lfsr.register(self.lfsr.width());
        self.current_sum = self.current_sum + u32::from(entering_tail) - u32::from(leaving_head);
        debug_assert_eq!(self.current_sum, self.lfsr.popcount());
        self.outstanding -= 1;
        epsilon
    }

    /// The word-parallel forward core: produces `count` ε values through `emit(index, ε)`,
    /// stepping the LFSR in 64-bit batches wherever the register supports it
    /// ([`crate::Lfsr::supports_batch64`]) and bit-serially otherwise. The emitted stream is
    /// bit-identical to `count` calls of [`Grng::next_epsilon`] — the batch only changes *how*
    /// the register advances, never which patterns it visits (pinned by
    /// `tests/word_parallel.rs`).
    fn fill_forward_with(&mut self, count: usize, mut emit: impl FnMut(usize, f64)) {
        assert_eq!(self.mode, GrngMode::Forward, "ε generation requires forward mode");
        let mut i = 0;
        if self.lfsr.supports_batch64() {
            while count - i >= 64 {
                let (entering, leaving) = self.lfsr.step_forward64();
                let mut sum = self.current_sum;
                for j in 0..64 {
                    let bit = 63 - j;
                    sum = sum + (((entering >> bit) & 1) as u32) - (((leaving >> bit) & 1) as u32);
                    emit(i + j, self.epsilon_from_sum(sum));
                }
                self.current_sum = sum;
                debug_assert_eq!(self.current_sum, self.lfsr.popcount());
                self.outstanding += 64;
                crate::profile::record_epsilon(64);
                i += 64;
            }
        }
        while i < count {
            emit(i, self.next_epsilon());
            i += 1;
        }
    }

    /// Fills `out` with the next forward ε values as `f32` — the word-parallel,
    /// zero-allocation variant of [`Grng::generate`] that the training/serving hot path uses
    /// (each value is the `f64` ε narrowed with `as f32`, exactly as the call sites used to).
    ///
    /// # Panics
    ///
    /// Panics unless the GRNG is in [`GrngMode::Forward`].
    pub fn fill_epsilon(&mut self, out: &mut [f32]) {
        self.fill_forward_with(out.len(), |i, e| out[i] = e as f32);
    }

    /// Fills `out` with retrieved ε values **in generation order** (the backward LFSR walk
    /// visits them last-first; this writes back-to-front so callers get the block exactly as
    /// it was generated) — the zero-allocation variant of reversing [`Grng::retrieve`].
    ///
    /// # Panics
    ///
    /// Panics unless the GRNG is in [`GrngMode::Backward`].
    pub fn fill_retrieved(&mut self, out: &mut [f32]) {
        for i in (0..out.len()).rev() {
            out[i] = self.retrieve_epsilon() as f32;
        }
    }

    /// Advances the generator past `count` forward ε values without emitting them — ending in
    /// exactly the state `count` calls of [`Grng::next_epsilon`] would leave (register,
    /// pop-count and outstanding balance), but using word-parallel batches where supported.
    /// This is how Shift-BNN's retrieval source fast-forwards at iteration end so the next
    /// iteration draws fresh noise.
    ///
    /// # Panics
    ///
    /// Panics unless the GRNG is in [`GrngMode::Forward`].
    pub fn skip_forward(&mut self, count: usize) {
        assert_eq!(self.mode, GrngMode::Forward, "skip_forward requires forward mode");
        let mut remaining = count;
        if self.lfsr.supports_batch64() {
            while remaining >= 64 {
                self.lfsr.step_forward64();
                self.outstanding += 64;
                remaining -= 64;
            }
            self.current_sum = self.lfsr.popcount();
        }
        for _ in 0..remaining {
            self.next_epsilon();
        }
    }

    /// Generates `count` forward ε values (delegates to the word-parallel fill core).
    pub fn generate(&mut self, count: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; count];
        let out_ref = &mut out;
        self.fill_forward_with(count, |i, e| out_ref[i] = e);
        out
    }

    /// Retrieves `count` ε values in reverse generation order.
    pub fn retrieve(&mut self, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.retrieve_epsilon()).collect()
    }

    /// Re-seeds the GRNG in place as if freshly built by [`Grng::shift_bnn_default`] with
    /// `seed`, without allocating: the serving engine's way of reusing one GRNG per replica
    /// across requests.
    ///
    /// # Panics
    ///
    /// Panics if the underlying register is not the 256-bit Shift-BNN default width (callers
    /// of other widths use [`Grng::reseed_plain`]).
    pub fn reseed_shift_bnn(&mut self, seed: u64) {
        assert_eq!(self.width(), 256, "reseed_shift_bnn requires the 256-bit default register");
        let words = crate::lfsr::shift_bnn_seed_words(seed);
        self.lfsr.reseed_words(&words).expect("splitmix seed expansion is never all zero");
        self.reset_counters();
    }

    /// Re-seeds the GRNG in place as if freshly built by [`Grng::new`] with this width and
    /// `seed`, without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError::ZeroSeed`] (leaving the state untouched) if `seed` masks to zero.
    pub fn reseed_plain(&mut self, seed: u64) -> Result<(), LfsrError> {
        self.lfsr.reseed_words(&[seed])?;
        self.reset_counters();
        Ok(())
    }

    /// Captures the generator's complete state ([`GrngState`]) for later restoration or
    /// serialization by the checkpoint store.
    pub fn state(&self) -> GrngState {
        GrngState {
            lfsr: self.lfsr.state(),
            initial_sum: self.initial_sum,
            current_sum: self.current_sum,
            mode: self.mode,
            outstanding: self.outstanding,
        }
    }

    /// Rebuilds a generator from a captured state; the result continues the forward and
    /// backward ε streams exactly where [`Grng::state`] left them.
    ///
    /// # Errors
    ///
    /// Propagates the register validation of [`Lfsr::from_state`], and additionally returns
    /// [`LfsrError::InvalidState`] when the captured sums are inconsistent with the register
    /// pattern (the incremental pop-count invariant would otherwise be silently broken).
    pub fn from_state(state: &GrngState) -> Result<Self, LfsrError> {
        let lfsr = Lfsr::from_state(&state.lfsr)?;
        if state.current_sum != lfsr.popcount() {
            return Err(LfsrError::InvalidState {
                detail: format!(
                    "current_sum {} does not match the pattern pop-count {}",
                    state.current_sum,
                    lfsr.popcount()
                ),
            });
        }
        if state.initial_sum > lfsr.width() as u32 {
            return Err(LfsrError::InvalidState {
                detail: format!(
                    "initial_sum {} exceeds the {}-bit register width",
                    state.initial_sum,
                    lfsr.width()
                ),
            });
        }
        Ok(Self {
            lfsr,
            initial_sum: state.initial_sum,
            current_sum: state.current_sum,
            mode: state.mode,
            outstanding: state.outstanding,
        })
    }

    /// Restores a captured state into this generator in place (same validation as
    /// [`Grng::from_state`]; on error the current state is left untouched).
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Grng::from_state`].
    pub fn restore(&mut self, state: &GrngState) -> Result<(), LfsrError> {
        *self = Self::from_state(state)?;
        Ok(())
    }

    fn reset_counters(&mut self) {
        let sum = self.lfsr.popcount();
        self.initial_sum = sum;
        self.current_sum = sum;
        self.mode = GrngMode::Forward;
        self.outstanding = 0;
    }

    /// Full recount of the current pattern's ones using the LFSR state, bypassing the
    /// incremental sum. Exposed so benchmarks can compare the adder-tree recount against the
    /// incremental path (the ablation called out in DESIGN.md).
    pub fn recount_epsilon(&self) -> f64 {
        self.epsilon_from_sum(self.lfsr.popcount())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_sum_always_matches_full_popcount() {
        let mut grng = Grng::shift_bnn_default(1234).unwrap();
        for _ in 0..500 {
            grng.next_epsilon();
            assert_eq!(grng.current_sum(), grng.lfsr().popcount());
        }
        grng.set_mode(GrngMode::Backward);
        for _ in 0..500 {
            grng.retrieve_epsilon();
            assert_eq!(grng.current_sum(), grng.lfsr().popcount());
        }
    }

    #[test]
    fn retrieval_reproduces_forward_stream_in_reverse_bit_exactly() {
        let mut grng = Grng::new(64, 0xACE1).unwrap();
        let forward = grng.generate(257);
        grng.set_mode(GrngMode::Backward);
        let retrieved = grng.retrieve(257);
        let mut reversed = forward;
        reversed.reverse();
        assert_eq!(retrieved, reversed);
        assert_eq!(grng.outstanding(), 0);
        // After full retrieval the register holds the seed again.
        assert_eq!(grng.current_sum(), grng.initial_sum());
    }

    #[test]
    fn epsilon_has_zero_mean_unit_scale_mapping() {
        let grng = Grng::new(16, 0xFFFF).unwrap();
        // All ones: sum = 16, mean 8, std 2 -> epsilon = 4.
        assert!((grng.current_epsilon() - 4.0).abs() < 1e-12);
        assert!((grng.epsilon_from_sum(8) - 0.0).abs() < 1e-12);
        assert!((grng.epsilon_from_sum(6) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "forward mode")]
    fn next_epsilon_panics_in_backward_mode() {
        let mut grng = Grng::new(8, 1).unwrap();
        grng.set_mode(GrngMode::Backward);
        grng.next_epsilon();
    }

    #[test]
    #[should_panic(expected = "backward mode")]
    fn retrieve_epsilon_panics_in_forward_mode() {
        let mut grng = Grng::new(8, 1).unwrap();
        grng.retrieve_epsilon();
    }

    #[test]
    fn idle_mode_holds_state() {
        let mut grng = Grng::new(8, 3).unwrap();
        grng.set_mode(GrngMode::Idle);
        assert_eq!(grng.mode(), GrngMode::Idle);
        // No API mutates the register in idle mode; current ε stays put.
        let e = grng.current_epsilon();
        assert_eq!(e, grng.current_epsilon());
    }

    #[test]
    fn recount_matches_incremental_path() {
        let mut grng = Grng::shift_bnn_default(99).unwrap();
        for _ in 0..100 {
            let inc = grng.next_epsilon();
            assert_eq!(inc, grng.recount_epsilon());
        }
    }

    #[test]
    fn distinct_seeds_produce_distinct_streams() {
        let mut a = Grng::shift_bnn_default(1).unwrap();
        let mut b = Grng::shift_bnn_default(2).unwrap();
        let sa = a.generate(32);
        let sb = b.generate(32);
        assert_ne!(sa, sb);
    }

    #[test]
    fn state_round_trip_continues_both_directions() {
        let mut grng = Grng::shift_bnn_default(1234).unwrap();
        grng.generate(77);
        let state = grng.state();
        let mut restored = Grng::from_state(&state).unwrap();
        assert_eq!(restored.generate(64), grng.generate(64));
        grng.set_mode(GrngMode::Backward);
        restored.set_mode(GrngMode::Backward);
        assert_eq!(restored.retrieve(100), grng.retrieve(100));
        assert_eq!(restored.outstanding(), grng.outstanding());
    }

    #[test]
    fn from_state_rejects_inconsistent_sums() {
        let grng = Grng::new(16, 0xACE1).unwrap();
        let mut state = grng.state();
        state.current_sum += 1;
        assert!(matches!(Grng::from_state(&state), Err(LfsrError::InvalidState { .. })));
        let mut state = grng.state();
        state.initial_sum = 17;
        assert!(matches!(Grng::from_state(&state), Err(LfsrError::InvalidState { .. })));
        // Restore leaves the target untouched on error.
        let mut target = Grng::new(16, 0xBEEF).unwrap();
        let before = target.clone();
        assert!(target.restore(&state).is_err());
        assert_eq!(target, before);
    }

    #[test]
    fn outstanding_tracks_generation_and_retrieval() {
        let mut grng = Grng::new(32, 5).unwrap();
        grng.generate(10);
        assert_eq!(grng.outstanding(), 10);
        grng.set_mode(GrngMode::Backward);
        grng.retrieve(4);
        assert_eq!(grng.outstanding(), 6);
    }
}
