//! Thread-local ε-generation counter: how many ε values this thread's GRNGs have emitted.
//!
//! A single `Cell<u64>` in thread-local storage — bumping it is one register-width store, so
//! the hook stays compiled into release builds on the serving hot path. The counter is per
//! thread by design: a deterministic profiled replay runs its replica on one thread and
//! brackets each request with [`epsilon_values`] snapshots (presentation lives downstream in
//! `bnn-obs`). Word-parallel batches count their full 64 values; skipped-over values
//! ([`crate::Grng::skip_forward`]) are deliberately *not* counted — nothing was emitted.

use std::cell::Cell;

thread_local! {
    static EPSILON_VALUES: Cell<u64> = const { Cell::new(0) };
}

/// Records `count` ε values emitted by a forward GRNG walk.
#[inline]
pub fn record_epsilon(count: u64) {
    EPSILON_VALUES.with(|c| c.set(c.get() + count));
}

/// This thread's cumulative emitted-ε count.
pub fn epsilon_values() -> u64 {
    EPSILON_VALUES.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let before = epsilon_values();
        record_epsilon(64);
        record_epsilon(3);
        assert_eq!(epsilon_values() - before, 67);
    }
}
