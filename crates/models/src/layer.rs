//! Per-layer dimensions used for workload accounting.
//!
//! A layer is described by the seven loop dimensions of the paper's Fig. 1(b): output channels
//! `M`, input channels `N`, kernel size `K`, output feature-map size `R × C`, plus the input
//! feature-map size it consumes; the sample dimension `S` is applied by the workload layer on
//! top. Fully-connected layers are the `K = R = C = 1` special case.

/// Kind of a compute layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully-connected (matrix-vector) layer.
    FullyConnected,
}

/// Dimensions of one weight-bearing layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerDims {
    /// Human-readable layer name (e.g. `"conv3_2"`, `"fc1"`).
    pub name: String,
    /// Convolution or fully-connected.
    pub kind: LayerKind,
    /// Output channels (or output features).
    pub m: usize,
    /// Input channels (or input features).
    pub n: usize,
    /// Kernel size `K` (1 for fully-connected layers).
    pub k: usize,
    /// Output feature-map height `R` (1 for fully-connected layers).
    pub r: usize,
    /// Output feature-map width `C` (1 for fully-connected layers).
    pub c: usize,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
}

impl LayerDims {
    /// Describes a convolution layer, computing the output size from stride and padding.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields an empty output.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        in_h: usize,
        in_w: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        let out = |size: usize| {
            (size + 2 * padding)
                .checked_sub(kernel)
                .map(|v| v / stride + 1)
                .filter(|&v| v > 0)
                .unwrap_or_else(|| panic!("conv layer with empty output: {size}x{size} k={kernel}"))
        };
        Self {
            name: name.into(),
            kind: LayerKind::Conv,
            m: out_channels,
            n: in_channels,
            k: kernel,
            r: out(in_h),
            c: out(in_w),
            in_h,
            in_w,
        }
    }

    /// Describes a fully-connected layer.
    pub fn fc(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::FullyConnected,
            m: out_features,
            n: in_features,
            k: 1,
            r: 1,
            c: 1,
            in_h: 1,
            in_w: 1,
        }
    }

    /// Number of weights: `M · N · K²`.
    pub fn weights(&self) -> u64 {
        (self.m * self.n * self.k * self.k) as u64
    }

    /// Multiply-accumulate operations of one forward pass: `M · N · K² · R · C`.
    pub fn forward_macs(&self) -> u64 {
        self.weights() * (self.r * self.c) as u64
    }

    /// Input feature-map elements consumed (`N · H_in · W_in` for conv, `N` for FC).
    pub fn input_elements(&self) -> u64 {
        match self.kind {
            LayerKind::Conv => (self.n * self.in_h * self.in_w) as u64,
            LayerKind::FullyConnected => self.n as u64,
        }
    }

    /// Output feature-map elements produced (`M · R · C` for conv, `M` for FC).
    pub fn output_elements(&self) -> u64 {
        (self.m * self.r * self.c) as u64
    }

    /// Returns `true` for fully-connected layers, whose training time the paper shows is
    /// dominated by ε memory traffic rather than computation.
    pub fn is_fully_connected(&self) -> bool {
        self.kind == LayerKind::FullyConnected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_size_and_counts() {
        let l = LayerDims::conv("conv1", 3, 64, 3, 224, 224, 1, 1);
        assert_eq!((l.r, l.c), (224, 224));
        assert_eq!(l.weights(), 3 * 64 * 9);
        assert_eq!(l.forward_macs(), 3 * 64 * 9 * 224 * 224);
        assert_eq!(l.input_elements(), 3 * 224 * 224);
        assert_eq!(l.output_elements(), 64 * 224 * 224);
        assert!(!l.is_fully_connected());
    }

    #[test]
    fn strided_conv_halves_output() {
        let l = LayerDims::conv("conv_s2", 64, 128, 3, 56, 56, 2, 1);
        assert_eq!((l.r, l.c), (28, 28));
    }

    #[test]
    fn fc_counts() {
        let l = LayerDims::fc("fc1", 4096, 1000);
        assert_eq!(l.weights(), 4096 * 1000);
        assert_eq!(l.forward_macs(), 4096 * 1000);
        assert_eq!(l.input_elements(), 4096);
        assert_eq!(l.output_elements(), 1000);
        assert!(l.is_fully_connected());
    }

    #[test]
    fn alexnet_style_11x11_stride4() {
        let l = LayerDims::conv("conv1", 3, 96, 11, 227, 227, 4, 0);
        assert_eq!((l.r, l.c), (55, 55));
    }

    #[test]
    #[should_panic(expected = "empty output")]
    fn degenerate_conv_panics() {
        LayerDims::conv("bad", 1, 1, 7, 3, 3, 1, 0);
    }
}
