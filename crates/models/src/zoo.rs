//! The five network families evaluated in the paper and their DNN counterparts.
//!
//! Layer shapes follow the canonical published architectures: MLP (the 3-hidden-layer
//! fully-connected network of VIBNN), LeNet-5, AlexNet, VGG-16 and ResNet-18. The Bayesian
//! variants (B-MLP, B-LeNet, …) have exactly the same layer geometry — each weight simply
//! becomes a `(μ, σ)` pair sampled `S` times — which is how the paper constructs them.

use crate::layer::LayerDims;

/// A full network description used for workload accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Model name, e.g. `"VGG"` or `"B-VGG"`.
    pub name: String,
    /// Dataset the paper trains this model on.
    pub dataset: &'static str,
    /// Input shape `(channels, height, width)`.
    pub input_shape: (usize, usize, usize),
    /// Weight-bearing layers in execution order (pooling layers carry no weights and are folded
    /// into the adjacent layers' feature-map sizes).
    pub layers: Vec<LayerDims>,
    /// Whether each weight is a `(μ, σ)` distribution sampled `S` times.
    pub bayesian: bool,
}

impl ModelConfig {
    /// Total number of weights across all layers.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(LayerDims::weights).sum()
    }

    /// Total forward-pass MACs for one input example (one sample).
    pub fn total_forward_macs(&self) -> u64 {
        self.layers.iter().map(LayerDims::forward_macs).sum()
    }

    /// Total feature-map elements touched in one forward pass (inputs plus outputs of every
    /// weight-bearing layer).
    pub fn total_feature_map_elements(&self) -> u64 {
        self.layers.iter().map(|l| l.input_elements() + l.output_elements()).sum()
    }

    /// Number of weight-bearing layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Returns the Bayesian variant of this model (same geometry, `B-` name prefix).
    pub fn bayesian_variant(&self) -> ModelConfig {
        if self.bayesian {
            return self.clone();
        }
        ModelConfig { name: format!("B-{}", self.name), bayesian: true, ..self.clone() }
    }
}

/// The five model families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// 3-hidden-layer fully-connected network on MNIST (B-MLP).
    Mlp,
    /// LeNet-5 on CIFAR-10 (B-LeNet).
    LeNet,
    /// AlexNet on ImageNet (B-AlexNet).
    AlexNet,
    /// VGG-16 on ImageNet (B-VGG).
    Vgg16,
    /// ResNet-18 on ImageNet (B-ResNet).
    ResNet18,
}

impl ModelKind {
    /// All five families in the order the paper's figures list them.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::Mlp,
            ModelKind::LeNet,
            ModelKind::AlexNet,
            ModelKind::Vgg16,
            ModelKind::ResNet18,
        ]
    }

    /// The DNN (non-Bayesian) variant.
    pub fn dnn(&self) -> ModelConfig {
        match self {
            ModelKind::Mlp => mlp(),
            ModelKind::LeNet => lenet5(),
            ModelKind::AlexNet => alexnet(),
            ModelKind::Vgg16 => vgg16(),
            ModelKind::ResNet18 => resnet18(),
        }
    }

    /// The Bayesian variant (B-MLP, B-LeNet, …).
    pub fn bnn(&self) -> ModelConfig {
        self.dnn().bayesian_variant()
    }

    /// The name the paper uses for the Bayesian variant.
    pub fn paper_name(&self) -> &'static str {
        match self {
            ModelKind::Mlp => "B-MLP",
            ModelKind::LeNet => "B-LeNet",
            ModelKind::AlexNet => "B-AlexNet",
            ModelKind::Vgg16 => "B-VGG",
            ModelKind::ResNet18 => "B-ResNet",
        }
    }

    /// The requested variant: Bayesian (`B-` prefix) or the DNN counterpart.
    pub fn variant(&self, bayesian: bool) -> ModelConfig {
        if bayesian {
            self.bnn()
        } else {
            self.dnn()
        }
    }

    /// Looks a family up by either of its two variant names (`"B-VGG"` or `"VGG"`).
    pub fn by_name(name: &str) -> Option<ModelKind> {
        ModelKind::all().into_iter().find(|k| k.paper_name() == name || k.dnn().name == name)
    }
}

/// The scaled-down *trainable* stand-in of a model family.
///
/// The full published architectures exist in this repo as [`ModelConfig`] geometries for
/// workload accounting, but actually training or serving them on synthetic data uses reduced
/// proxies (no ImageNet downloads, single-CPU containers). This struct is the single source of
/// those proxy shapes, shared by the Table 1 precision study and the `bnn-serve` inference
/// engine so the two sides exercise the same networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainableProxy {
    /// The family this proxy stands in for.
    pub kind: ModelKind,
    /// Whether the proxy is the convolutional (LeNet-style) network; `false` builds an MLP.
    pub conv: bool,
    /// Input shape: `[features]` for the MLP, `[channels, height, width]` for conv proxies.
    pub input: Vec<usize>,
    /// Hidden widths of the MLP proxy (unused by conv proxies).
    pub hidden: Vec<usize>,
    /// Output class count.
    pub classes: usize,
}

impl TrainableProxy {
    /// Number of input scalars one example carries.
    pub fn input_len(&self) -> usize {
        self.input.iter().product()
    }
}

impl ModelKind {
    /// The family's scaled-down trainable proxy (see [`TrainableProxy`]).
    ///
    /// The MLP family keeps an MLP shape; every convolutional family reduces to a
    /// LeNet-style network on 12×12×3 inputs — the same reductions the Table 1 study trains.
    pub fn trainable_proxy(&self) -> TrainableProxy {
        match self {
            ModelKind::Mlp => TrainableProxy {
                kind: *self,
                conv: false,
                input: vec![64],
                hidden: vec![48, 32],
                classes: 4,
            },
            _ => TrainableProxy {
                kind: *self,
                conv: true,
                input: vec![3, 12, 12],
                hidden: Vec::new(),
                classes: 3,
            },
        }
    }
}

/// The five Bayesian paper models, in figure order — one axis of the design-space sweep grid.
pub fn paper_bnns() -> Vec<ModelConfig> {
    ModelKind::all().iter().map(ModelKind::bnn).collect()
}

/// The five DNN counterparts, in figure order (the Fig. 2 baseline points).
pub fn paper_dnns() -> Vec<ModelConfig> {
    ModelKind::all().iter().map(ModelKind::dnn).collect()
}

/// All ten model variants a full figure sweep touches: the five BNNs, then the five DNNs.
pub fn paper_variants() -> Vec<ModelConfig> {
    let mut models = paper_bnns();
    models.extend(paper_dnns());
    models
}

/// The 3-hidden-layer MLP (784-400-400-400-10) trained on MNIST.
pub fn mlp() -> ModelConfig {
    let layers = vec![
        LayerDims::fc("fc1", 784, 400),
        LayerDims::fc("fc2", 400, 400),
        LayerDims::fc("fc3", 400, 400),
        LayerDims::fc("fc4", 400, 10),
    ];
    ModelConfig {
        name: "MLP".into(),
        dataset: "MNIST",
        input_shape: (1, 28, 28),
        layers,
        bayesian: false,
    }
}

/// LeNet-5 adapted to 32×32×3 CIFAR-10 inputs.
pub fn lenet5() -> ModelConfig {
    let layers = vec![
        LayerDims::conv("conv1", 3, 6, 5, 32, 32, 1, 0),
        // 2x2 max pool: 28 -> 14
        LayerDims::conv("conv2", 6, 16, 5, 14, 14, 1, 0),
        // 2x2 max pool: 10 -> 5
        LayerDims::fc("fc1", 16 * 5 * 5, 120),
        LayerDims::fc("fc2", 120, 84),
        LayerDims::fc("fc3", 84, 10),
    ];
    ModelConfig {
        name: "LeNet".into(),
        dataset: "CIFAR-10",
        input_shape: (3, 32, 32),
        layers,
        bayesian: false,
    }
}

/// AlexNet on 227×227×3 ImageNet inputs.
pub fn alexnet() -> ModelConfig {
    let layers = vec![
        LayerDims::conv("conv1", 3, 96, 11, 227, 227, 4, 0),
        // 3x3/2 max pool: 55 -> 27
        LayerDims::conv("conv2", 96, 256, 5, 27, 27, 1, 2),
        // 3x3/2 max pool: 27 -> 13
        LayerDims::conv("conv3", 256, 384, 3, 13, 13, 1, 1),
        LayerDims::conv("conv4", 384, 384, 3, 13, 13, 1, 1),
        LayerDims::conv("conv5", 384, 256, 3, 13, 13, 1, 1),
        // 3x3/2 max pool: 13 -> 6
        LayerDims::fc("fc6", 256 * 6 * 6, 4096),
        LayerDims::fc("fc7", 4096, 4096),
        LayerDims::fc("fc8", 4096, 1000),
    ];
    ModelConfig {
        name: "AlexNet".into(),
        dataset: "ImageNet",
        input_shape: (3, 227, 227),
        layers,
        bayesian: false,
    }
}

/// VGG-16 on 224×224×3 ImageNet inputs.
pub fn vgg16() -> ModelConfig {
    let mut layers = Vec::new();
    // (block, repeats, in_channels, out_channels, spatial size at block input)
    let blocks = [
        (1usize, 2usize, 3usize, 64usize, 224usize),
        (2, 2, 64, 128, 112),
        (3, 3, 128, 256, 56),
        (4, 3, 256, 512, 28),
        (5, 3, 512, 512, 14),
    ];
    for (block, repeats, in_c, out_c, size) in blocks {
        for rep in 1..=repeats {
            let n = if rep == 1 { in_c } else { out_c };
            layers.push(LayerDims::conv(
                format!("conv{block}_{rep}"),
                n,
                out_c,
                3,
                size,
                size,
                1,
                1,
            ));
        }
    }
    layers.push(LayerDims::fc("fc1", 512 * 7 * 7, 4096));
    layers.push(LayerDims::fc("fc2", 4096, 4096));
    layers.push(LayerDims::fc("fc3", 4096, 1000));
    ModelConfig {
        name: "VGG".into(),
        dataset: "ImageNet",
        input_shape: (3, 224, 224),
        layers,
        bayesian: false,
    }
}

/// ResNet-18 on 224×224×3 ImageNet inputs (shortcut 1×1 convolutions included).
pub fn resnet18() -> ModelConfig {
    let mut layers = vec![LayerDims::conv("conv1", 3, 64, 7, 224, 224, 2, 3)];
    // After conv1 (112x112) a 3x3/2 max pool gives 56x56.
    let stages = [
        (2usize, 64usize, 64usize, 56usize, false),
        (3, 64, 128, 56, true),
        (4, 128, 256, 28, true),
        (5, 256, 512, 14, true),
    ];
    for (stage, in_c, out_c, in_size, downsample) in stages {
        let out_size = if downsample { in_size / 2 } else { in_size };
        // First basic block (possibly strided, with a projection shortcut).
        let stride = if downsample { 2 } else { 1 };
        layers.push(LayerDims::conv(
            format!("conv{stage}_1a"),
            in_c,
            out_c,
            3,
            in_size,
            in_size,
            stride,
            1,
        ));
        layers.push(LayerDims::conv(
            format!("conv{stage}_1b"),
            out_c,
            out_c,
            3,
            out_size,
            out_size,
            1,
            1,
        ));
        if downsample {
            layers.push(LayerDims::conv(
                format!("shortcut{stage}"),
                in_c,
                out_c,
                1,
                in_size,
                in_size,
                2,
                0,
            ));
        }
        // Second basic block.
        layers.push(LayerDims::conv(
            format!("conv{stage}_2a"),
            out_c,
            out_c,
            3,
            out_size,
            out_size,
            1,
            1,
        ));
        layers.push(LayerDims::conv(
            format!("conv{stage}_2b"),
            out_c,
            out_c,
            3,
            out_size,
            out_size,
            1,
            1,
        ));
    }
    layers.push(LayerDims::fc("fc", 512, 1000));
    ModelConfig {
        name: "ResNet".into(),
        dataset: "ImageNet",
        input_shape: (3, 224, 224),
        layers,
        bayesian: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_millions(v: u64) -> f64 {
        v as f64 / 1e6
    }

    #[test]
    fn mlp_parameter_count_matches_architecture() {
        let m = mlp();
        assert_eq!(m.total_weights(), 784 * 400 + 400 * 400 + 400 * 400 + 400 * 10);
        assert_eq!(m.layer_count(), 4);
    }

    #[test]
    fn lenet_has_canonical_sixty_two_thousand_weights() {
        let w = lenet5().total_weights();
        assert!((60_000..66_000).contains(&w), "LeNet weights {w}");
    }

    #[test]
    fn alexnet_has_roughly_sixty_million_weights() {
        let w = in_millions(alexnet().total_weights());
        assert!((58.0..63.0).contains(&w), "AlexNet weights {w}M");
    }

    #[test]
    fn vgg16_has_roughly_138_million_weights_and_15_gmacs() {
        let m = vgg16();
        let w = in_millions(m.total_weights());
        assert!((135.0..141.0).contains(&w), "VGG-16 weights {w}M");
        let gmacs = m.total_forward_macs() as f64 / 1e9;
        assert!((14.0..16.5).contains(&gmacs), "VGG-16 forward GMACs {gmacs}");
    }

    #[test]
    fn resnet18_has_roughly_eleven_million_weights_and_1_8_gmacs() {
        let m = resnet18();
        let w = in_millions(m.total_weights());
        assert!((10.5..12.5).contains(&w), "ResNet-18 weights {w}M");
        let gmacs = m.total_forward_macs() as f64 / 1e9;
        assert!((1.6..2.1).contains(&gmacs), "ResNet-18 forward GMACs {gmacs}");
    }

    #[test]
    fn bayesian_variant_shares_geometry_and_changes_name() {
        let b = vgg16().bayesian_variant();
        assert_eq!(b.name, "B-VGG");
        assert!(b.bayesian);
        assert_eq!(b.total_weights(), vgg16().total_weights());
        // Idempotent.
        assert_eq!(b.bayesian_variant(), b);
    }

    #[test]
    fn model_kind_enumerates_all_five_models() {
        let kinds = ModelKind::all();
        assert_eq!(kinds.len(), 5);
        for kind in kinds {
            let dnn = kind.dnn();
            let bnn = kind.bnn();
            assert!(bnn.bayesian);
            assert!(!dnn.bayesian);
            assert!(bnn.name.starts_with("B-"));
            assert_eq!(kind.paper_name(), bnn.name);
            assert!(dnn.total_weights() > 0);
        }
    }

    #[test]
    fn variant_and_lookup_round_trip() {
        for kind in ModelKind::all() {
            assert_eq!(kind.variant(true), kind.bnn());
            assert_eq!(kind.variant(false), kind.dnn());
            assert_eq!(ModelKind::by_name(kind.paper_name()), Some(kind));
            assert_eq!(ModelKind::by_name(&kind.dnn().name), Some(kind));
        }
        assert_eq!(ModelKind::by_name("B-GPT"), None);
    }

    #[test]
    fn grid_enumeration_helpers_cover_both_variants() {
        assert_eq!(paper_bnns().len(), 5);
        assert_eq!(paper_dnns().len(), 5);
        let variants = paper_variants();
        assert_eq!(variants.len(), 10);
        assert!(variants[..5].iter().all(|m| m.bayesian));
        assert!(variants[5..].iter().all(|m| !m.bayesian));
        // Figure order is preserved within each half.
        assert_eq!(variants[0].name, "B-MLP");
        assert_eq!(variants[5].name, "MLP");
    }

    #[test]
    fn trainable_proxies_have_valid_shapes() {
        for kind in ModelKind::all() {
            let proxy = kind.trainable_proxy();
            assert_eq!(proxy.kind, kind);
            assert!(proxy.classes >= 2);
            assert!(proxy.input_len() > 0);
            if proxy.conv {
                assert_eq!(proxy.input.len(), 3, "{kind:?} conv proxy needs [C, H, W]");
                // The LeNet-style builder pools twice, so spatial dims must divide by 4.
                assert!(proxy.input[1].is_multiple_of(4));
                assert!(proxy.input[2].is_multiple_of(4));
            } else {
                assert_eq!(proxy.input.len(), 1);
                assert!(!proxy.hidden.is_empty());
            }
        }
    }

    #[test]
    fn paper_observation_weights_dwarf_feature_maps() {
        // Section 3: "on average the size of weights is 122x of the size of feature maps" across
        // the five BNN models; we check the weighted dominance holds for the FC-heavy models and
        // that the average ratio is far above 1.
        let mut ratios = Vec::new();
        for kind in ModelKind::all() {
            let m = kind.bnn();
            let ratio = m.total_weights() as f64 / m.total_feature_map_elements() as f64;
            ratios.push(ratio);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(avg > 20.0, "weights should dominate feature maps on average, got {avg}");
        // The MLP is the extreme case (no spatial reuse at all).
        assert!(ratios[0] > 100.0, "MLP ratio {}", ratios[0]);
    }
}
