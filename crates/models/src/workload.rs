//! Training-workload volumes: how many values of each operand class a training iteration
//! touches, as a function of the Monte-Carlo sample count `S`.
//!
//! These are *logical* counts (numbers of values); the accelerator simulator in `bnn-arch`
//! converts them into bytes, DRAM accesses, cycles and energy according to its buffer sizes,
//! dataflow mapping and precision.

use crate::layer::LayerDims;
use crate::zoo::ModelConfig;

/// Number of training stages: forward, backward, gradient calculation.
pub const TRAINING_STAGES: u64 = 3;

/// Operand volumes of one layer for one training iteration (one input example, `S` samples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerVolume {
    /// The layer's dimensions.
    pub dims: LayerDims,
    /// Weight-parameter values: `weights` for a DNN, `2 × weights` (μ and σ) for a BNN.
    pub weight_param_values: u64,
    /// Gaussian random variables drawn: `S × weights` for a BNN, 0 for a DNN.
    pub epsilon_values: u64,
    /// Input feature-map values consumed across all samples.
    pub input_values: u64,
    /// Output feature-map values produced across all samples.
    pub output_values: u64,
    /// MAC operations of one stage across all samples (`S × M·N·K²·R·C`).
    pub stage_macs: u64,
}

impl LayerVolume {
    /// Computes the volumes of `dims` for `samples` Monte-Carlo samples.
    pub fn for_layer(dims: &LayerDims, samples: usize, bayesian: bool) -> Self {
        let s = samples.max(1) as u64;
        let weights = dims.weights();
        Self {
            dims: dims.clone(),
            weight_param_values: if bayesian { 2 * weights } else { weights },
            epsilon_values: if bayesian { s * weights } else { 0 },
            input_values: s * dims.input_elements(),
            output_values: s * dims.output_elements(),
            stage_macs: s * dims.forward_macs(),
        }
    }

    /// Total MACs across the three training stages.
    pub fn training_macs(&self) -> u64 {
        TRAINING_STAGES * self.stage_macs
    }
}

/// Operand volumes of a whole model for one training iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelVolume {
    /// Name of the model the volumes were computed for.
    pub model_name: String,
    /// Monte-Carlo sample count `S` used.
    pub samples: usize,
    /// Whether the model is Bayesian.
    pub bayesian: bool,
    /// Per-layer volumes in execution order.
    pub layers: Vec<LayerVolume>,
}

impl ModelVolume {
    /// Computes per-layer volumes for `model` trained with `samples` samples.
    pub fn for_model(model: &ModelConfig, samples: usize) -> Self {
        let layers = model
            .layers
            .iter()
            .map(|l| LayerVolume::for_layer(l, samples, model.bayesian))
            .collect();
        Self { model_name: model.name.clone(), samples, bayesian: model.bayesian, layers }
    }

    /// Total Gaussian random variables drawn per iteration.
    pub fn total_epsilon_values(&self) -> u64 {
        self.layers.iter().map(|l| l.epsilon_values).sum()
    }

    /// Total weight-parameter values ((μ, σ) pairs count as two values).
    pub fn total_weight_param_values(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_param_values).sum()
    }

    /// Total feature-map values (inputs plus outputs of every layer, across samples).
    pub fn total_feature_map_values(&self) -> u64 {
        self.layers.iter().map(|l| l.input_values + l.output_values).sum()
    }

    /// Total MACs across the three training stages.
    pub fn total_training_macs(&self) -> u64 {
        self.layers.iter().map(LayerVolume::training_macs).sum()
    }

    /// Fraction of the three operand classes (weights, ε, feature maps) by value count —
    /// the quantity behind the paper's Fig. 3 breakdown.
    pub fn operand_fractions(&self) -> (f64, f64, f64) {
        let w = self.total_weight_param_values() as f64;
        let e = self.total_epsilon_values() as f64;
        let f = self.total_feature_map_values() as f64;
        let total = (w + e + f).max(1.0);
        (w / total, e / total, f / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelKind;

    #[test]
    fn dnn_layers_draw_no_epsilon() {
        let dnn = ModelKind::LeNet.dnn();
        let vol = ModelVolume::for_model(&dnn, 16);
        assert_eq!(vol.total_epsilon_values(), 0);
        assert!(!vol.bayesian);
    }

    #[test]
    fn bnn_epsilon_scales_linearly_with_samples() {
        let bnn = ModelKind::LeNet.bnn();
        let v8 = ModelVolume::for_model(&bnn, 8);
        let v32 = ModelVolume::for_model(&bnn, 32);
        assert_eq!(v8.total_epsilon_values() * 4, v32.total_epsilon_values());
        assert_eq!(v8.total_epsilon_values(), 8 * bnn.total_weights());
    }

    #[test]
    fn weight_params_double_for_bayesian_models() {
        let kind = ModelKind::Mlp;
        let dnn = ModelVolume::for_model(&kind.dnn(), 1);
        let bnn = ModelVolume::for_model(&kind.bnn(), 1);
        assert_eq!(bnn.total_weight_param_values(), 2 * dnn.total_weight_param_values());
    }

    #[test]
    fn training_macs_cover_three_stages_and_all_samples() {
        let bnn = ModelKind::Mlp.bnn();
        let vol = ModelVolume::for_model(&bnn, 4);
        assert_eq!(vol.total_training_macs(), 3 * 4 * bnn.total_forward_macs());
    }

    #[test]
    fn epsilon_dominates_operands_at_moderate_sample_counts() {
        // The Fig. 3 observation: with S = 16, ε is the largest operand class for every model.
        for kind in ModelKind::all() {
            let vol = ModelVolume::for_model(&kind.bnn(), 16);
            let (w, e, f) = vol.operand_fractions();
            assert!(e > w && e > f, "{}: w={w:.2} e={e:.2} f={f:.2}", kind.paper_name());
        }
    }

    #[test]
    fn operand_fractions_sum_to_one() {
        let vol = ModelVolume::for_model(&ModelKind::Vgg16.bnn(), 16);
        let (w, e, f) = vol.operand_fractions();
        assert!((w + e + f - 1.0).abs() < 1e-9);
    }
}
