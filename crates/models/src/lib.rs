//! Model zoo and workload descriptors for the Shift-BNN reproduction.
//!
//! The paper evaluates five Bayesian network families — B-MLP, B-LeNet, B-AlexNet, B-VGG and
//! B-ResNet — each built on its conventional DNN counterpart. This crate captures their layer
//! geometries ([`zoo`]) and converts them into per-iteration operand volumes ([`workload`]):
//! how many weight parameters, Gaussian random variables ε and feature-map values a training
//! iteration touches as a function of the sample count `S`. The accelerator simulator
//! (`bnn-arch`) turns those volumes into traffic, latency and energy.
//!
//! # Example
//!
//! ```
//! use bnn_models::workload::ModelVolume;
//! use bnn_models::zoo::ModelKind;
//!
//! let bvgg = ModelKind::Vgg16.bnn();
//! let volume = ModelVolume::for_model(&bvgg, 16);
//! let (_, epsilon_fraction, _) = volume.operand_fractions();
//! assert!(epsilon_fraction > 0.5); // ε dominates the operands, the paper's key observation
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod layer;
pub mod workload;
pub mod zoo;

pub use layer::{LayerDims, LayerKind};
pub use workload::{LayerVolume, ModelVolume};
pub use zoo::{paper_bnns, paper_dnns, paper_variants, ModelConfig, ModelKind};
