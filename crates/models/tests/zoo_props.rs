//! Property tests over the model zoo and workload accounting.

use bnn_models::workload::ModelVolume;
use bnn_models::zoo::ModelKind;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = ModelKind> {
    prop::sample::select(ModelKind::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// ε volume is exactly S × weights and grows monotonically with S for every model.
    #[test]
    fn epsilon_volume_scaling(kind in arb_kind(), s1 in 1usize..64, s2 in 64usize..256) {
        let bnn = kind.bnn();
        let v1 = ModelVolume::for_model(&bnn, s1);
        let v2 = ModelVolume::for_model(&bnn, s2);
        prop_assert_eq!(v1.total_epsilon_values(), s1 as u64 * bnn.total_weights());
        prop_assert!(v2.total_epsilon_values() > v1.total_epsilon_values());
    }

    /// Feature maps and MACs also scale linearly in S, so the ε *fraction* of all operands is
    /// non-decreasing in S (the scalability argument behind Fig. 13).
    #[test]
    fn epsilon_fraction_grows_with_samples(kind in arb_kind(), s in 2usize..128) {
        let bnn = kind.bnn();
        let small = ModelVolume::for_model(&bnn, s);
        let large = ModelVolume::for_model(&bnn, s * 2);
        let (_, e_small, _) = small.operand_fractions();
        let (_, e_large, _) = large.operand_fractions();
        prop_assert!(e_large >= e_small - 1e-12);
    }

    /// DNN and BNN variants of the same family always share layer geometry.
    #[test]
    fn variants_share_geometry(kind in arb_kind()) {
        let dnn = kind.dnn();
        let bnn = kind.bnn();
        prop_assert_eq!(dnn.layer_count(), bnn.layer_count());
        prop_assert_eq!(dnn.total_weights(), bnn.total_weights());
        prop_assert_eq!(dnn.total_forward_macs(), bnn.total_forward_macs());
    }
}
