//! 2-D convolution: forward pass, input gradient (the 180°-rotated-kernel convolution that the
//! backward stage performs) and weight gradient.
//!
//! Layouts follow the paper's Fig. 1(b) loop nest: feature maps are `[channels, height, width]`
//! and weights are `[out_channels (M), in_channels (N), K, K]`. Batching and the sample
//! dimension S are handled by the caller (`bnn-train`), since different samples execute
//! independently.

use crate::tensor::{Tensor, TensorError};

/// Geometry of a convolutional layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Number of input channels (N).
    pub in_channels: usize,
    /// Number of output channels (M).
    pub out_channels: usize,
    /// Kernel height/width (K); kernels are square as in all five paper models.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration produces a non-positive output size.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding).checked_sub(self.kernel).map(|v| v / self.stride + 1);
        let ow = (w + 2 * self.padding).checked_sub(self.kernel).map(|v| v / self.stride + 1);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => (oh, ow),
            _ => panic!("convolution geometry {self:?} produces empty output for {h}x{w} input"),
        }
    }

    /// Number of weights in the kernel tensor `[M, N, K, K]`.
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }
}

pub(crate) fn expect_shape(t: &Tensor, shape: &[usize]) -> Result<(), TensorError> {
    if t.shape() != shape {
        return Err(TensorError::ShapeMismatch { left: t.shape().to_vec(), right: shape.to_vec() });
    }
    Ok(())
}

/// The retained straightforward loop-nest kernels, kept as the bit-exactness oracle for the
/// packed [`crate::kernels`] implementations (and as the baseline `hot_bench` measures
/// speedups against). These are the paper's Fig. 1(b) loop nests, unchanged.
pub mod reference {
    use super::{expect_shape, ConvGeometry};
    use crate::tensor::{Tensor, TensorError};

    /// Forward convolution.
    ///
    /// * `input` — `[N, H, W]`
    /// * `weights` — `[M, N, K, K]`
    /// * `bias` — `[M]`
    ///
    /// Returns `[M, OH, OW]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if any operand's shape is inconsistent with `geom`.
    pub fn conv2d_forward(
        geom: &ConvGeometry,
        input: &Tensor,
        weights: &Tensor,
        bias: &Tensor,
    ) -> Result<Tensor, TensorError> {
        let (n, m, k) = (geom.in_channels, geom.out_channels, geom.kernel);
        let in_shape = input.shape().to_vec();
        if in_shape.len() != 3 || in_shape[0] != n {
            return Err(TensorError::ShapeMismatch { left: in_shape, right: vec![n, 0, 0] });
        }
        let (h, w) = (in_shape[1], in_shape[2]);
        expect_shape(weights, &[m, n, k, k])?;
        expect_shape(bias, &[m])?;
        let (oh, ow) = geom.output_size(h, w);
        let pad = geom.padding as isize;
        let stride = geom.stride as isize;

        let mut out = Tensor::zeros(&[m, oh, ow]);
        let in_d = input.data();
        let w_d = weights.data();
        let out_d = out.data_mut();
        for om in 0..m {
            let b = bias.data()[om];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ic in 0..n {
                        for ky in 0..k {
                            let iy = oy as isize * stride + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox as isize * stride + kx as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let iv = in_d[(ic * h + iy as usize) * w + ix as usize];
                                let wv = w_d[((om * n + ic) * k + ky) * k + kx];
                                acc += iv * wv;
                            }
                        }
                    }
                    out_d[(om * oh + oy) * ow + ox] = acc;
                }
            }
        }
        Ok(out)
    }

    /// Gradient of the loss with respect to the convolution *input*.
    ///
    /// This is the backward-stage computation the paper describes: the kernels are rotated 180° and
    /// convolved with the output errors (a "full" convolution when `padding = k - 1 - padding`).
    ///
    /// * `grad_output` — `[M, OH, OW]`
    /// * `weights` — `[M, N, K, K]`
    ///
    /// Returns `[N, H, W]` where `h`/`w` are the forward input sizes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if operand shapes are inconsistent with `geom`.
    pub fn conv2d_backward_input(
        geom: &ConvGeometry,
        grad_output: &Tensor,
        weights: &Tensor,
        input_h: usize,
        input_w: usize,
    ) -> Result<Tensor, TensorError> {
        let (n, m, k) = (geom.in_channels, geom.out_channels, geom.kernel);
        let (oh, ow) = geom.output_size(input_h, input_w);
        expect_shape(grad_output, &[m, oh, ow])?;
        expect_shape(weights, &[m, n, k, k])?;
        let pad = geom.padding as isize;
        let stride = geom.stride as isize;

        let mut grad_in = Tensor::zeros(&[n, input_h, input_w]);
        let go = grad_output.data();
        let w_d = weights.data();
        let gi = grad_in.data_mut();
        // Scatter formulation: every output error contributes back to the input positions its
        // receptive field covered, weighted by the (unrotated) kernel entry — equivalent to the
        // rotated-kernel convolution but exact for any stride/padding.
        for om in 0..m {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[(om * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..n {
                        for ky in 0..k {
                            let iy = oy as isize * stride + ky as isize - pad;
                            if iy < 0 || iy >= input_h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox as isize * stride + kx as isize - pad;
                                if ix < 0 || ix >= input_w as isize {
                                    continue;
                                }
                                let wv = w_d[((om * n + ic) * k + ky) * k + kx];
                                gi[(ic * input_h + iy as usize) * input_w + ix as usize] += g * wv;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    /// Gradient of the loss with respect to the convolution *weights* (the likelihood part of the
    /// gradient-calculation stage: feature maps convolved with errors).
    ///
    /// * `input` — `[N, H, W]` (the forward activations)
    /// * `grad_output` — `[M, OH, OW]`
    ///
    /// Returns `([M, N, K, K], [M])`: weight gradient and bias gradient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if operand shapes are inconsistent with `geom`.
    pub fn conv2d_backward_weights(
        geom: &ConvGeometry,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> Result<(Tensor, Tensor), TensorError> {
        let (n, m, k) = (geom.in_channels, geom.out_channels, geom.kernel);
        let in_shape = input.shape().to_vec();
        if in_shape.len() != 3 || in_shape[0] != n {
            return Err(TensorError::ShapeMismatch { left: in_shape, right: vec![n, 0, 0] });
        }
        let (h, w) = (in_shape[1], in_shape[2]);
        let (oh, ow) = geom.output_size(h, w);
        expect_shape(grad_output, &[m, oh, ow])?;
        let pad = geom.padding as isize;
        let stride = geom.stride as isize;

        let mut grad_w = Tensor::zeros(&[m, n, k, k]);
        let mut grad_b = Tensor::zeros(&[m]);
        let in_d = input.data();
        let go = grad_output.data();
        {
            let gw = grad_w.data_mut();
            let gb = grad_b.data_mut();
            for om in 0..m {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[(om * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[om] += g;
                        for ic in 0..n {
                            for ky in 0..k {
                                let iy = oy as isize * stride + ky as isize - pad;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = ox as isize * stride + kx as isize - pad;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let iv = in_d[(ic * h + iy as usize) * w + ix as usize];
                                    gw[((om * n + ic) * k + ky) * k + kx] += g * iv;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok((grad_w, grad_b))
    }
}

/// Forward convolution via im2col packing and the cache-blocked GEMM of [`crate::kernels`] —
/// bit-identical to [`reference::conv2d_forward`] (pinned by `tests/kernel_equivalence.rs`).
///
/// * `input` — `[N, H, W]`
/// * `weights` — `[M, N, K, K]`
/// * `bias` — `[M]`
///
/// Returns `[M, OH, OW]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if any operand's shape is inconsistent with `geom`.
pub fn conv2d_forward(
    geom: &ConvGeometry,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    let (n, m, k) = (geom.in_channels, geom.out_channels, geom.kernel);
    let in_shape = input.shape();
    if in_shape.len() != 3 || in_shape[0] != n {
        return Err(TensorError::ShapeMismatch { left: in_shape.to_vec(), right: vec![n, 0, 0] });
    }
    expect_shape(weights, &[m, n, k, k])?;
    expect_shape(bias, &[m])?;
    let (oh, ow) = geom.output_size(in_shape[1], in_shape[2]);
    let mut out = Tensor::zeros(&[m, oh, ow]);
    let mut scratch = crate::scratch::Scratch::new();
    crate::kernels::conv2d_forward_into(geom, input, weights, bias, &mut out, &mut scratch)?;
    Ok(out)
}

/// Gradient of the loss with respect to the convolution *input*, computed by the packed
/// kernels of [`crate::kernels`] — bit-identical to [`reference::conv2d_backward_input`].
///
/// * `grad_output` — `[M, OH, OW]`
/// * `weights` — `[M, N, K, K]`
///
/// Returns `[N, H, W]` where `h`/`w` are the forward input sizes.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if operand shapes are inconsistent with `geom`.
pub fn conv2d_backward_input(
    geom: &ConvGeometry,
    grad_output: &Tensor,
    weights: &Tensor,
    input_h: usize,
    input_w: usize,
) -> Result<Tensor, TensorError> {
    let mut grad_in = Tensor::zeros(&[geom.in_channels, input_h, input_w]);
    let mut scratch = crate::scratch::Scratch::new();
    crate::kernels::conv2d_backward_input_into(
        geom,
        grad_output,
        weights,
        input_h,
        input_w,
        &mut grad_in,
        &mut scratch,
    )?;
    Ok(grad_in)
}

/// Gradient of the loss with respect to the convolution *weights* (plus the bias gradient),
/// computed by the packed kernels of [`crate::kernels`] — bit-identical to
/// [`reference::conv2d_backward_weights`].
///
/// * `input` — `[N, H, W]` (the forward activations)
/// * `grad_output` — `[M, OH, OW]`
///
/// Returns `([M, N, K, K], [M])`: weight gradient and bias gradient.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if operand shapes are inconsistent with `geom`.
pub fn conv2d_backward_weights(
    geom: &ConvGeometry,
    input: &Tensor,
    grad_output: &Tensor,
) -> Result<(Tensor, Tensor), TensorError> {
    let (n, m, k) = (geom.in_channels, geom.out_channels, geom.kernel);
    let mut grad_w = Tensor::zeros(&[m, n, k, k]);
    let mut grad_b = Tensor::zeros(&[m]);
    let mut scratch = crate::scratch::Scratch::new();
    crate::kernels::conv2d_backward_weights_into(
        geom,
        input,
        grad_output,
        &mut grad_w,
        &mut grad_b,
        &mut scratch,
    )?;
    Ok((grad_w, grad_b))
}

/// Rotates every `K × K` kernel of a `[M, N, K, K]` weight tensor by 180°, the reorganization
/// shown in the paper's Fig. 5(a). Exposed primarily so tests can confirm that the reversed
/// sampling order equals the rotated kernel order.
///
/// # Panics
///
/// Panics if the tensor is not 4-D with square kernels.
pub fn rotate_kernels_180(weights: &Tensor) -> Tensor {
    let s = weights.shape();
    assert_eq!(s.len(), 4, "expected [M, N, K, K] weights");
    assert_eq!(s[2], s[3], "kernels must be square");
    let (m, n, k) = (s[0], s[1], s[2]);
    let mut out = Tensor::zeros(s);
    for om in 0..m {
        for ic in 0..n {
            for ky in 0..k {
                for kx in 0..k {
                    let v = weights.at(&[om, ic, ky, kx]);
                    out.set(&[om, ic, k - 1 - ky, k - 1 - kx], v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(n: usize, m: usize, k: usize, stride: usize, padding: usize) -> ConvGeometry {
        ConvGeometry { in_channels: n, out_channels: m, kernel: k, stride, padding }
    }

    #[test]
    fn output_size_matches_standard_formula() {
        let g = geom(3, 8, 3, 1, 1);
        assert_eq!(g.output_size(32, 32), (32, 32));
        let g = geom(3, 8, 5, 1, 0);
        assert_eq!(g.output_size(32, 32), (28, 28));
        let g = geom(3, 8, 3, 2, 1);
        assert_eq!(g.output_size(32, 32), (16, 16));
    }

    #[test]
    fn weight_count_is_mnkk() {
        assert_eq!(geom(3, 8, 3, 1, 1).weight_count(), 3 * 8 * 9);
    }

    #[test]
    fn forward_identity_kernel_copies_input() {
        // 1x1 kernel with weight 1 and zero bias reproduces the input per output channel.
        let g = geom(1, 1, 1, 1, 0);
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let weights = Tensor::filled(&[1, 1, 1, 1], 1.0);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&g, &input, &weights, &bias).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn forward_matches_hand_computed_3x3() {
        let g = geom(1, 1, 2, 1, 0);
        let input =
            Tensor::from_vec(vec![1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]).unwrap();
        let weights = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 0., 0., 1.]).unwrap();
        let bias = Tensor::from_vec(vec![1], vec![0.5]).unwrap();
        let out = conv2d_forward(&g, &input, &weights, &bias).unwrap();
        // Each output = input[y][x] + input[y+1][x+1] + 0.5.
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[6.5, 8.5, 12.5, 14.5]);
    }

    #[test]
    fn forward_rejects_bad_shapes() {
        let g = geom(2, 1, 3, 1, 1);
        let input = Tensor::zeros(&[1, 4, 4]);
        let weights = Tensor::zeros(&[1, 2, 3, 3]);
        let bias = Tensor::zeros(&[1]);
        assert!(conv2d_forward(&g, &input, &weights, &bias).is_err());
    }

    #[test]
    fn backward_input_matches_numerical_gradient() {
        let g = geom(2, 3, 3, 1, 1);
        let (h, w) = (5, 5);
        let input = Tensor::from_vec(
            vec![2, h, w],
            (0..2 * h * w).map(|i| (i as f32 * 0.37).sin()).collect(),
        )
        .unwrap();
        let weights = Tensor::from_vec(
            vec![3, 2, 3, 3],
            (0..3 * 2 * 9).map(|i| ((i as f32) * 0.11).cos() * 0.3).collect(),
        )
        .unwrap();
        let bias = Tensor::zeros(&[3]);
        // Scalar loss = sum of outputs, so dL/doutput = 1 everywhere.
        let out = conv2d_forward(&g, &input, &weights, &bias).unwrap();
        let grad_out = Tensor::filled(out.shape(), 1.0);
        let grad_in = conv2d_backward_input(&g, &grad_out, &weights, h, w).unwrap();

        let eps = 1e-2f32;
        for &probe in &[0usize, 7, 13, 24, 49] {
            let mut plus = input.clone();
            plus.data_mut()[probe] += eps;
            let mut minus = input.clone();
            minus.data_mut()[probe] -= eps;
            let f_plus = conv2d_forward(&g, &plus, &weights, &bias).unwrap().sum();
            let f_minus = conv2d_forward(&g, &minus, &weights, &bias).unwrap().sum();
            let numerical = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grad_in.data()[probe];
            assert!(
                (numerical - analytic).abs() < 1e-2,
                "probe {probe}: numerical {numerical} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn backward_weights_matches_numerical_gradient() {
        let g = geom(2, 2, 3, 1, 1);
        let (h, w) = (4, 4);
        let input = Tensor::from_vec(
            vec![2, h, w],
            (0..2 * h * w).map(|i| ((i as f32) * 0.21).sin()).collect(),
        )
        .unwrap();
        let weights = Tensor::from_vec(
            vec![2, 2, 3, 3],
            (0..2 * 2 * 9).map(|i| ((i as f32) * 0.17).cos() * 0.2).collect(),
        )
        .unwrap();
        let bias = Tensor::zeros(&[2]);
        let out = conv2d_forward(&g, &input, &weights, &bias).unwrap();
        let grad_out = Tensor::filled(out.shape(), 1.0);
        let (grad_w, grad_b) = conv2d_backward_weights(&g, &input, &grad_out).unwrap();

        let eps = 1e-2f32;
        for &probe in &[0usize, 5, 17, 35] {
            let mut plus = weights.clone();
            plus.data_mut()[probe] += eps;
            let mut minus = weights.clone();
            minus.data_mut()[probe] -= eps;
            let f_plus = conv2d_forward(&g, &input, &plus, &bias).unwrap().sum();
            let f_minus = conv2d_forward(&g, &input, &minus, &bias).unwrap().sum();
            let numerical = (f_plus - f_minus) / (2.0 * eps);
            assert!((numerical - grad_w.data()[probe]).abs() < 1e-2, "weight probe {probe}");
        }
        // Bias gradient is the number of output pixels per channel for an all-ones upstream.
        let (oh, ow) = g.output_size(h, w);
        assert!((grad_b.data()[0] - (oh * ow) as f32).abs() < 1e-4);
    }

    #[test]
    fn rotate_kernels_180_flips_both_spatial_axes() {
        let w =
            Tensor::from_vec(vec![1, 1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]).unwrap();
        let r = rotate_kernels_180(&w);
        assert_eq!(r.data(), &[9., 8., 7., 6., 5., 4., 3., 2., 1.]);
        // Rotating twice restores the original (Fig. 5(a) reversibility).
        assert_eq!(rotate_kernels_180(&r), w);
    }

    #[test]
    #[should_panic(expected = "empty output")]
    fn degenerate_geometry_panics() {
        let g = geom(1, 1, 5, 1, 0);
        g.output_size(3, 3);
    }
}
