//! Activation functions and their derivatives.

use crate::tensor::Tensor;

/// Rectified linear unit applied elementwise.
///
/// # Examples
///
/// ```
/// use bnn_tensor::{activation, Tensor};
/// let x = Tensor::from_vec(vec![3], vec![-1.0, 0.0, 2.0]).unwrap();
/// assert_eq!(activation::relu(&x).data(), &[0.0, 0.0, 2.0]);
/// ```
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// ReLU into a caller-provided output tensor (the zero-allocation variant of [`relu`];
/// bit-identical, since both apply `v.max(0.0)` elementwise).
///
/// # Panics
///
/// Panics if the shapes differ (an internal wiring error).
pub fn relu_into(x: &Tensor, out: &mut Tensor) {
    assert_eq!(x.shape(), out.shape(), "relu_into requires matching shapes");
    for (o, &v) in out.data_mut().iter_mut().zip(x.data()) {
        *o = v.max(0.0);
    }
}

/// Gradient of ReLU with respect to its input: passes `upstream` where the forward input was
/// positive, zero elsewhere.
///
/// # Panics
///
/// Panics if the shapes differ (this is an internal wiring error, not a data error).
pub fn relu_backward(input: &Tensor, upstream: &Tensor) -> Tensor {
    input
        .zip_map(upstream, |x, g| if x > 0.0 { g } else { 0.0 })
        .expect("relu_backward requires matching shapes")
}

/// ReLU gradient into a caller-provided output tensor (zero-allocation variant of
/// [`relu_backward`], bit-identical).
///
/// # Panics
///
/// Panics if the shapes differ (an internal wiring error).
pub fn relu_backward_into(input: &Tensor, upstream: &Tensor, out: &mut Tensor) {
    assert_eq!(input.shape(), upstream.shape(), "relu_backward_into requires matching shapes");
    assert_eq!(input.shape(), out.shape(), "relu_backward_into requires matching shapes");
    for ((o, &x), &g) in out.data_mut().iter_mut().zip(input.data()).zip(upstream.data()) {
        *o = if x > 0.0 { g } else { 0.0 };
    }
}

/// Numerically stable softplus `ln(1 + e^x)`, used to keep the standard deviation positive via
/// `σ = softplus(ρ)`.
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Derivative of softplus, the logistic sigmoid.
pub fn softplus_derivative(x: f32) -> f32 {
    sigmoid(x)
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse of softplus: returns `ρ` such that `softplus(ρ) = σ`.
///
/// # Panics
///
/// Panics if `sigma` is not strictly positive.
pub fn softplus_inverse(sigma: f32) -> f32 {
    assert!(sigma > 0.0, "softplus inverse requires a positive argument");
    if sigma > 20.0 {
        sigma
    } else {
        (sigma.exp() - 1.0).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![4], vec![-2.0, -0.5, 0.5, 3.0]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Tensor::from_vec(vec![3], vec![-1.0, 2.0, 0.0]).unwrap();
        let g = Tensor::filled(&[3], 1.0);
        assert_eq!(relu_backward(&x, &g).data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn softplus_is_positive_and_smooth() {
        assert!(softplus(-30.0) > 0.0);
        assert!((softplus(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((softplus(25.0) - 25.0).abs() < 1e-3);
    }

    #[test]
    fn softplus_inverse_round_trips() {
        for &s in &[0.01f32, 0.1, 0.5, 1.0, 5.0, 30.0] {
            let rho = softplus_inverse(s);
            assert!((softplus(rho) - s).abs() / s < 1e-3, "sigma {s}");
        }
    }

    #[test]
    fn sigmoid_is_symmetric_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
    }

    #[test]
    fn softplus_derivative_matches_finite_difference() {
        for &x in &[-2.0f32, -0.3, 0.0, 0.7, 3.0] {
            let h = 1e-3;
            let fd = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
            assert!((softplus_derivative(x) - fd).abs() < 1e-3, "x = {x}");
        }
    }
}
