//! Deterministic weight initializers.
//!
//! Initialization uses an explicit [`rand::Rng`] so experiments are reproducible end to end:
//! every figure/table binary seeds its own generator and obtains the same parameters on every
//! run.

use crate::tensor::Tensor;
use rand::Rng;

/// Fills a tensor of the given shape with splitmix64-derived pseudo-random values in roughly
/// `[-1, 1]` — a seed-deterministic fixture generator (no `Rng` plumbing) shared by the
/// kernel-equivalence proptests and the `hot_bench` microbenchmarks, whose committed digests
/// depend on this exact stream.
pub fn splitmix_tensor(seed: u64, shape: &[usize]) -> Tensor {
    let len: usize = shape.iter().product();
    let mut x = seed;
    let data: Vec<f32> = (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect();
    Tensor::from_vec(shape.to_vec(), data).expect("length derived from shape")
}

/// Fills a tensor of the given shape with uniform values in `[-limit, limit]` where
/// `limit = sqrt(6 / (fan_in + fan_out))` (Glorot/Xavier uniform initialization).
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    uniform(shape, -limit, limit, rng)
}

/// Fills a tensor with uniform values in `[low, high)`.
///
/// # Panics
///
/// Panics if `low >= high`.
pub fn uniform(shape: &[usize], low: f32, high: f32, rng: &mut impl Rng) -> Tensor {
    assert!(low < high, "uniform range must be non-empty");
    let len: usize = shape.iter().product();
    let data = (0..len).map(|_| rng.gen_range(low..high)).collect();
    Tensor::from_vec(shape.to_vec(), data).expect("length matches shape by construction")
}

/// Fills a tensor with a constant, used for initializing the `ρ` (pre-softplus standard
/// deviation) parameters of Bayesian layers.
pub fn constant(shape: &[usize], value: f32) -> Tensor {
    Tensor::filled(shape, value)
}

/// Conventional fan-in/fan-out computation for a `[M, N, K, K]` convolution weight or `[out, in]`
/// linear weight shape.
///
/// # Panics
///
/// Panics if the shape is not 2-D or 4-D.
pub fn fan_in_out(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        2 => (shape[1], shape[0]),
        4 => (shape[1] * shape[2] * shape[3], shape[0] * shape[2] * shape[3]),
        _ => panic!("fan computation expects a 2-D or 4-D weight shape, got {shape:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_values_are_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&[10, 10], 10, 10, &mut rng);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= limit));
    }

    #[test]
    fn same_seed_same_init() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ta = uniform(&[4, 4], -1.0, 1.0, &mut a);
        let tb = uniform(&[4, 4], -1.0, 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn fan_in_out_for_linear_and_conv() {
        assert_eq!(fan_in_out(&[32, 64]), (64, 32));
        assert_eq!(fan_in_out(&[8, 4, 3, 3]), (4 * 9, 8 * 9));
    }

    #[test]
    fn constant_fills_value() {
        let t = constant(&[3], -5.0);
        assert!(t.data().iter().all(|&v| v == -5.0));
    }

    #[test]
    #[should_panic(expected = "2-D or 4-D")]
    fn fan_in_out_rejects_other_ranks() {
        fan_in_out(&[3]);
    }
}
