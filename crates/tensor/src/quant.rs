//! Precision emulation for quantized training.
//!
//! The paper trains with 16-bit fixed point on the accelerator (Table 1 compares 8-, 16- and
//! 32-bit validation accuracy). Rather than maintaining separate integer tensor types, this
//! module *emulates* reduced precision by rounding every value through the corresponding fixed
//! point grid and saturating at its representable range — the standard "fake quantization"
//! technique, which reproduces the numerical behaviour (resolution loss, clipping, divergence of
//! 8-bit training on large models) while keeping a single `f32` storage type.

use crate::tensor::Tensor;

/// Numeric precision used for training arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// IEEE single precision (the paper's lossless reference).
    #[default]
    Fp32,
    /// 16-bit fixed point with the given number of fractional bits (the accelerator default;
    /// the paper uses Q6.10-style formats for weights/activations).
    Fx16 {
        /// Number of fractional bits (0..=15).
        frac_bits: u32,
    },
    /// 8-bit fixed point with the given number of fractional bits.
    Fx8 {
        /// Number of fractional bits (0..=7).
        frac_bits: u32,
    },
}

impl Precision {
    /// The 16-bit format used throughout the paper's evaluation (10 fractional bits).
    pub const PAPER_16BIT: Precision = Precision::Fx16 { frac_bits: 10 };
    /// The 8-bit format evaluated in Table 1 (4 fractional bits).
    pub const PAPER_8BIT: Precision = Precision::Fx8 { frac_bits: 4 };

    /// Number of bits a value of this precision occupies in buffers and DRAM.
    pub fn bits(&self) -> u32 {
        match self {
            Precision::Fp32 => 32,
            Precision::Fx16 { .. } => 16,
            Precision::Fx8 { .. } => 8,
        }
    }

    /// Number of bytes a value of this precision occupies.
    pub fn bytes(&self) -> usize {
        (self.bits() / 8) as usize
    }

    /// Quantizes a single value to this precision (round-to-nearest, saturating).
    pub fn quantize(&self, value: f32) -> f32 {
        match *self {
            Precision::Fp32 => value,
            Precision::Fx16 { frac_bits } => fixed_point(value, 16, frac_bits),
            Precision::Fx8 { frac_bits } => fixed_point(value, 8, frac_bits),
        }
    }

    /// Quantizes every element of a tensor.
    pub fn quantize_tensor(&self, tensor: &Tensor) -> Tensor {
        match self {
            Precision::Fp32 => tensor.clone(),
            _ => tensor.map(|v| self.quantize(v)),
        }
    }

    /// Quantizes every element of a tensor in place — the zero-allocation variant of
    /// [`Precision::quantize_tensor`], bit-identical (a no-op for `Fp32`).
    pub fn quantize_tensor_inplace(&self, tensor: &mut Tensor) {
        match self {
            Precision::Fp32 => {}
            _ => {
                for v in tensor.data_mut() {
                    *v = self.quantize(*v);
                }
            }
        }
    }

    /// Smallest positive representable step (the quantization resolution); zero for `Fp32`
    /// (negligible at the scales involved).
    pub fn resolution(&self) -> f32 {
        match *self {
            Precision::Fp32 => 0.0,
            Precision::Fx16 { frac_bits } | Precision::Fx8 { frac_bits } => {
                1.0 / (1u32 << frac_bits) as f32
            }
        }
    }

    /// Largest representable magnitude; infinity for `Fp32`.
    pub fn max_value(&self) -> f32 {
        match *self {
            Precision::Fp32 => f32::INFINITY,
            Precision::Fx16 { frac_bits } => ((1i64 << 15) - 1) as f32 / (1u32 << frac_bits) as f32,
            Precision::Fx8 { frac_bits } => ((1i64 << 7) - 1) as f32 / (1u32 << frac_bits) as f32,
        }
    }
}

fn fixed_point(value: f32, total_bits: u32, frac_bits: u32) -> f32 {
    debug_assert!(frac_bits < total_bits);
    if value.is_nan() {
        return f32::NAN;
    }
    let scale = (1u64 << frac_bits) as f32;
    let max_int = (1i64 << (total_bits - 1)) - 1;
    let min_int = -(1i64 << (total_bits - 1));
    let scaled = (value * scale).round() as i64;
    let clamped = scaled.clamp(min_int, max_int);
    clamped as f32 / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_is_identity() {
        let p = Precision::Fp32;
        assert_eq!(p.quantize(0.123_456_79), 0.123_456_79);
        assert_eq!(p.bits(), 32);
        assert_eq!(p.bytes(), 4);
    }

    #[test]
    fn fx16_rounds_to_grid() {
        let p = Precision::Fx16 { frac_bits: 10 };
        assert_eq!(p.resolution(), 1.0 / 1024.0);
        let q = p.quantize(0.1);
        assert!((q - 0.1).abs() <= p.resolution() / 2.0 + 1e-7);
        // Exactly representable values pass through unchanged.
        assert_eq!(p.quantize(0.5), 0.5);
        assert_eq!(p.bits(), 16);
    }

    #[test]
    fn fx8_saturates_at_range_limits() {
        let p = Precision::Fx8 { frac_bits: 4 };
        assert!(p.max_value() < 8.0);
        assert_eq!(p.quantize(100.0), p.max_value());
        assert_eq!(p.quantize(-100.0), -8.0);
        assert_eq!(p.bytes(), 1);
    }

    #[test]
    fn quantization_error_is_bounded_by_half_resolution() {
        let p16 = Precision::PAPER_16BIT;
        let p8 = Precision::PAPER_8BIT;
        for i in -100..100 {
            let v = i as f32 * 0.013;
            assert!((p16.quantize(v) - v).abs() <= p16.resolution() / 2.0 + 1e-6);
            if v.abs() < p8.max_value() {
                assert!((p8.quantize(v) - v).abs() <= p8.resolution() / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn eight_bit_is_much_coarser_than_sixteen_bit() {
        assert!(Precision::PAPER_8BIT.resolution() > 30.0 * Precision::PAPER_16BIT.resolution());
    }

    #[test]
    fn tensor_quantization_applies_elementwise() {
        let t = Tensor::from_vec(vec![3], vec![0.1, 0.26, 100.0]).unwrap();
        let q = Precision::Fx8 { frac_bits: 4 }.quantize_tensor(&t);
        assert_eq!(q.data()[2], Precision::Fx8 { frac_bits: 4 }.max_value());
        assert!((q.data()[0] - 0.125).abs() < 1e-6);
    }

    #[test]
    fn nan_propagates_through_quantization() {
        let p = Precision::PAPER_16BIT;
        assert!(p.quantize(f32::NAN).is_nan());
    }
}
