//! Max pooling with argmax bookkeeping for the backward pass.

use crate::tensor::{Tensor, TensorError};

/// Result of a max-pooling forward pass: the pooled output plus the flat input index that won
/// each pooling window (needed to route gradients back).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolOutput {
    /// Pooled feature map `[C, OH, OW]`.
    pub output: Tensor,
    /// For every output element, the flat index into the input tensor of the maximum element.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling over non-overlapping `window × window` regions with stride equal to the
/// window size (the configuration used by LeNet/AlexNet/VGG style networks).
///
/// * `input` — `[C, H, W]`; `H` and `W` must be divisible by `window`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the input is not 3-D or not divisible by the
/// window.
pub fn max_pool2d(input: &Tensor, window: usize) -> Result<PoolOutput, TensorError> {
    let shape = input.shape();
    if shape.len() != 3
        || window == 0
        || !shape[1].is_multiple_of(window)
        || !shape[2].is_multiple_of(window)
    {
        return Err(TensorError::ShapeMismatch {
            left: shape.to_vec(),
            right: vec![shape.first().copied().unwrap_or(0), window, window],
        });
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (oh, ow) = (h / window, w / window);
    let mut output = Tensor::zeros(&[c, oh, ow]);
    let mut argmax = vec![0usize; c * oh * ow];
    max_pool2d_into(input, window, &mut output, &mut argmax)?;
    Ok(PoolOutput { output, argmax })
}

/// Max pooling into caller-provided output and argmax buffers — the zero-allocation variant
/// of [`max_pool2d`], bit-identical (same scan order, same strict-`>` tie-breaking).
///
/// `out` must be `[C, H/window, W/window]` and `argmax.len()` must equal `out.len()`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] under the same conditions as [`max_pool2d`].
///
/// # Panics
///
/// Panics if `out` / `argmax` do not match the pooled geometry (an internal wiring error).
pub fn max_pool2d_into(
    input: &Tensor,
    window: usize,
    out: &mut Tensor,
    argmax: &mut [usize],
) -> Result<(), TensorError> {
    let shape = input.shape();
    if shape.len() != 3
        || window == 0
        || !shape[1].is_multiple_of(window)
        || !shape[2].is_multiple_of(window)
    {
        return Err(TensorError::ShapeMismatch {
            left: shape.to_vec(),
            right: vec![shape.first().copied().unwrap_or(0), window, window],
        });
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (oh, ow) = (h / window, w / window);
    assert_eq!(out.shape(), &[c, oh, ow], "pooled output shape mismatch");
    assert_eq!(argmax.len(), c * oh * ow, "argmax record size mismatch");
    let in_d = input.data();
    let out_d = out.data_mut();
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for dy in 0..window {
                    for dx in 0..window {
                        let iy = oy * window + dy;
                        let ix = ox * window + dx;
                        let idx = (ch * h + iy) * w + ix;
                        if in_d[idx] > best {
                            best = in_d[idx];
                            best_idx = idx;
                        }
                    }
                }
                let oidx = (ch * oh + oy) * ow + ox;
                out_d[oidx] = best;
                argmax[oidx] = best_idx;
            }
        }
    }
    Ok(())
}

/// Max-pooling gradient into a caller-provided tensor (zero-allocation variant of
/// [`max_pool2d_backward`], bit-identical). `grad_in` is fully overwritten.
///
/// # Panics
///
/// Panics if `grad_output` and `argmax` disagree in length (an internal wiring error).
pub fn max_pool2d_backward_into(grad_output: &Tensor, argmax: &[usize], grad_in: &mut Tensor) {
    assert_eq!(grad_output.len(), argmax.len(), "argmax record does not match gradient size");
    let gi = grad_in.data_mut();
    gi.fill(0.0);
    for (g, &idx) in grad_output.data().iter().zip(argmax) {
        gi[idx] += g;
    }
}

/// Routes the upstream gradient back through a max-pooling layer using the recorded argmax.
///
/// # Panics
///
/// Panics if `grad_output` and `argmax` disagree in length (an internal wiring error).
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_shape: &[usize],
) -> Tensor {
    assert_eq!(grad_output.len(), argmax.len(), "argmax record does not match gradient size");
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    for (g, &idx) in grad_output.data().iter().zip(argmax) {
        gi[idx] += g;
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_picks_window_maxima() {
        let input = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        )
        .unwrap();
        let pooled = max_pool2d(&input, 2).unwrap();
        assert_eq!(pooled.output.shape(), &[1, 2, 2]);
        assert_eq!(pooled.output.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn pooling_backward_routes_gradient_to_maxima_only() {
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]).unwrap();
        let pooled = max_pool2d(&input, 2).unwrap();
        let grad_out = Tensor::filled(&[1, 1, 1], 5.0);
        let grad_in = max_pool2d_backward(&grad_out, &pooled.argmax, input.shape());
        assert_eq!(grad_in.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn pooling_rejects_indivisible_inputs() {
        let input = Tensor::zeros(&[1, 5, 4]);
        assert!(max_pool2d(&input, 2).is_err());
        let input = Tensor::zeros(&[1, 4]);
        assert!(max_pool2d(&input, 2).is_err());
    }

    #[test]
    fn multi_channel_pooling_is_independent_per_channel() {
        let input =
            Tensor::from_vec(vec![2, 2, 2], vec![1., 2., 3., 4., 40., 30., 20., 10.]).unwrap();
        let pooled = max_pool2d(&input, 2).unwrap();
        assert_eq!(pooled.output.data(), &[4.0, 40.0]);
    }
}
