//! A small dense tensor type sufficient for BNN training.
//!
//! The tensor is row-major over an arbitrary number of dimensions and stores `f32` elements,
//! matching the single-precision reference arithmetic of the paper's PyTorch baseline. The
//! quantized (16-bit / 8-bit) training paths are emulated by rounding values through the fixed
//! point formats in [`crate::quant`] rather than by a separate storage type.

use std::fmt;

/// Errors from tensor shape manipulation and binary operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// A reshape was requested to a shape with a different element count.
    InvalidReshape {
        /// Number of elements in the tensor.
        len: usize,
        /// The requested shape.
        shape: Vec<usize>,
    },
    /// A matrix operation was requested on tensors that are not 2-D or whose inner dimensions
    /// do not agree.
    InvalidMatmul {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "tensor shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::InvalidReshape { len, shape } => {
                write!(f, "cannot reshape {len} elements into {shape:?}")
            }
            TensorError::InvalidMatmul { left, right } => {
                write!(f, "invalid matmul operands: {left:?} x {right:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major, `f32` tensor.
///
/// # Examples
///
/// ```
/// use bnn_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::filled(&[2, 2], 1.0);
/// let sum = a.add(&b)?;
/// assert_eq!(sum.data(), &[2.0, 3.0, 4.0, 5.0]);
/// # Ok::<(), bnn_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![value; len] }
    }

    /// Creates a tensor from a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if `data.len()` does not equal the product of
    /// `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::InvalidReshape { len: data.len(), shape });
        }
        Ok(Self { shape, data })
    }

    /// Assembles a tensor from an already-validated shape vector and data buffer — the
    /// recycling constructor used by [`crate::scratch::Scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape` (an internal wiring error;
    /// use [`Tensor::from_vec`] for fallible construction from untrusted sizes).
    pub fn from_parts(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "from_parts requires data matching the shape"
        );
        Self { shape, data }
    }

    /// Disassembles the tensor into its shape vector and data buffer (the inverse of
    /// [`Tensor::from_parts`], used to recycle both through a scratch arena).
    pub fn into_parts(self) -> (Vec<usize>, Vec<f32>) {
        (self.shape, self.data)
    }

    /// Appends the raw element bits to `out`, each element as a little-endian `f32` word in
    /// row-major order — the lossless export the checkpoint store serializes parameters
    /// through (`to_bits` round-trips every value, NaN payloads and `−0.0` included).
    pub fn extend_le_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Rebuilds a tensor from a shape and the little-endian `f32` bytes produced by
    /// [`Tensor::extend_le_bytes`] — bit-exact (`from_le_bytes(shape, bytes)` reproduces the
    /// exported tensor down to every bit pattern).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if `bytes.len()` is not exactly four times the
    /// product of `shape`.
    pub fn from_le_bytes(shape: Vec<usize>, bytes: &[u8]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if bytes.len() != expected * 4 {
            return Err(TensorError::InvalidReshape { len: bytes.len() / 4, shape });
        }
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect();
        Ok(Self { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Flat index of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of range for dim {i} of extent {dim}");
            flat = flat * dim + ix;
        }
        flat
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.len() {
            return Err(TensorError::InvalidReshape { len: self.len(), shape: shape.to_vec() });
        }
        Ok(Self { shape: shape.to_vec(), data: self.data.clone() })
    }

    /// Changes the tensor's shape in place without touching the data, reusing the shape
    /// vector's capacity (the zero-allocation counterpart of [`Tensor::reshape`] for owned
    /// tensors — what the flatten layer uses).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<(), TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.len() {
            return Err(TensorError::InvalidReshape { len: self.len(), shape: shape.to_vec() });
        }
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        Ok(())
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Self { shape: self.shape.clone(), data })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, the `ε ∘ σ` operation of weight sampling.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Self {
        self.map(|x| x * factor)
    }

    /// Adds `other * factor` into `self` in place (the SGD update primitive).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, factor: f32, other: &Self) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (ties resolve to the first occurrence).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// 2-D matrix multiplication: `self` is `[m, k]`, `other` is `[k, n]`, result is `[m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidMatmul`] if either operand is not 2-D or the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Result<Self, TensorError> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[1] != other.shape[0] {
            return Err(TensorError::InvalidMatmul {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = vec![0.0f32; m * n];
        crate::kernels::gemm_accumulate(&mut out, &self.data, &other.data, m, k, n);
        Ok(Self { shape: vec![m, n], data: out })
    }

    /// Transposed-left matrix multiplication `selfᵀ · other`: `self` is `[k, m]`, `other` is
    /// `[k, n]`, result is `[m, n]` — bit-identical to `self.transpose2().matmul(other)` but
    /// without materializing the transposed copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidMatmul`] if either operand is not 2-D or the shared
    /// dimension disagrees.
    pub fn matmul_at(&self, other: &Self) -> Result<Self, TensorError> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[0] != other.shape[0] {
            return Err(TensorError::InvalidMatmul {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let (k, m) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = vec![0.0f32; m * n];
        crate::kernels::gemm_at_accumulate(&mut out, &self.data, &other.data, m, k, n);
        Ok(Self { shape: vec![m, n], data: out })
    }

    /// Transposed-right matrix multiplication `self · otherᵀ`: `self` is `[m, k]`, `other` is
    /// `[n, k]`, result is `[m, n]` — bit-identical to `self.matmul(&other.transpose2())` but
    /// without materializing the transposed copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidMatmul`] if either operand is not 2-D or the shared
    /// dimension disagrees.
    pub fn matmul_bt(&self, other: &Self) -> Result<Self, TensorError> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[1] != other.shape[1] {
            return Err(TensorError::InvalidMatmul {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[0];
        let mut out = vec![0.0f32; m * n];
        crate::kernels::gemm_bt_accumulate(&mut out, &self.data, &other.data, m, k, n);
        Ok(Self { shape: vec![m, n], data: out })
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2(&self) -> Self {
        assert_eq!(self.shape.len(), 2, "transpose2 requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = self.data[i * n + j];
            }
        }
        Self { shape: vec![n, m], data }
    }

    /// Squared L2 norm of all elements.
    pub fn squared_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.flat_index(&[1, 1]), 4);
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0]).is_err());
    }

    #[test]
    fn le_bytes_round_trip_is_bit_exact() {
        // Include the values a lossy text round-trip would mangle: −0.0, subnormals, NaN.
        let t = Tensor::from_vec(
            vec![2, 3],
            vec![-0.0, f32::NAN, 1.0e-40, f32::MIN_POSITIVE, 0.1, -3.5],
        )
        .unwrap();
        let mut bytes = Vec::new();
        t.extend_le_bytes(&mut bytes);
        assert_eq!(bytes.len(), 6 * 4);
        let back = Tensor::from_le_bytes(vec![2, 3], &bytes).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn from_le_bytes_rejects_mismatched_lengths() {
        assert!(Tensor::from_le_bytes(vec![2], &[0u8; 4]).is_err());
        assert!(Tensor::from_le_bytes(vec![1], &[0u8; 5]).is_err());
        assert!(Tensor::from_le_bytes(vec![0], &[]).is_ok());
    }

    #[test]
    fn set_and_at_round_trip() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[2, 1], 7.5);
        assert_eq!(t.at(&[2, 1]), 7.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn at_panics_out_of_range() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn reshape_preserves_data_and_validates_len() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![4., 3., 2., 1.]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5., 5., 5., 5.]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-3., -1., 1., 3.]);
        assert_eq!(a.hadamard(&b).unwrap().data(), &[4., 6., 6., 4.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6., 8.]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates_scaled_gradient() {
        let mut w = Tensor::filled(&[2], 1.0);
        let g = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        w.axpy(-0.1, &g).unwrap();
        assert!((w.data()[0] - 0.95).abs() < 1e-6);
        assert!((w.data()[1] - 1.05).abs() < 1e-6);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![1., 2., 3., 10.]).unwrap();
        assert_eq!(t.sum(), 16.0);
        assert_eq!(t.mean(), 4.0);
        assert_eq!(t.argmax(), 3);
        assert_eq!(t.squared_norm(), 1.0 + 4.0 + 9.0 + 100.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matmul_transposed_variants_match_materialized_transposes_bitwise() {
        let a =
            Tensor::from_vec(vec![3, 2], (0..6).map(|i| (i as f32 * 0.7).sin()).collect()).unwrap();
        let b = Tensor::from_vec(vec![3, 4], (0..12).map(|i| (i as f32 * 0.3).cos()).collect())
            .unwrap();
        let at = a.matmul_at(&b).unwrap();
        let expect = a.transpose2().matmul(&b).unwrap();
        assert_eq!(at.shape(), &[2, 4]);
        for (x, y) in at.data().iter().zip(expect.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let c = Tensor::from_vec(vec![5, 4], (0..20).map(|i| (i as f32 * 0.11).sin()).collect())
            .unwrap();
        let bt = b.matmul_bt(&c).unwrap();
        let expect = b.matmul(&c.transpose2()).unwrap();
        assert_eq!(bt.shape(), &[3, 5]);
        for (x, y) in bt.data().iter().zip(expect.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(a.matmul_at(&c).is_err());
        assert!(a.matmul_bt(&b).is_err());
    }

    #[test]
    fn from_parts_and_into_parts_round_trip() {
        let t = Tensor::from_parts(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.shape(), &[2, 2]);
        let (shape, data) = t.into_parts();
        assert_eq!(shape, vec![2, 2]);
        assert_eq!(data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "from_parts")]
    fn from_parts_rejects_mismatched_sizes() {
        Tensor::from_parts(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn reshape_in_place_keeps_data_and_validates() {
        let mut t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        t.reshape_in_place(&[6]).unwrap();
        assert_eq!(t.shape(), &[6]);
        assert_eq!(t.data(), &[1., 2., 3., 4., 5., 6.]);
        assert!(t.reshape_in_place(&[4]).is_err());
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = a.transpose2().transpose2();
        assert_eq!(tt, a);
        assert_eq!(a.transpose2().at(&[2, 1]), 6.0);
    }

    #[test]
    fn display_mentions_shape() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(format!("{t}").contains("[2, 2]"));
    }
}
