//! A zero-allocation scratch arena for the numeric hot path.
//!
//! Steady-state BNN training and serving iterate the same computation over and over: every
//! iteration needs the same sequence of temporary buffers (ε blocks, sampled weight tensors,
//! im2col panels, activation outputs, gradients). Allocating them afresh each time puts the
//! allocator on the critical path; a [`Scratch`] arena instead *recycles* them — buffers are
//! taken for the duration of one use and given back, so after a warmup iteration has grown the
//! pools, no further heap allocation happens (asserted by the allocation-counting test in
//! `crates/bench`).
//!
//! Ownership rules (documented in DESIGN.md §5):
//!
//! * every worker owns exactly one `Scratch` — arenas are never shared across threads
//!   (`Scratch` is `Send` but deliberately not synchronized);
//! * a buffer taken from the arena is either *given back* (`put_*`) or allowed to escape as an
//!   owned result; escaping is what callers do with tensors they return to their caller, and
//!   the arena does not track it — escaped buffers simply stop participating in recycling;
//! * `take_*` zero-fills, so a fresh buffer is indistinguishable from `Tensor::zeros` /
//!   `vec![0; n]`, keeping the arithmetic of recycled and freshly allocated paths bit-identical.
//!
//! Buffer reuse is *best-fit by capacity*: each pool is kept sorted by capacity and `take`
//! picks the smallest buffer that already fits the request, so a steady state with mixed
//! buffer sizes converges after one iteration instead of thrashing between reallocations.

use crate::kernels::KernelConfig;
use crate::tensor::Tensor;

/// A per-worker arena of recyclable `f32` / `usize` buffers and [`Tensor`]s.
///
/// Since PR 8 the arena also carries the worker's [`KernelConfig`]: every kernel driver and
/// layer already threads a `&mut Scratch`, so riding the tier selection on it reaches every
/// GEMM call site without widening a single signature. One worker = one `Scratch` = one
/// kernel configuration.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Recyclable `f32` buffers, sorted ascending by capacity.
    f32_pool: Vec<Vec<f32>>,
    /// Recyclable `usize` buffers (pooling argmax records, cached shapes), sorted by capacity.
    usize_pool: Vec<Vec<usize>>,
    /// The kernel tier / worker budget every driver fed from this arena dispatches on.
    kernel: KernelConfig,
}

/// Minimum capacity of `usize` buffers: shape vectors get reshaped between ranks in place
/// (flatten: `[C, H, W]` ↔ `[C·H·W]`), and a capacity floor above any realistic rank keeps
/// those transitions from ever growing a recycled buffer.
const MIN_USIZE_CAPACITY: usize = 8;

fn take_from<T: Copy + Default>(pool: &mut Vec<Vec<T>>, len: usize, min_capacity: usize) -> Vec<T> {
    // Best fit: the smallest pooled buffer whose capacity already covers the request.
    let idx = pool.partition_point(|b| b.capacity() < len);
    let mut buf =
        if idx < pool.len() { pool.remove(idx) } else { Vec::with_capacity(len.max(min_capacity)) };
    buf.clear();
    buf.resize(len, T::default());
    buf
}

fn put_into<T>(pool: &mut Vec<Vec<T>>, buf: Vec<T>) {
    let idx = pool.partition_point(|b| b.capacity() < buf.capacity());
    pool.insert(idx, buf);
}

impl Scratch {
    /// Creates an empty arena; pools grow on demand during the warmup iteration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-filled `f32` buffer of exactly `len` elements.
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        crate::profile::scratch_take(len as u64);
        take_from(&mut self.f32_pool, len, len)
    }

    /// Returns an `f32` buffer to the pool for reuse.
    pub fn put_f32(&mut self, buf: Vec<f32>) {
        crate::profile::scratch_put(buf.len() as u64);
        put_into(&mut self.f32_pool, buf);
    }

    /// Takes a zero-filled `usize` buffer of exactly `len` elements (capacity floored at a
    /// small minimum so in-place rank changes of shape vectors never reallocate).
    pub fn take_usize(&mut self, len: usize) -> Vec<usize> {
        take_from(&mut self.usize_pool, len, MIN_USIZE_CAPACITY)
    }

    /// Returns a `usize` buffer to the pool for reuse.
    pub fn put_usize(&mut self, buf: Vec<usize>) {
        put_into(&mut self.usize_pool, buf);
    }

    /// Takes a zero-filled tensor of the given shape (the recycled analogue of
    /// [`Tensor::zeros`]); the shape vector is recycled too.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let mut shape_buf = self.take_usize(shape.len());
        shape_buf.copy_from_slice(shape);
        let len = shape.iter().product();
        let data = self.take_f32(len);
        Tensor::from_parts(shape_buf, data)
    }

    /// Takes a tensor holding a copy of `source` (shape and data).
    pub fn take_tensor_copy(&mut self, source: &Tensor) -> Tensor {
        let mut t = self.take_tensor(source.shape());
        t.data_mut().copy_from_slice(source.data());
        t
    }

    /// Returns a tensor's buffers to the pools for reuse.
    pub fn put_tensor(&mut self, tensor: Tensor) {
        let (shape, data) = tensor.into_parts();
        self.put_usize(shape);
        self.put_f32(data);
    }

    /// Number of buffers currently pooled (for tests and diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.f32_pool.len() + self.usize_pool.len()
    }

    /// The kernel configuration drivers fed from this arena dispatch on.
    pub fn kernel(&self) -> KernelConfig {
        self.kernel
    }

    /// Replaces the arena's kernel configuration (engine builders call this once per worker;
    /// the default is the process-wide tier with an inline worker budget).
    pub fn set_kernel(&mut self, kernel: KernelConfig) {
        self.kernel = kernel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_and_sized() {
        let mut s = Scratch::new();
        let mut a = s.take_f32(8);
        a.iter_mut().for_each(|x| *x = 1.0);
        s.put_f32(a);
        let b = s.take_f32(4);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|&x| x == 0.0), "recycled buffers must come back zeroed");
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut s = Scratch::new();
        let small = s.take_f32(4);
        let large = s.take_f32(1024);
        let small_cap = small.capacity();
        s.put_f32(small);
        s.put_f32(large);
        // A request for 3 must reuse the small buffer, leaving the large one for large asks.
        let got = s.take_f32(3);
        assert_eq!(got.capacity(), small_cap);
        let big = s.take_f32(1000);
        assert!(big.capacity() >= 1024);
    }

    #[test]
    fn steady_state_reuses_without_growth() {
        let mut s = Scratch::new();
        // Warmup: grow the pool for a mixed-size workload.
        let sizes = [16usize, 256, 9, 256, 64];
        let bufs: Vec<_> = sizes.iter().map(|&n| s.take_f32(n)).collect();
        for b in bufs {
            s.put_f32(b);
        }
        let pooled = s.pooled_buffers();
        // Steady state: the same workload is served entirely from the pool.
        for _ in 0..3 {
            let bufs: Vec<_> = sizes.iter().map(|&n| s.take_f32(n)).collect();
            for (b, &n) in bufs.iter().zip(&sizes) {
                assert_eq!(b.len(), n);
            }
            for b in bufs {
                s.put_f32(b);
            }
            assert_eq!(s.pooled_buffers(), pooled, "pool must not grow in steady state");
        }
    }

    #[test]
    fn tensors_round_trip_through_the_arena() {
        let mut s = Scratch::new();
        let mut t = s.take_tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data(), &[0.0; 6]);
        t.data_mut()[0] = 5.0;
        s.put_tensor(t);
        let u = s.take_tensor(&[3, 2]);
        assert_eq!(u.shape(), &[3, 2]);
        assert!(u.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_tensor_copy_matches_source() {
        let mut s = Scratch::new();
        let src = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let copy = s.take_tensor_copy(&src);
        assert_eq!(copy, src);
    }
}
