//! The numeric hot-path kernels: cache-blocked GEMM and im2col convolution drivers.
//!
//! Everything in this module is **bit-exact by construction** against the straightforward
//! loops it replaces (retained in [`crate::conv::reference`] and pinned by
//! `tests/kernel_equivalence.rs`). The invariant that makes this possible: every output scalar
//! accumulates *exactly one* running sum whose terms are added in the same order as the
//! reference loops —
//!
//! * convolution forward: bias first, then products ordered by `(ic, ky, kx)`;
//! * weight gradient: products ordered by output pixel `(oy, ox)`;
//! * input gradient: products ordered by `(om, oy, ox)` (realized as a unit-stride
//!   convolution of the dilated, zero-embedded output gradient with 180°-rotated kernels,
//!   whose k-dimension `(om, ky′, kx′)` enumerates the same terms in the same order);
//! * GEMM: plain `k`-ascending accumulation per scalar, never split into partial sums.
//!
//! Where the reference loops *skip* terms (out-of-bounds taps, explicit `g == 0` shortcuts),
//! the packed kernels add the corresponding `±0.0` products instead. Under IEEE-754
//! round-to-nearest this cannot change any running sum: `x + (±0.0) == x` for every `x`
//! except `x == -0.0` with a `+0.0` addend, and a running sum seeded from `+0.0` (or from a
//! bias that is never `-0.0`) can never reach `-0.0` — exact cancellation rounds to `+0.0`.
//! The proptests assert `to_bits()` equality, not approximate closeness.
//!
//! All drivers take a [`Scratch`] arena and perform **zero heap allocations** once the arena
//! has warmed up.
//!
//! # Kernel tiers
//!
//! Since PR 8 the GEMM entry point is tiered behind [`KernelTier`]:
//!
//! * [`KernelTier::Reference`] — the naive triple loop, retained as the bit-exactness oracle;
//! * [`KernelTier::Blocked`] — PR 4's cache-blocked scalar kernel (the former default);
//! * [`KernelTier::Simd`] — a register-tile microkernel built from fixed-size `f32` lane
//!   arrays (`MR×NR` accumulators initialized *from C*, stored back once after the k-loop) so
//!   LLVM autovectorizes the inner loops reliably. Because every output scalar still owns
//!   exactly one running sum whose k-terms are added in ascending order, `Simd` is
//!   `to_bits()`-identical to `Reference` — the tile only removes the per-k C memory traffic
//!   the blocked kernel pays. This is the default tier.
//! * [`KernelTier::FastMath`] — an explicitly-labeled tier that splits the k-accumulation
//!   into even/odd partial sums (combined once at the end). Reordering the additions breaks
//!   bit-exactness, so this tier is **never** a default anywhere and is pinned by ULP/forward
//!   -error-bounded tests instead (see `tests/kernel_tiers.rs` for the documented bound).
//!
//! [`gemm_accumulate_tiered`] additionally splits the M dimension of large products across
//! the [`bnn_pool`] work-stealing workers when [`KernelConfig::gemm_workers`] > 1. The
//! partition is deterministic *and* irrelevant to the numbers: every output row is computed
//! by the same serial kernel with the same per-scalar addition order no matter which chunk it
//! lands in, so 1-vs-N-thread results are byte-identical (the property `tests/kernel_tiers.rs`
//! pins). The parallel path is opt-in precisely because it spawns scoped threads and
//! allocates queue state — the zero-allocation steady-state contract holds for the default
//! `gemm_workers == 1`, which runs inline on the calling thread.
//!
//! The active [`KernelConfig`] travels inside [`Scratch`] — every kernel driver and layer
//! already threads a scratch arena, so the tier selection needs no signature changes. The
//! process-wide default tier can be forced with the `SHIFT_BNN_KERNEL_TIER` environment
//! variable (`reference`, `blocked`, `simd`, `fastmath`), which is how CI's per-tier matrix
//! legs keep every tier building and passing.

use crate::conv::{expect_shape, ConvGeometry};
use crate::scratch::Scratch;
use crate::tensor::{Tensor, TensorError};
use std::sync::{Mutex, OnceLock};

/// Selects which GEMM implementation the kernel drivers run. See the module docs for the
/// contract of each tier; every tier except `FastMath` is `to_bits()`-identical to
/// `Reference`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Naive triple loop — the bit-exactness oracle.
    Reference,
    /// PR 4's cache-blocked scalar kernel.
    Blocked,
    /// Register-tile microkernel (bit-exact, autovectorized). The default.
    Simd,
    /// Even/odd k-split partial sums — fast but only ULP-close, never a default.
    FastMath,
}

impl KernelTier {
    /// Every tier, in oracle-first order (handy for equivalence sweeps).
    pub const ALL: [KernelTier; 4] =
        [KernelTier::Reference, KernelTier::Blocked, KernelTier::Simd, KernelTier::FastMath];

    /// The tiers that are bit-identical to [`KernelTier::Reference`].
    pub const BIT_EXACT: [KernelTier; 3] =
        [KernelTier::Reference, KernelTier::Blocked, KernelTier::Simd];

    /// Stable lowercase label (also the `SHIFT_BNN_KERNEL_TIER` spelling).
    pub fn label(self) -> &'static str {
        match self {
            KernelTier::Reference => "reference",
            KernelTier::Blocked => "blocked",
            KernelTier::Simd => "simd",
            KernelTier::FastMath => "fastmath",
        }
    }

    /// Parses a [`KernelTier::label`] back into a tier.
    pub fn parse(label: &str) -> Option<KernelTier> {
        KernelTier::ALL.into_iter().find(|t| t.label() == label)
    }

    /// Resolves a `SHIFT_BNN_KERNEL_TIER` setting to a tier.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value, naming every valid spelling — a typo'd CI matrix
    /// leg must fail loudly rather than silently re-test the default tier.
    pub fn from_env_value(value: &str) -> KernelTier {
        KernelTier::parse(value).unwrap_or_else(|| {
            let valid: Vec<&str> = KernelTier::ALL.iter().map(|t| t.label()).collect();
            panic!("unknown SHIFT_BNN_KERNEL_TIER {value:?}; valid tiers are: {}", valid.join(", "))
        })
    }
}

impl Default for KernelTier {
    /// The process-wide default: [`KernelTier::Simd`], unless the `SHIFT_BNN_KERNEL_TIER`
    /// environment variable forces another tier (read once; CI's matrix legs use this).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `SHIFT_BNN_KERNEL_TIER` value (see
    /// [`KernelTier::from_env_value`]) — a typo'd CI leg must fail loudly rather than
    /// silently re-test the default tier.
    fn default() -> Self {
        static FORCED: OnceLock<KernelTier> = OnceLock::new();
        *FORCED.get_or_init(|| match std::env::var("SHIFT_BNN_KERNEL_TIER") {
            Ok(v) => KernelTier::from_env_value(&v),
            Err(_) => KernelTier::Simd,
        })
    }
}

/// The kernel selection every driver reads from [`Scratch`]: which GEMM tier to run and how
/// many pool workers an M-split may use (`1` = inline, the zero-allocation default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// The GEMM implementation tier.
    pub tier: KernelTier,
    /// Worker budget for the M-dimension parallel split; `1` runs inline on the calling
    /// thread and is the only setting covered by the zero-allocation contract.
    pub gemm_workers: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self { tier: KernelTier::default(), gemm_workers: 1 }
    }
}

impl KernelConfig {
    /// A config pinned to one tier with the default inline worker budget.
    pub fn with_tier(tier: KernelTier) -> Self {
        Self { tier, gemm_workers: 1 }
    }
}

/// Column-block width of the blocked GEMM: 256 × 4 bytes = one 1 KiB stripe of `B` per row,
/// so an entire `k × NB` panel of `B` stays cache-resident while the `A` rows stream over it.
const NB: usize = 256;

/// C\[m,n\] += A\[m,k\] · B\[k,n\], row-major, accumulating into whatever `c` already holds
/// (zeros or a bias pre-fill). Per output scalar the `k` terms are added in ascending order
/// into a single accumulator, which is what keeps the result bit-identical to a naive
/// `for k { acc += a*b }` loop; blocking only reorders *which scalars* are worked on, never
/// the order of additions within one scalar.
///
/// # Panics
///
/// Debug-asserts that the slices match the given dimensions.
pub fn gemm_accumulate(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut j0 = 0;
    while j0 < n {
        let nb = NB.min(n - j0);
        // 4-row register tile: four A scalars per loaded B stripe quadruple the arithmetic
        // intensity of the inner loop without touching any scalar's addition order.
        let mut i = 0;
        while i + 4 <= m {
            let (a0, a1, a2, a3) = (
                &a[i * k..(i + 1) * k],
                &a[(i + 1) * k..(i + 2) * k],
                &a[(i + 2) * k..(i + 3) * k],
                &a[(i + 3) * k..(i + 4) * k],
            );
            let (row0, rest) = c[i * n..(i + 4) * n].split_at_mut(n);
            let (row1, rest) = rest.split_at_mut(n);
            let (row2, row3) = rest.split_at_mut(n);
            let t0 = &mut row0[j0..j0 + nb];
            let t1 = &mut row1[j0..j0 + nb];
            let t2 = &mut row2[j0..j0 + nb];
            let t3 = &mut row3[j0..j0 + nb];
            for p in 0..k {
                let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
                let brow = &b[p * n + j0..p * n + j0 + nb];
                for (j, &bv) in brow.iter().enumerate() {
                    t0[j] += v0 * bv;
                    t1[j] += v1 * bv;
                    t2[j] += v2 * bv;
                    t3[j] += v3 * bv;
                }
            }
            i += 4;
        }
        while i < m {
            let arow = &a[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                let brow = &b[p * n + j0..p * n + j0 + nb];
                let crow = &mut c[i * n + j0..i * n + j0 + nb];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
            i += 1;
        }
        j0 += nb;
    }
}

/// Row count of the SIMD microkernel's register tile.
const MR: usize = 4;
/// Column count of the SIMD microkernel's register tile: 16 f32 lanes = two 256-bit vectors
/// per row, so an `MR×NR` tile is 8 vector registers of accumulators — small enough to stay
/// register-resident, wide enough to hide the per-scalar addition-chain latency with ILP
/// across scalars.
const NR: usize = 16;

/// C\[m,n\] += A·B as one naive triple loop — the bit-exactness oracle every other tier is
/// measured against. Per output scalar: one accumulator seeded from `c`, k-ascending terms.
pub fn gemm_reference(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// One `ROWS × NR` register tile of the SIMD kernel: accumulators are **loaded from C**, the
/// k-loop adds terms in ascending order, and the tile is stored back once — so every scalar's
/// addition order is exactly the reference order, while C traffic drops from `2·k` accesses
/// per scalar (the blocked kernel's `t[j] +=` form) to one load and one store. The fixed-size
/// `[f32; NR]` rows are what lets LLVM keep the tile in vector registers.
#[inline(always)]
fn simd_tile<const ROWS: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    i0: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; ROWS];
    for (r, row) in acc.iter_mut().enumerate() {
        let src: &[f32; NR] = c[(i0 + r) * n + j0..][..NR].try_into().unwrap();
        *row = *src;
    }
    for p in 0..k {
        let brow: &[f32; NR] = b[p * n + j0..][..NR].try_into().unwrap();
        for (r, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + p];
            for (lane, &bv) in row.iter_mut().zip(brow) {
                *lane += av * bv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[(i0 + r) * n + j0..][..NR].copy_from_slice(row);
    }
}

/// Scalar fallback for a column strip narrower than [`NR`]; per-scalar order is still the
/// reference k-ascending order, so the strip is bit-identical no matter which tier ran the
/// full-width tiles next to it.
fn gemm_scalar_strip(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize, j0: usize) {
    let nb = n - j0;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n + j0..i * n + j0 + nb];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n + j0..p * n + j0 + nb];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Tile sweep shared by both [`gemm_simd`] entry paths. `#[inline(always)]` so that the
/// AVX2 wrapper recompiles the whole sweep — tiles included — under its wider target
/// features instead of calling back into baseline code.
#[inline(always)]
fn gemm_simd_body(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let mut j0 = 0;
    while j0 + NR <= n {
        let mut i = 0;
        while i + MR <= m {
            simd_tile::<MR>(c, a, b, k, n, i, j0);
            i += MR;
        }
        while i < m {
            simd_tile::<1>(c, a, b, k, n, i, j0);
            i += 1;
        }
        j0 += NR;
    }
    if j0 < n {
        gemm_scalar_strip(c, a, b, m, k, n, j0);
    }
}

/// [`gemm_simd_body`] recompiled with AVX2 enabled: an `NR = 16` tile row is two 256-bit
/// vectors instead of four 128-bit ones, halving the accumulator register pressure. Lane-wise
/// IEEE multiplies and adds round exactly like their scalar counterparts, so this path is
/// every bit as exact as the portable one — width changes *which registers* hold a scalar's
/// running sum, never the order of its additions. (No FMA: contraction would change
/// rounding, and this tier promises bit-exactness.)
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_simd_avx2(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    gemm_simd_body(c, a, b, m, k, n);
}

/// Returns whether the running CPU has AVX2 (detected once, cached).
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Returns whether the running CPU has AVX2 + FMA (detected once, cached).
#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    static FMA: OnceLock<bool> = OnceLock::new();
    *FMA.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// The [`KernelTier::Simd`] GEMM: full-width columns go through the register tile
/// (`simd_tile`), remainder rows through the same tile at `ROWS = 1`, remainder columns
/// through the scalar strip. All paths add every scalar's k-terms in ascending order into
/// one accumulator, so the result is `to_bits()`-identical to [`gemm_reference`] — on the
/// AVX2 fast path exactly as on the portable one (see `gemm_simd_avx2`).
pub fn gemm_simd(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: guarded by runtime AVX2 detection.
        return unsafe { gemm_simd_avx2(c, a, b, m, k, n) };
    }
    gemm_simd_body(c, a, b, m, k, n);
}

/// One `ROWS × NR` tile of the FastMath kernel: the k-loop is split into even/odd partial
/// sums (`acc0` seeded from C, `acc1` from zero) that are combined once at the end. The
/// two independent addition chains double the throughput ceiling per scalar but **reorder
/// the sum** — this tile is deliberately not bit-exact.
#[inline(always)]
fn fastmath_tile<const ROWS: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    i0: usize,
    j0: usize,
) {
    let mut acc0 = [[0.0f32; NR]; ROWS];
    let mut acc1 = [[0.0f32; NR]; ROWS];
    for (r, row) in acc0.iter_mut().enumerate() {
        let src: &[f32; NR] = c[(i0 + r) * n + j0..][..NR].try_into().unwrap();
        *row = *src;
    }
    let mut p = 0;
    while p + 2 <= k {
        let brow0: &[f32; NR] = b[p * n + j0..][..NR].try_into().unwrap();
        let brow1: &[f32; NR] = b[(p + 1) * n + j0..][..NR].try_into().unwrap();
        for r in 0..ROWS {
            let av0 = a[(i0 + r) * k + p];
            let av1 = a[(i0 + r) * k + p + 1];
            for j in 0..NR {
                acc0[r][j] += av0 * brow0[j];
                acc1[r][j] += av1 * brow1[j];
            }
        }
        p += 2;
    }
    if p < k {
        let brow: &[f32; NR] = b[p * n + j0..][..NR].try_into().unwrap();
        for (r, row) in acc0.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + p];
            for (lane, &bv) in row.iter_mut().zip(brow) {
                *lane += av * bv;
            }
        }
    }
    for r in 0..ROWS {
        for j in 0..NR {
            c[(i0 + r) * n + j0 + j] = acc0[r][j] + acc1[r][j];
        }
    }
}

/// One `ROWS × NR` tile of the FastMath FMA path: like [`simd_tile`] but each term lands via
/// `f32::mul_add`, i.e. a single-rounded hardware FMA. One fewer rounding per term changes
/// the bits (that is why this lives in the FastMath tier), and doubles the arithmetic
/// throughput per instruction on FMA hardware.
#[inline(always)]
#[cfg(target_arch = "x86_64")]
fn fastmath_fma_tile<const ROWS: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    i0: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; ROWS];
    for (r, row) in acc.iter_mut().enumerate() {
        let src: &[f32; NR] = c[(i0 + r) * n + j0..][..NR].try_into().unwrap();
        *row = *src;
    }
    for p in 0..k {
        let brow: &[f32; NR] = b[p * n + j0..][..NR].try_into().unwrap();
        for (r, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + p];
            for (lane, &bv) in row.iter_mut().zip(brow) {
                *lane = av.mul_add(bv, *lane);
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[(i0 + r) * n + j0..][..NR].copy_from_slice(row);
    }
}

/// The FastMath sweep over FMA tiles, compiled with AVX2+FMA enabled so `mul_add` lowers to
/// `vfmadd` instead of a libm call.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_fastmath_fma(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let mut j0 = 0;
    while j0 + NR <= n {
        let mut i = 0;
        while i + MR <= m {
            fastmath_fma_tile::<MR>(c, a, b, k, n, i, j0);
            i += MR;
        }
        while i < m {
            fastmath_fma_tile::<1>(c, a, b, k, n, i, j0);
            i += 1;
        }
        j0 += NR;
    }
    if j0 < n {
        gemm_scalar_strip(c, a, b, m, k, n, j0);
    }
}

/// The portable FastMath sweep: even/odd k-split tiles ([`fastmath_tile`]).
#[inline(always)]
fn gemm_fastmath_body(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let mut j0 = 0;
    while j0 + NR <= n {
        let mut i = 0;
        while i + MR <= m {
            fastmath_tile::<MR>(c, a, b, k, n, i, j0);
            i += MR;
        }
        while i < m {
            fastmath_tile::<1>(c, a, b, k, n, i, j0);
            i += 1;
        }
        j0 += NR;
    }
    if j0 < n {
        gemm_scalar_strip(c, a, b, m, k, n, j0);
    }
}

/// The [`KernelTier::FastMath`] GEMM. **Not bit-exact**: on FMA hardware every term is
/// contracted into a single-rounded `mul_add`, and the portable fallback reassociates each
/// scalar's sum into even/odd partial chains (see `fastmath_tile`). Either way the result
/// only promises closeness to [`gemm_reference`] within the standard forward-error bound
/// `2·γ_{k+1}·(|c₀| + Σ|aᵢbᵢ|)` (`γ_k = k·ε/(1−k·ε)`, ε = f32 machine epsilon) asserted by
/// `tests/kernel_tiers.rs`. Remainder rows reuse the tiles at `ROWS = 1` and narrow column
/// strips fall back to the (exact) scalar strip, so the 1-vs-N-thread M-split identity still
/// holds for this tier on any given machine.
pub fn gemm_fastmath(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: guarded by runtime AVX2+FMA detection.
        return unsafe { gemm_fastmath_fma(c, a, b, m, k, n) };
    }
    gemm_fastmath_body(c, a, b, m, k, n);
}

/// Serial tier dispatch — the function every M-split chunk runs.
fn gemm_serial(
    tier: KernelTier,
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    match tier {
        KernelTier::Reference => gemm_reference(c, a, b, m, k, n),
        KernelTier::Blocked => gemm_accumulate(c, a, b, m, k, n),
        KernelTier::Simd => gemm_simd(c, a, b, m, k, n),
        KernelTier::FastMath => gemm_fastmath(c, a, b, m, k, n),
    }
}

/// Below this many multiply-accumulates an M-split costs more in thread traffic than it
/// saves; such products always run inline regardless of the worker budget.
const PARALLEL_MIN_MACS: usize = 64 * 1024;

/// The tiered GEMM entry point: dispatches `C += A·B` to the configured [`KernelTier`] and,
/// when `cfg.gemm_workers > 1` and the product is large enough, splits the M dimension into
/// contiguous row chunks across the [`bnn_pool`] workers.
///
/// The split is byte-identical to the serial run for every tier and every worker count:
/// chunks are disjoint row ranges, each chunk runs the identical serial kernel, and no tier's
/// per-scalar result depends on which rows share its chunk (row tiling chooses *which* tile
/// path computes a scalar, but all paths add that scalar's terms in the same order — even
/// FastMath's split is a pure function of `k`, not of the chunk shape).
pub fn gemm_accumulate_tiered(
    cfg: KernelConfig,
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    // Profiling hook: the full MAC volume counts on the calling thread, before any split.
    crate::profile::record_gemm(cfg.tier, (m * k * n) as u64);
    let workers = cfg.gemm_workers.max(1);
    if workers == 1 || m < 2 || m * k * n < PARALLEL_MIN_MACS {
        return gemm_serial(cfg.tier, c, a, b, m, k, n);
    }
    // Contiguous row chunks, one per worker; each chunk is a disjoint &mut window of C. The
    // per-chunk mutex is uncontended (each job locks only its own chunk) — it exists to hand
    // a &mut slice through the pool's Fn(&self)-style job closure.
    let chunks = workers.min(m);
    let mut parts: Vec<Mutex<(usize, &mut [f32])>> = Vec::with_capacity(chunks);
    let mut rest = c;
    let mut row = 0;
    for t in 0..chunks {
        let hi = m * (t + 1) / chunks;
        let (head, tail) = rest.split_at_mut((hi - row) * n);
        parts.push(Mutex::new((row, head)));
        rest = tail;
        row = hi;
    }
    bnn_pool::run_indexed(chunks, workers, |t| {
        let mut guard = parts[t].lock().unwrap();
        let (lo, chunk) = &mut *guard;
        let rows = chunk.len() / n;
        gemm_serial(cfg.tier, chunk, &a[*lo * k..(*lo + rows) * k], b, rows, k, n);
    });
}

/// The fused-sampling linear kernel: `S` per-sample matrix-vector products in one pass.
///
/// * `x` is the stacked activation panel `[S, in]` (sample-major, row `s` = sample `s`'s
///   input);
/// * `wt` is the packed **transposed** weight panel `[in, S·out]` with
///   `wt[i·S·out + s·out + o] = w_s[o, i]` — per-sample sampled weights materialized
///   column-blocked by sample (the ε panel of the fused forward pass);
/// * `c` is the stacked output `[S, out]`, accumulated in place.
///
/// The i-outer rank-1-update form makes the inner loop a contiguous, vectorizable walk over
/// `out` — unlike the per-sample dot-product loop, whose single running sum is an addition
/// chain no vectorizer may touch. Per output scalar `(s, o)` the terms are still added
/// i-ascending into one accumulator (`c[s·out+o] += x[s,i]·w_s[o,i]`, `i = 0, 1, …`), which
/// is exactly the dot-product loop's order — so fused and per-sample forwards are
/// `to_bits()`-identical.
pub fn fused_linear_accumulate(
    c: &mut [f32],
    x: &[f32],
    wt: &[f32],
    samples: usize,
    in_features: usize,
    out_features: usize,
) {
    debug_assert_eq!(c.len(), samples * out_features);
    debug_assert_eq!(x.len(), samples * in_features);
    debug_assert_eq!(wt.len(), in_features * samples * out_features);
    let width = samples * out_features;
    for i in 0..in_features {
        let wrow = &wt[i * width..(i + 1) * width];
        for s in 0..samples {
            let xv = x[s * in_features + i];
            let crow = &mut c[s * out_features..(s + 1) * out_features];
            let wseg = &wrow[s * out_features..(s + 1) * out_features];
            for (cv, &wv) in crow.iter_mut().zip(wseg) {
                *cv += xv * wv;
            }
        }
    }
}

/// C\[m,n\] += Aᵀ · B where `a` is `[k, m]` and `b` is `[k, n]`, both row-major. Terms are
/// accumulated `p`-ascending per scalar (the `p`-outer rank-1-update form), matching
/// `a.transpose2().matmul(b)` bit for bit without materializing the transpose.
pub fn gemm_at_accumulate(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// C\[m,n\] += A · Bᵀ where `a` is `[m, k]` and `b` is `[n, k]`, both row-major: every output
/// scalar is a dot product of two contiguous rows, accumulated `p`-ascending in one scalar
/// accumulator (no multi-lane unrolling — splitting the accumulator would reorder the sum).
pub fn gemm_bt_accumulate(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = c[i * n + j];
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
}

/// Packs `input` (`[N, H, W]`) into the im2col matrix `[N·K·K, OH·OW]`: row `(ic, ky, kx)`,
/// column `(oy, ox)`, out-of-bounds taps as `0.0`. Row order `(ic, ky, kx)` is exactly the
/// accumulation order of the reference forward loop.
#[allow(clippy::too_many_arguments)]
fn pack_im2col(
    col: &mut [f32],
    input: &[f32],
    n: usize,
    h: usize,
    w: usize,
    geom: &ConvGeometry,
    oh: usize,
    ow: usize,
) {
    let k = geom.kernel;
    let (stride, pad) = (geom.stride as isize, geom.padding as isize);
    let cols = oh * ow;
    debug_assert_eq!(col.len(), n * k * k * cols);
    for ic in 0..n {
        let plane = &input[ic * h * w..(ic + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = &mut col[((ic * k + ky) * k + kx) * cols..][..cols];
                for oy in 0..oh {
                    let iy = oy as isize * stride + ky as isize - pad;
                    let dst = &mut row[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let src = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = ox as isize * stride + kx as isize - pad;
                        *d = if ix < 0 || ix >= w as isize { 0.0 } else { src[ix as usize] };
                    }
                }
            }
        }
    }
}

/// Packs `input` into the im2row matrix `[OH·OW, N·K·K]` (one contiguous patch per output
/// pixel) — the transpose of [`pack_im2col`], used as the GEMM `B` operand of the weight
/// gradient so its k-dimension enumerates output pixels in raster order.
#[allow(clippy::too_many_arguments)]
fn pack_im2row(
    row_mat: &mut [f32],
    input: &[f32],
    n: usize,
    h: usize,
    w: usize,
    geom: &ConvGeometry,
    oh: usize,
    ow: usize,
) {
    let k = geom.kernel;
    let (stride, pad) = (geom.stride as isize, geom.padding as isize);
    let patch = n * k * k;
    debug_assert_eq!(row_mat.len(), oh * ow * patch);
    for oy in 0..oh {
        for ox in 0..ow {
            let dst = &mut row_mat[(oy * ow + ox) * patch..][..patch];
            let mut q = 0;
            for ic in 0..n {
                let plane = &input[ic * h * w..(ic + 1) * h * w];
                for ky in 0..k {
                    let iy = oy as isize * stride + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        dst[q..q + k].fill(0.0);
                        q += k;
                        continue;
                    }
                    let src = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for kx in 0..k {
                        let ix = ox as isize * stride + kx as isize - pad;
                        dst[q] = if ix < 0 || ix >= w as isize { 0.0 } else { src[ix as usize] };
                        q += 1;
                    }
                }
            }
        }
    }
}

/// Forward convolution into a caller-provided output tensor (shape `[M, OH, OW]`, any prior
/// contents overwritten), via im2col packing and the blocked GEMM. Bit-identical to
/// [`crate::conv::reference::conv2d_forward`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent operand shapes.
pub fn conv2d_forward_into(
    geom: &ConvGeometry,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    out: &mut Tensor,
    scratch: &mut Scratch,
) -> Result<(), TensorError> {
    let (n, m, k) = (geom.in_channels, geom.out_channels, geom.kernel);
    let in_shape = input.shape();
    if in_shape.len() != 3 || in_shape[0] != n {
        return Err(TensorError::ShapeMismatch { left: in_shape.to_vec(), right: vec![n, 0, 0] });
    }
    let (h, w) = (in_shape[1], in_shape[2]);
    expect_shape(weights, &[m, n, k, k])?;
    expect_shape(bias, &[m])?;
    let (oh, ow) = geom.output_size(h, w);
    debug_assert_eq!(out.shape(), &[m, oh, ow]);

    let cols = oh * ow;
    let kk = n * k * k;
    let mut col = scratch.take_f32(kk * cols);
    pack_im2col(&mut col, input.data(), n, h, w, geom, oh, ow);

    // Seed every output scalar with its channel bias — the reference loop starts `acc = b`.
    let out_d = out.data_mut();
    for om in 0..m {
        out_d[om * cols..(om + 1) * cols].fill(bias.data()[om]);
    }
    // Weights are already `[M, (ic, ky, kx)]` row-major: the GEMM A operand needs no packing.
    gemm_accumulate_tiered(scratch.kernel(), out_d, weights.data(), &col, m, kk, cols);
    scratch.put_f32(col);
    Ok(())
}

/// Input-gradient convolution into a caller-provided `[N, H, W]` tensor, bit-identical to
/// [`crate::conv::reference::conv2d_backward_input`].
///
/// The scatter loop of the reference accumulates into each input pixel in `(om, oy, ox)`
/// order. That is exactly the `(om, ky′, kx′)`-ordered k-dimension of a unit-stride
/// convolution over the *dilated* output gradient (stride−1 zeros between elements, embedded
/// with a `k−1−pad` border) with 180°-rotated, axis-swapped kernels — so the same
/// im2col+GEMM machinery applies. Geometries with `padding ≥ kernel` (which never occur in
/// the paper's models) fall back to the reference scatter.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent operand shapes.
pub fn conv2d_backward_input_into(
    geom: &ConvGeometry,
    grad_output: &Tensor,
    weights: &Tensor,
    input_h: usize,
    input_w: usize,
    grad_in: &mut Tensor,
    scratch: &mut Scratch,
) -> Result<(), TensorError> {
    let (n, m, k) = (geom.in_channels, geom.out_channels, geom.kernel);
    let (oh, ow) = geom.output_size(input_h, input_w);
    expect_shape(grad_output, &[m, oh, ow])?;
    expect_shape(weights, &[m, n, k, k])?;
    debug_assert_eq!(grad_in.shape(), &[n, input_h, input_w]);

    if geom.padding >= k {
        // Degenerate geometry outside the dilated-convolution formulation's domain.
        let reference = crate::conv::reference::conv2d_backward_input(
            geom,
            grad_output,
            weights,
            input_h,
            input_w,
        )?;
        grad_in.data_mut().copy_from_slice(reference.data());
        return Ok(());
    }

    // 1. Embed the output gradient: D[om, oy·s + border, ox·s + border] = go[om, oy, ox]
    //    with border = k − 1 − pad; everything else 0. A unit-stride valid convolution of D
    //    then has output extent exactly [input_h, input_w].
    let border = k - 1 - geom.padding;
    let (dh, dw) = (input_h + k - 1, input_w + k - 1);
    let mut dilated = scratch.take_f32(m * dh * dw);
    let go = grad_output.data();
    for om in 0..m {
        let plane = &mut dilated[om * dh * dw..(om + 1) * dh * dw];
        for oy in 0..oh {
            let y = oy * geom.stride + border;
            for ox in 0..ow {
                plane[y * dw + ox * geom.stride + border] = go[(om * oh + oy) * ow + ox];
            }
        }
    }

    // 2. Rotate + axis-swap the kernels: A[ic, (om, ky′, kx′)] = w[om, ic, k−1−ky′, k−1−kx′].
    let kk = m * k * k;
    let mut rot = scratch.take_f32(n * kk);
    let w_d = weights.data();
    for ic in 0..n {
        for om in 0..m {
            for ky in 0..k {
                for kx in 0..k {
                    rot[(ic * m + om) * k * k + ky * k + kx] =
                        w_d[((om * n + ic) * k + (k - 1 - ky)) * k + (k - 1 - kx)];
                }
            }
        }
    }

    // 3. im2col over D (kernel k, stride 1, no padding — the border is already embedded).
    let dil_geom =
        ConvGeometry { in_channels: m, out_channels: n, kernel: k, stride: 1, padding: 0 };
    let cols = input_h * input_w;
    let mut col = scratch.take_f32(kk * cols);
    pack_im2col(&mut col, &dilated, m, dh, dw, &dil_geom, input_h, input_w);

    let gi = grad_in.data_mut();
    gi.fill(0.0);
    gemm_accumulate_tiered(scratch.kernel(), gi, &rot, &col, n, kk, cols);

    scratch.put_f32(col);
    scratch.put_f32(rot);
    scratch.put_f32(dilated);
    Ok(())
}

/// Weight/bias-gradient convolution into caller-provided `[M, N, K, K]` / `[M]` tensors,
/// bit-identical to [`crate::conv::reference::conv2d_backward_weights`]: the GEMM k-dimension
/// enumerates output pixels in raster order, matching the reference's `(oy, ox)` accumulation.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent operand shapes.
pub fn conv2d_backward_weights_into(
    geom: &ConvGeometry,
    input: &Tensor,
    grad_output: &Tensor,
    grad_w: &mut Tensor,
    grad_b: &mut Tensor,
    scratch: &mut Scratch,
) -> Result<(), TensorError> {
    let (n, m, k) = (geom.in_channels, geom.out_channels, geom.kernel);
    let in_shape = input.shape();
    if in_shape.len() != 3 || in_shape[0] != n {
        return Err(TensorError::ShapeMismatch { left: in_shape.to_vec(), right: vec![n, 0, 0] });
    }
    let (h, w) = (in_shape[1], in_shape[2]);
    let (oh, ow) = geom.output_size(h, w);
    expect_shape(grad_output, &[m, oh, ow])?;
    debug_assert_eq!(grad_w.shape(), &[m, n, k, k]);
    debug_assert_eq!(grad_b.shape(), &[m]);

    let pixels = oh * ow;
    let patch = n * k * k;
    let mut rows = scratch.take_f32(pixels * patch);
    pack_im2row(&mut rows, input.data(), n, h, w, geom, oh, ow);

    let go = grad_output.data();
    let gb = grad_b.data_mut();
    for om in 0..m {
        let mut acc = 0.0f32;
        for &g in &go[om * pixels..(om + 1) * pixels] {
            acc += g;
        }
        gb[om] = acc;
    }

    let gw = grad_w.data_mut();
    gw.fill(0.0);
    gemm_accumulate_tiered(scratch.kernel(), gw, go, &rows, m, pixels, patch);
    scratch.put_f32(rows);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(shape: &[usize], f: impl Fn(usize) -> f32) -> Tensor {
        let len = shape.iter().product();
        Tensor::from_vec(shape.to_vec(), (0..len).map(f).collect()).unwrap()
    }

    #[test]
    fn gemm_matches_naive_bitwise() {
        let (m, k, n) = (5, 7, 300); // n > NB exercises column blocking
        let a = tensor(&[m, k], |i| ((i as f32) * 0.17).sin());
        let b = tensor(&[k, n], |i| ((i as f32) * 0.09).cos());
        let mut c = vec![0.0f32; m * n];
        gemm_accumulate(&mut c, a.data(), b.data(), m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                assert_eq!(c[i * n + j].to_bits(), acc.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_at_matches_transpose_then_matmul_bitwise() {
        let (k, m, n) = (6, 4, 9);
        let a = tensor(&[k, m], |i| (i as f32 * 0.31).sin());
        let b = tensor(&[k, n], |i| (i as f32 * 0.23).cos());
        let expect = a.transpose2().matmul(&b).unwrap();
        let mut c = vec![0.0f32; m * n];
        gemm_at_accumulate(&mut c, a.data(), b.data(), m, k, n);
        for (got, want) in c.iter().zip(expect.data()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn gemm_bt_matches_matmul_of_transpose_bitwise() {
        let (m, k, n) = (3, 11, 5);
        let a = tensor(&[m, k], |i| (i as f32 * 0.13).sin());
        let b = tensor(&[n, k], |i| (i as f32 * 0.29).cos());
        let expect = a.matmul(&b.transpose2()).unwrap();
        let mut c = vec![0.0f32; m * n];
        gemm_bt_accumulate(&mut c, a.data(), b.data(), m, k, n);
        for (got, want) in c.iter().zip(expect.data()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn conv_forward_into_matches_reference_bitwise() {
        let geom =
            ConvGeometry { in_channels: 3, out_channels: 5, kernel: 3, stride: 2, padding: 1 };
        let input = tensor(&[3, 9, 11], |i| (i as f32 * 0.7).sin());
        let weights = tensor(&[5, 3, 3, 3], |i| (i as f32 * 0.11).cos() * 0.4);
        let bias = tensor(&[5], |i| i as f32 * 0.05 - 0.1);
        let expect =
            crate::conv::reference::conv2d_forward(&geom, &input, &weights, &bias).unwrap();
        // Pin a bit-exact tier explicitly: the bitwise contract holds for every tier in
        // `KernelTier::BIT_EXACT` but not under a `SHIFT_BNN_KERNEL_TIER=fastmath` process
        // default (the CI tier matrix runs exactly that).
        let mut scratch = Scratch::new();
        scratch.set_kernel(KernelConfig { tier: KernelTier::Simd, gemm_workers: 1 });
        let mut out = scratch.take_tensor(expect.shape());
        conv2d_forward_into(&geom, &input, &weights, &bias, &mut out, &mut scratch).unwrap();
        for (got, want) in out.data().iter().zip(expect.data()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn degenerate_padding_falls_back_to_reference_bitwise() {
        // padding >= kernel is outside the dilated-gather formulation's domain; the driver
        // must detect it and reproduce the reference scatter exactly.
        let geom =
            ConvGeometry { in_channels: 2, out_channels: 3, kernel: 2, stride: 1, padding: 3 };
        let (h, w) = (5, 4);
        let (oh, ow) = geom.output_size(h, w);
        let weights = tensor(&[3, 2, 2, 2], |i| (i as f32 * 0.23).cos() * 0.5);
        let grad_out = tensor(&[3, oh, ow], |i| (i as f32 * 0.31).sin());
        let want = crate::conv::reference::conv2d_backward_input(&geom, &grad_out, &weights, h, w)
            .unwrap();
        let mut scratch = Scratch::new();
        let mut got = scratch.take_tensor(&[2, h, w]);
        conv2d_backward_input_into(&geom, &grad_out, &weights, h, w, &mut got, &mut scratch)
            .unwrap();
        for (g, t) in got.data().iter().zip(want.data()) {
            assert_eq!(g.to_bits(), t.to_bits());
        }
    }

    #[test]
    fn conv_backward_into_matches_reference_bitwise() {
        let geom =
            ConvGeometry { in_channels: 2, out_channels: 4, kernel: 3, stride: 2, padding: 1 };
        let (h, w) = (8, 7);
        let input = tensor(&[2, h, w], |i| (i as f32 * 0.37).sin());
        let weights = tensor(&[4, 2, 3, 3], |i| (i as f32 * 0.19).cos() * 0.3);
        let (oh, ow) = geom.output_size(h, w);
        let grad_out = tensor(&[4, oh, ow], |i| (i as f32 * 0.41).sin());

        let expect_gi =
            crate::conv::reference::conv2d_backward_input(&geom, &grad_out, &weights, h, w)
                .unwrap();
        let (expect_gw, expect_gb) =
            crate::conv::reference::conv2d_backward_weights(&geom, &input, &grad_out).unwrap();

        // Pinned bit-exact tier, as in the forward test: the CI tier matrix forces fastmath
        // via the environment, which is outside this test's bitwise contract.
        let mut scratch = Scratch::new();
        scratch.set_kernel(KernelConfig { tier: KernelTier::Simd, gemm_workers: 1 });
        let mut gi = scratch.take_tensor(expect_gi.shape());
        conv2d_backward_input_into(&geom, &grad_out, &weights, h, w, &mut gi, &mut scratch)
            .unwrap();
        let mut gw = scratch.take_tensor(expect_gw.shape());
        let mut gb = scratch.take_tensor(expect_gb.shape());
        conv2d_backward_weights_into(&geom, &input, &grad_out, &mut gw, &mut gb, &mut scratch)
            .unwrap();

        for (got, want) in gi.data().iter().zip(expect_gi.data()) {
            assert_eq!(got.to_bits(), want.to_bits(), "grad input");
        }
        for (got, want) in gw.data().iter().zip(expect_gw.data()) {
            assert_eq!(got.to_bits(), want.to_bits(), "grad weights");
        }
        for (got, want) in gb.data().iter().zip(expect_gb.data()) {
            assert_eq!(got.to_bits(), want.to_bits(), "grad bias");
        }
    }
}
