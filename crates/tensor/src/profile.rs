//! Thread-local hot-path profiling counters: GEMM calls/MACs per [`KernelTier`] and the
//! scratch arena's `f32` high-water mark.
//!
//! Each counter is a plain `Cell<u64>` in thread-local storage — bumping one is a single
//! register-width store with no atomics, no branches beyond the TLS access, and no heap
//! traffic, so the hooks stay compiled into release builds. Counters are **per thread** by
//! design: a deterministic profiled replay runs its replica on one thread and reads exactly
//! that thread's movement. The one wrinkle is the tiered GEMM's worker split — the hook in
//! [`crate::kernels::gemm_accumulate_tiered`] fires on the *calling* thread before any
//! split, counting the full `m·k·n` volume, so parallel dispatch loses nothing.
//!
//! The presentation layer (snapshot structs, JSON) lives downstream in `bnn-obs`; this
//! module only owns the raw cells so the tensor crate keeps zero new dependencies.

use std::cell::Cell;

use crate::kernels::KernelTier;

const TIERS: usize = 4;

thread_local! {
    static GEMM_CALLS: [Cell<u64>; TIERS] = const { [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)] };
    static GEMM_MACS: [Cell<u64>; TIERS] = const { [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)] };
    static SCRATCH_OUTSTANDING: Cell<u64> = const { Cell::new(0) };
    static SCRATCH_HIGH_WATER: Cell<u64> = const { Cell::new(0) };
}

/// The per-tier counter index, in [`KernelTier::ALL`] order.
fn tier_index(tier: KernelTier) -> usize {
    match tier {
        KernelTier::Reference => 0,
        KernelTier::Blocked => 1,
        KernelTier::Simd => 2,
        KernelTier::FastMath => 3,
    }
}

/// Records one GEMM dispatch of `macs = m·k·n` multiply-accumulates under `tier`.
#[inline]
pub fn record_gemm(tier: KernelTier, macs: u64) {
    let i = tier_index(tier);
    GEMM_CALLS.with(|c| c[i].set(c[i].get() + 1));
    GEMM_MACS.with(|c| c[i].set(c[i].get() + macs));
}

/// This thread's cumulative GEMM call counts, per tier in [`KernelTier::ALL`] order.
pub fn gemm_calls() -> [u64; TIERS] {
    GEMM_CALLS.with(|c| [c[0].get(), c[1].get(), c[2].get(), c[3].get()])
}

/// This thread's cumulative GEMM MAC volume, per tier in [`KernelTier::ALL`] order.
pub fn gemm_macs() -> [u64; TIERS] {
    GEMM_MACS.with(|c| [c[0].get(), c[1].get(), c[2].get(), c[3].get()])
}

/// Records `slots` `f32` slots leaving the scratch arena, raising the high-water mark.
#[inline]
pub fn scratch_take(slots: u64) {
    SCRATCH_OUTSTANDING.with(|out| {
        let now = out.get() + slots;
        out.set(now);
        SCRATCH_HIGH_WATER.with(|hw| {
            if now > hw.get() {
                hw.set(now);
            }
        });
    });
}

/// Records `slots` `f32` slots returning to the scratch arena.
#[inline]
pub fn scratch_put(slots: u64) {
    SCRATCH_OUTSTANDING.with(|out| out.set(out.get().saturating_sub(slots)));
}

/// This thread's scratch high-water mark (`f32` slots) since the last
/// [`reset_scratch_high_water`].
pub fn scratch_high_water() -> u64 {
    SCRATCH_HIGH_WATER.with(|hw| hw.get())
}

/// Resets the high-water mark to the currently outstanding slots, starting a fresh
/// measurement region (callers bracket a request with this + [`scratch_high_water`]).
pub fn reset_scratch_high_water() {
    let outstanding = SCRATCH_OUTSTANDING.with(|out| out.get());
    SCRATCH_HIGH_WATER.with(|hw| hw.set(outstanding));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_counters_accumulate_per_tier() {
        let before_calls = gemm_calls();
        let before_macs = gemm_macs();
        record_gemm(KernelTier::Simd, 1000);
        record_gemm(KernelTier::Simd, 500);
        record_gemm(KernelTier::Reference, 10);
        let calls = gemm_calls();
        let macs = gemm_macs();
        assert_eq!(calls[2] - before_calls[2], 2);
        assert_eq!(macs[2] - before_macs[2], 1500);
        assert_eq!(calls[0] - before_calls[0], 1);
        assert_eq!(macs[0] - before_macs[0], 10);
    }

    #[test]
    fn scratch_high_water_tracks_the_peak_between_resets() {
        reset_scratch_high_water();
        let base = scratch_high_water();
        scratch_take(100);
        scratch_take(50);
        scratch_put(50);
        scratch_take(20);
        assert_eq!(scratch_high_water() - base, 150, "peak was 100+50 outstanding");
        scratch_put(120);
        reset_scratch_high_water();
        assert_eq!(scratch_high_water(), base, "reset returns to outstanding level");
    }
}
