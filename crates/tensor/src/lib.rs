//! Minimal dense-tensor and neural-network math substrate for the Shift-BNN reproduction.
//!
//! The paper's software baseline is PyTorch; this crate replaces it with a small, dependency-free
//! implementation of exactly the operations Bayes-by-Backprop BNN training needs:
//!
//! * [`Tensor`] — dense row-major `f32` tensors with elementwise ops and matmul;
//! * [`conv`] — conv2d forward, input gradient (the 180°-rotated-kernel backward convolution)
//!   and weight gradient;
//! * [`pool`] — max pooling with argmax routing;
//! * [`activation`] — ReLU, softplus (for the σ parameterization) and sigmoid;
//! * [`loss`] — softmax cross-entropy (the log-likelihood term of the ELBO) and MSE;
//! * [`quant`] — 8-/16-/32-bit precision emulation used for the paper's Table 1;
//! * [`init`] — deterministic weight initializers.
//!
//! # Example
//!
//! ```
//! use bnn_tensor::conv::{conv2d_forward, ConvGeometry};
//! use bnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), bnn_tensor::TensorError> {
//! let geom = ConvGeometry { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
//! let input = Tensor::filled(&[1, 8, 8], 1.0);
//! let weights = Tensor::filled(&[1, 1, 3, 3], 0.1);
//! let bias = Tensor::zeros(&[1]);
//! let out = conv2d_forward(&geom, &input, &weights, &bias)?;
//! assert_eq!(out.shape(), &[1, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod conv;
pub mod init;
pub mod kernels;
pub mod loss;
pub mod pool;
pub mod profile;
pub mod quant;
pub mod scratch;
mod tensor;

pub use kernels::{KernelConfig, KernelTier};
pub use quant::Precision;
pub use scratch::Scratch;
pub use tensor::{Tensor, TensorError};
