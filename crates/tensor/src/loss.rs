//! Classification losses: softmax cross-entropy (the paper's log-likelihood term) and mean
//! squared error.

use crate::tensor::Tensor;

/// Numerically stable softmax over a 1-D logit vector.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert!(!logits.is_empty(), "softmax of empty logits");
    let max = logits.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.data().iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(logits.shape().to_vec(), exps.into_iter().map(|e| e / sum).collect())
        .expect("softmax preserves shape")
}

/// Numerically stable softmax computed in place over a 1-D logit vector — the
/// zero-allocation variant of [`softmax`], bit-identical (same max subtraction, same
/// exponentiation and normalization order).
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax_inplace(logits: &mut Tensor) {
    assert!(!logits.is_empty(), "softmax of empty logits");
    let data = logits.data_mut();
    let max = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in data.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in data.iter_mut() {
        *x /= sum;
    }
}

/// Softmax cross-entropy loss against an integer class label, returning the scalar loss and the
/// gradient with respect to the logits (`softmax(x) − one_hot(label)`).
///
/// This is the negative log-likelihood term `−log P(y|x, w)` of the paper's Eq. 1.
///
/// # Panics
///
/// Panics if `label` is out of range for the logit vector.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    assert!(label < logits.len(), "label {label} out of range for {} classes", logits.len());
    let probs = softmax(logits);
    let p = probs.data()[label].max(1e-12);
    let loss = -p.ln();
    let mut grad = probs;
    grad.data_mut()[label] -= 1.0;
    (loss, grad)
}

/// Softmax cross-entropy that consumes its logits and turns the same buffer into the
/// gradient — the zero-allocation variant of [`softmax_cross_entropy`], bit-identical.
///
/// # Panics
///
/// Panics if `label` is out of range for the logit vector.
pub fn softmax_cross_entropy_owned(mut logits: Tensor, label: usize) -> (f32, Tensor) {
    assert!(label < logits.len(), "label {label} out of range for {} classes", logits.len());
    softmax_inplace(&mut logits);
    let p = logits.data()[label].max(1e-12);
    let loss = -p.ln();
    logits.data_mut()[label] -= 1.0;
    (loss, logits)
}

/// Mean squared error between a prediction and a target of the same shape, with its gradient
/// with respect to the prediction.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape(), "mse requires matching shapes");
    let n = prediction.len() as f32;
    let diff = prediction.sub(target).expect("shapes already checked");
    let loss = diff.squared_norm() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Classification accuracy of a batch of logit vectors against integer labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(logits: &[Tensor], labels: &[usize]) -> f64 {
    assert_eq!(logits.len(), labels.len(), "logits and labels must pair up");
    if logits.is_empty() {
        return 0.0;
    }
    let correct = logits.iter().zip(labels).filter(|(l, &y)| l.argmax() == y).count();
    correct as f64 / logits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let logits = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let p = softmax(&logits);
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.data()[2] > p.data()[1] && p.data()[1] > p.data()[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap());
        let b = softmax(&Tensor::from_vec(vec![3], vec![1001.0, 1002.0, 1003.0]).unwrap());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_loss_decreases_with_confidence() {
        let confident = Tensor::from_vec(vec![3], vec![0.0, 0.0, 10.0]).unwrap();
        let unsure = Tensor::from_vec(vec![3], vec![0.0, 0.0, 0.1]).unwrap();
        let (l_confident, _) = softmax_cross_entropy(&confident, 2);
        let (l_unsure, _) = softmax_cross_entropy(&unsure, 2);
        assert!(l_confident < l_unsure);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![4], vec![0.3, -0.2, 0.9, 0.1]).unwrap();
        let label = 1usize;
        let (_, grad) = softmax_cross_entropy(&logits, label);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, label);
            let (lm, _) = softmax_cross_entropy(&minus, label);
            let numerical = (lp - lm) / (2.0 * eps);
            assert!((numerical - grad.data()[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let t = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let (loss, grad) = mse(&t, &t);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = vec![
            Tensor::from_vec(vec![2], vec![0.9, 0.1]).unwrap(),
            Tensor::from_vec(vec![2], vec![0.2, 0.8]).unwrap(),
            Tensor::from_vec(vec![2], vec![0.6, 0.4]).unwrap(),
        ];
        let labels = vec![0, 1, 1];
        assert!((accuracy(&logits, &labels) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::from_vec(vec![2], vec![0.0, 1.0]).unwrap();
        softmax_cross_entropy(&logits, 5);
    }
}
