//! Bit-exactness of the packed im2col+GEMM kernels against the retained reference
//! convolution loops, across randomized geometries (channels, kernel size, stride, padding,
//! spatial extent) and randomized finite data.
//!
//! Equality is asserted on `to_bits()` — not approximate closeness — because the kernel
//! rewrite's whole contract is that every output scalar accumulates the same terms in the
//! same order as the reference loop nest (see `kernels` module docs for the argument).

use bnn_tensor::conv::{reference, ConvGeometry};
use bnn_tensor::init::splitmix_tensor as fill;
use bnn_tensor::kernels::{
    conv2d_backward_input_into, conv2d_backward_weights_into, conv2d_forward_into,
};
use bnn_tensor::{KernelConfig, KernelTier, Scratch, Tensor};
use proptest::prelude::*;

/// A scratch pinned to a bit-exact tier: the bitwise contract below holds for every tier in
/// [`KernelTier::BIT_EXACT`] but not under a `SHIFT_BNN_KERNEL_TIER=fastmath` process
/// default, which the CI tier matrix forces (FastMath's own ULP bound is pinned by
/// `kernel_tiers.rs`).
fn bit_exact_scratch() -> Scratch {
    let mut scratch = Scratch::new();
    scratch.set_kernel(KernelConfig { tier: KernelTier::Simd, gemm_workers: 1 });
    scratch
}

fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape(), "{} shape", what);
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert_eq!(g.to_bits(), w.to_bits(), "{}[{}]: {} vs {}", what, i, g, w);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward, input-gradient and weight-gradient kernels are bit-identical to the
    /// reference for arbitrary geometry.
    #[test]
    fn packed_kernels_match_reference_bitwise(
        n in 1usize..4,
        m in 1usize..5,
        kernel in 1usize..5,
        stride in 1usize..4,
        pad_raw in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        // Padding below the kernel size (every real model) exercises the packed path;
        // the input must be large enough for at least one output pixel.
        let padding = pad_raw.min(kernel - 1);
        let (extra_h, extra_w) = ((seed % 6) as usize, ((seed >> 8) % 6) as usize);
        let h = kernel.max(kernel.saturating_sub(2 * padding)) + extra_h;
        let w = kernel.max(kernel.saturating_sub(2 * padding)) + extra_w;
        let geom = ConvGeometry { in_channels: n, out_channels: m, kernel, stride, padding };
        let (oh, ow) = geom.output_size(h, w);

        let input = fill(seed, &[n, h, w]);
        let weights = fill(seed ^ 0xAAAA, &[m, n, kernel, kernel]);
        let bias = fill(seed ^ 0x5555, &[m]);
        let grad_out = fill(seed ^ 0x3333, &[m, oh, ow]);

        let mut scratch = bit_exact_scratch();

        // Forward.
        let want = reference::conv2d_forward(&geom, &input, &weights, &bias).unwrap();
        let mut got = scratch.take_tensor(&[m, oh, ow]);
        conv2d_forward_into(&geom, &input, &weights, &bias, &mut got, &mut scratch).unwrap();
        assert_bits_eq(&got, &want, "forward")?;

        // Input gradient.
        let want = reference::conv2d_backward_input(&geom, &grad_out, &weights, h, w).unwrap();
        let mut got = scratch.take_tensor(&[n, h, w]);
        conv2d_backward_input_into(&geom, &grad_out, &weights, h, w, &mut got, &mut scratch)
            .unwrap();
        assert_bits_eq(&got, &want, "grad_input")?;

        // Weight + bias gradients.
        let (want_gw, want_gb) =
            reference::conv2d_backward_weights(&geom, &input, &grad_out).unwrap();
        let mut got_gw = scratch.take_tensor(&[m, n, kernel, kernel]);
        let mut got_gb = scratch.take_tensor(&[m]);
        conv2d_backward_weights_into(
            &geom, &input, &grad_out, &mut got_gw, &mut got_gb, &mut scratch,
        )
        .unwrap();
        assert_bits_eq(&got_gw, &want_gw, "grad_weights")?;
        assert_bits_eq(&got_gb, &want_gb, "grad_bias")?;
    }

    /// Sparse upstream gradients (exact zeros) exercise the reference's `g == 0` skip
    /// shortcuts against the packed kernels' branch-free accumulation.
    #[test]
    fn zero_riddled_gradients_still_match_bitwise(
        seed in 0u64..u64::MAX,
        zero_mask in 0u64..u64::MAX,
    ) {
        let geom =
            ConvGeometry { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let (h, w) = (6, 6);
        let (oh, ow) = geom.output_size(h, w);
        let input = fill(seed, &[2, h, w]);
        let weights = fill(seed ^ 0x77, &[3, 2, 3, 3]);
        let mut grad_out = fill(seed ^ 0x99, &[3, oh, ow]);
        for (i, g) in grad_out.data_mut().iter_mut().enumerate() {
            if (zero_mask >> (i % 64)) & 1 == 1 {
                *g = 0.0;
            }
        }

        let mut scratch = bit_exact_scratch();
        let want = reference::conv2d_backward_input(&geom, &grad_out, &weights, h, w).unwrap();
        let mut got = scratch.take_tensor(&[2, h, w]);
        conv2d_backward_input_into(&geom, &grad_out, &weights, h, w, &mut got, &mut scratch)
            .unwrap();
        assert_bits_eq(&got, &want, "sparse grad_input")?;

        let (want_gw, want_gb) =
            reference::conv2d_backward_weights(&geom, &input, &grad_out).unwrap();
        let mut got_gw = scratch.take_tensor(&[3, 2, 3, 3]);
        let mut got_gb = scratch.take_tensor(&[3]);
        conv2d_backward_weights_into(
            &geom, &input, &grad_out, &mut got_gw, &mut got_gb, &mut scratch,
        )
        .unwrap();
        assert_bits_eq(&got_gw, &want_gw, "sparse grad_weights")?;
        assert_bits_eq(&got_gb, &want_gb, "sparse grad_bias")?;
    }

    /// The transposed-operand GEMM variants match transpose-then-matmul bitwise.
    #[test]
    fn transposed_matmul_variants_match_bitwise(
        m in 1usize..8,
        k in 1usize..16,
        n in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let a_t = fill(seed, &[k, m]);
        let b = fill(seed ^ 0x1234, &[k, n]);
        assert_bits_eq(
            &a_t.matmul_at(&b).unwrap(),
            &a_t.transpose2().matmul(&b).unwrap(),
            "matmul_at",
        )?;
        let a = fill(seed ^ 0x4321, &[m, k]);
        let b_t = fill(seed ^ 0x9876, &[n, k]);
        assert_bits_eq(
            &a.matmul_bt(&b_t).unwrap(),
            &a.matmul(&b_t.transpose2()).unwrap(),
            "matmul_bt",
        )?;
    }
}
