//! Tier contracts of the GEMM kernel subsystem (PR 8):
//!
//! * `Blocked` and `Simd` are `to_bits()`-identical to `Reference` across randomized GEMM
//!   and convolution geometries — not approximately close, bit-identical;
//! * the M-split parallel path is byte-identical across worker counts (1 vs N) for **every**
//!   tier, FastMath included — the row partition may not leak into the numbers;
//! * `FastMath` is only ULP-close: its even/odd k-split reassociates each scalar's sum, and
//!   the documented bound is the standard forward-error bound for two different summation
//!   orders of the same dot product, `|fast − ref| ≤ 2·γ_k·Σ_p|a_p·b_p|` with
//!   `γ_k = k·ε/(1−k·ε)` (Higham, *Accuracy and Stability of Numerical Algorithms*, §3.1);
//! * the fused-sampling linear kernel matches the per-sample dot-product loop bit for bit.

use bnn_tensor::conv::{reference, ConvGeometry};
use bnn_tensor::init::splitmix_tensor as fill;
use bnn_tensor::kernels::{
    conv2d_forward_into, fused_linear_accumulate, gemm_accumulate_tiered, KernelConfig, KernelTier,
};
use bnn_tensor::{Scratch, Tensor};
use proptest::prelude::*;

/// Runs the tiered GEMM on a fresh copy of `c_init` and returns the result.
fn run_gemm(
    cfg: KernelConfig,
    c_init: &[f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut c = c_init.to_vec();
    gemm_accumulate_tiered(cfg, &mut c, a, b, m, k, n);
    c
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{} length", what);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(g.to_bits(), w.to_bits(), "{}[{}]: {} vs {}", what, i, g, w);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Blocked` and `Simd` accumulate every output scalar's k-terms in the reference order,
    /// so they are bit-identical to `Reference` for arbitrary shapes — including C seeded
    /// with non-zero values (the bias-prefill pattern of the conv driver), column remainders
    /// narrower than the SIMD tile, and row remainders shorter than the register tile.
    #[test]
    fn bit_exact_tiers_match_reference_bitwise(
        m in 1usize..14,
        k in 1usize..40,
        n in 1usize..300,
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(seed, &[m, k]);
        let b = fill(seed ^ 0xA5A5, &[k, n]);
        let c0 = fill(seed ^ 0x3C3C, &[m, n]);
        let want = run_gemm(
            KernelConfig::with_tier(KernelTier::Reference), c0.data(), a.data(), b.data(), m, k, n,
        );
        for tier in [KernelTier::Blocked, KernelTier::Simd] {
            let got =
                run_gemm(KernelConfig::with_tier(tier), c0.data(), a.data(), b.data(), m, k, n);
            assert_bits_eq(&got, &want, tier.label())?;
        }
    }

    /// The M-split parallel partition is byte-identical across worker counts for every tier.
    /// Shapes are sized above the inline threshold so the split actually runs; each output
    /// row is computed by the same serial kernel regardless of which chunk it lands in.
    #[test]
    fn m_split_is_byte_identical_across_worker_counts(
        m in 32usize..64,
        k in 64usize..128,
        n in 64usize..160,
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(seed, &[m, k]);
        let b = fill(seed ^ 0x1111, &[k, n]);
        let c0 = fill(seed ^ 0x2222, &[m, n]);
        for tier in KernelTier::ALL {
            let serial = run_gemm(
                KernelConfig { tier, gemm_workers: 1 }, c0.data(), a.data(), b.data(), m, k, n,
            );
            for workers in [2usize, 3, 5, 8] {
                let parallel = run_gemm(
                    KernelConfig { tier, gemm_workers: workers },
                    c0.data(), a.data(), b.data(), m, k, n,
                );
                assert_bits_eq(&parallel, &serial, tier.label())?;
            }
        }
    }

    /// The convolution drivers stay bit-identical to the reference loops under every
    /// bit-exact tier and under the parallel M-split.
    #[test]
    fn conv_forward_matches_reference_under_every_bit_exact_tier(
        cin in 1usize..4,
        cout in 1usize..6,
        kernel in 1usize..4,
        extra in 0usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let geom = ConvGeometry {
            in_channels: cin,
            out_channels: cout,
            kernel,
            stride: 1 + (seed % 2) as usize,
            padding: (seed % kernel as u64) as usize,
        };
        let (h, w) = (kernel + extra, kernel + extra + 1);
        let (oh, ow) = geom.output_size(h, w);
        let input = fill(seed, &[cin, h, w]);
        let weights = fill(seed ^ 0xBEEF, &[cout, cin, kernel, kernel]);
        let bias = fill(seed ^ 0xF00D, &[cout]);
        let want = reference::conv2d_forward(&geom, &input, &weights, &bias).unwrap();

        for tier in KernelTier::BIT_EXACT {
            for workers in [1usize, 4] {
                let mut scratch = Scratch::new();
                scratch.set_kernel(KernelConfig { tier, gemm_workers: workers });
                let mut got = scratch.take_tensor(&[cout, oh, ow]);
                conv2d_forward_into(&geom, &input, &weights, &bias, &mut got, &mut scratch)
                    .unwrap();
                assert_bits_eq(got.data(), want.data(), tier.label())?;
            }
        }
    }

    /// FastMath reassociates each scalar's sum; the divergence from the reference order is
    /// bounded by the documented forward-error bound `2·γ_k·Σ|a_p·b_p|` per scalar (both
    /// summation orders satisfy the `γ_k` bound around the exact dot product, so their
    /// difference satisfies twice it).
    #[test]
    fn fastmath_stays_within_the_documented_forward_error_bound(
        m in 1usize..12,
        k in 1usize..160,
        n in 1usize..80,
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(seed, &[m, k]);
        let b = fill(seed ^ 0x7777, &[k, n]);
        let c0 = fill(seed ^ 0x8888, &[m, n]);
        let want = run_gemm(
            KernelConfig::with_tier(KernelTier::Reference), c0.data(), a.data(), b.data(), m, k, n,
        );
        let got = run_gemm(
            KernelConfig::with_tier(KernelTier::FastMath), c0.data(), a.data(), b.data(), m, k, n,
        );
        let eps = f32::EPSILON as f64;
        let gamma = (k + 1) as f64 * eps / (1.0 - (k + 1) as f64 * eps);
        for i in 0..m {
            for j in 0..n {
                // Magnitude budget of scalar (i, j): |c0| plus every |a·b| term.
                let mut budget = c0.data()[i * n + j].abs() as f64;
                for p in 0..k {
                    budget += (a.data()[i * k + p] as f64 * b.data()[p * n + j] as f64).abs();
                }
                let diff = (got[i * n + j] as f64 - want[i * n + j] as f64).abs();
                let bound = 2.0 * gamma * budget + f64::MIN_POSITIVE;
                prop_assert!(
                    diff <= bound,
                    "({}, {}): |{} - {}| = {} exceeds 2·γ_k·Σ|terms| = {}",
                    i, j, got[i * n + j], want[i * n + j], diff, bound,
                );
            }
        }
    }

    /// The fused-sampling kernel's i-outer rank-1 updates add each output scalar's terms in
    /// exactly the per-sample dot-product loop's order — bit-identical, per sample.
    #[test]
    fn fused_linear_matches_per_sample_dot_loops_bitwise(
        samples in 1usize..18,
        in_features in 1usize..48,
        out_features in 1usize..48,
        seed in 0u64..u64::MAX,
    ) {
        let x = fill(seed, &[samples, in_features]);
        // Per-sample weights w_s[o, i], packed transposed: wt[i, s·out + o] = w_s[o, i].
        let w = fill(seed ^ 0xD1CE, &[samples, out_features, in_features]);
        let mut wt = vec![0.0f32; in_features * samples * out_features];
        for s in 0..samples {
            for o in 0..out_features {
                for i in 0..in_features {
                    wt[i * samples * out_features + s * out_features + o] =
                        w.data()[(s * out_features + o) * in_features + i];
                }
            }
        }
        let mut fused = vec![0.0f32; samples * out_features];
        fused_linear_accumulate(&mut fused, x.data(), &wt, samples, in_features, out_features);

        for s in 0..samples {
            for o in 0..out_features {
                let mut acc = 0.0f32;
                for i in 0..in_features {
                    acc += w.data()[(s * out_features + o) * in_features + i]
                        * x.data()[s * in_features + i];
                }
                prop_assert_eq!(
                    fused[s * out_features + o].to_bits(),
                    acc.to_bits(),
                    "sample {} output {}", s, o,
                );
            }
        }
    }
}

/// A deliberately non-random pin: the default tier is `Simd` (or whatever
/// `SHIFT_BNN_KERNEL_TIER` forces — the CI matrix relies on this), and `Simd` sits in the
/// bit-exact set.
#[test]
fn default_tier_is_bit_exact_or_explicitly_forced() {
    let tier = KernelTier::default();
    match std::env::var("SHIFT_BNN_KERNEL_TIER") {
        Ok(v) => assert_eq!(tier.label(), v, "forced tier must win"),
        Err(_) => assert_eq!(tier, KernelTier::Simd),
    }
}

/// A typo'd `SHIFT_BNN_KERNEL_TIER` fails loudly and the panic names every valid spelling —
/// a silent fallback would re-test the default tier while CI believes it covered another.
#[test]
fn unknown_env_tier_fails_loudly_listing_the_valid_tiers() {
    for tier in KernelTier::ALL {
        assert_eq!(KernelTier::from_env_value(tier.label()), tier);
    }
    let panic = std::panic::catch_unwind(|| KernelTier::from_env_value("smid"))
        .expect_err("a typo must panic, not fall back");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    assert!(message.contains("smid"), "names the offending value: {message}");
    for tier in KernelTier::ALL {
        assert!(message.contains(tier.label()), "lists {:?}: {message}", tier.label());
    }
}

/// Labels round-trip through `parse` — the env-var spelling can't drift from the enum.
#[test]
fn tier_labels_round_trip() {
    for tier in KernelTier::ALL {
        assert_eq!(KernelTier::parse(tier.label()), Some(tier));
    }
    assert_eq!(KernelTier::parse("avx512-of-the-gaps"), None);
}

/// Scratch carries the kernel config to the drivers (the zero-signature-churn plumbing).
#[test]
fn scratch_defaults_to_the_process_tier_and_accepts_overrides() {
    let scratch = Scratch::new();
    assert_eq!(scratch.kernel().tier, KernelTier::default());
    assert_eq!(scratch.kernel().gemm_workers, 1);
    let mut scratch = Scratch::new();
    scratch.set_kernel(KernelConfig { tier: KernelTier::Blocked, gemm_workers: 3 });
    assert_eq!(scratch.kernel().tier, KernelTier::Blocked);
    assert_eq!(scratch.kernel().gemm_workers, 3);
}

/// Keep a Tensor import alive for the helper signature (and pin that `fill` produces the
/// shapes the tests assume).
#[test]
fn splitmix_fill_produces_requested_shapes() {
    let t: Tensor = fill(7, &[2, 3]);
    assert_eq!(t.shape(), &[2, 3]);
}
