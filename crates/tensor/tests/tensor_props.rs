//! Property-based tests for the tensor substrate: algebraic identities of the elementwise ops,
//! convolution linearity, and quantization invariants.

use bnn_tensor::conv::{conv2d_backward_input, conv2d_forward, rotate_kernels_180, ConvGeometry};
use bnn_tensor::{Precision, Tensor};
use proptest::prelude::*;

fn arb_tensor(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Elementwise addition commutes and the Hadamard product distributes over addition.
    #[test]
    fn elementwise_algebra(a in arb_tensor(24), b in arb_tensor(24), c in arb_tensor(24)) {
        let ta = Tensor::from_vec(vec![4, 6], a).unwrap();
        let tb = Tensor::from_vec(vec![4, 6], b).unwrap();
        let tc = Tensor::from_vec(vec![4, 6], c).unwrap();
        prop_assert_eq!(ta.add(&tb).unwrap(), tb.add(&ta).unwrap());
        let lhs = ta.hadamard(&tb.add(&tc).unwrap()).unwrap();
        let rhs = ta.hadamard(&tb).unwrap().add(&ta.hadamard(&tc).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Matmul is associative with the identity and transpose reverses operand order.
    #[test]
    fn matmul_identities(a in arb_tensor(12)) {
        let ta = Tensor::from_vec(vec![3, 4], a).unwrap();
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        let prod = ta.matmul(&eye).unwrap();
        prop_assert_eq!(&prod, &ta);
        // (A B)^T = B^T A^T
        let b = eye.scale(2.0);
        let lhs = ta.matmul(&b).unwrap().transpose2();
        let rhs = b.transpose2().matmul(&ta.transpose2()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// The convolution is linear in its input: conv(x + y) = conv(x) + conv(y) for zero bias.
    #[test]
    fn convolution_is_linear_in_input(x in arb_tensor(2 * 6 * 6), y in arb_tensor(2 * 6 * 6), w in arb_tensor(3 * 2 * 9)) {
        let geom = ConvGeometry { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let tx = Tensor::from_vec(vec![2, 6, 6], x).unwrap();
        let ty = Tensor::from_vec(vec![2, 6, 6], y).unwrap();
        let tw = Tensor::from_vec(vec![3, 2, 3, 3], w).unwrap();
        let bias = Tensor::zeros(&[3]);
        let sum_then_conv = conv2d_forward(&geom, &tx.add(&ty).unwrap(), &tw, &bias).unwrap();
        let conv_then_sum = conv2d_forward(&geom, &tx, &tw, &bias)
            .unwrap()
            .add(&conv2d_forward(&geom, &ty, &tw, &bias).unwrap())
            .unwrap();
        for (a, b) in sum_then_conv.data().iter().zip(conv_then_sum.data()) {
            prop_assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    /// For stride 1, the input gradient equals a forward convolution of the (zero-padded) errors
    /// with the 180°-rotated, channel-transposed kernels — the exact equivalence the backward
    /// stage of the paper exploits (Fig. 5(a)).
    #[test]
    fn backward_input_equals_rotated_kernel_convolution(e in arb_tensor(3 * 5 * 5), w in arb_tensor(3 * 2 * 9)) {
        let geom = ConvGeometry { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let grad_out = Tensor::from_vec(vec![3, 5, 5], e).unwrap();
        let weights = Tensor::from_vec(vec![3, 2, 3, 3], w).unwrap();
        let grad_in = conv2d_backward_input(&geom, &grad_out, &weights, 5, 5).unwrap();

        // Build the transposed-and-rotated kernel tensor [N, M, K, K].
        let rotated = rotate_kernels_180(&weights);
        let mut swapped = Tensor::zeros(&[2, 3, 3, 3]);
        for m in 0..3 {
            for n in 0..2 {
                for ky in 0..3 {
                    for kx in 0..3 {
                        swapped.set(&[n, m, ky, kx], rotated.at(&[m, n, ky, kx]));
                    }
                }
            }
        }
        let geom_bw = ConvGeometry { in_channels: 3, out_channels: 2, kernel: 3, stride: 1, padding: 1 };
        let bias = Tensor::zeros(&[2]);
        let full = conv2d_forward(&geom_bw, &grad_out, &swapped, &bias).unwrap();
        for (a, b) in grad_in.data().iter().zip(full.data()) {
            prop_assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    /// Quantization is idempotent and never increases magnitude beyond the representable range.
    #[test]
    fn quantization_idempotent_and_bounded(v in -1000.0f32..1000.0, frac in 0u32..8) {
        for p in [Precision::Fx16 { frac_bits: frac + 4 }, Precision::Fx8 { frac_bits: frac }] {
            let q = p.quantize(v);
            prop_assert_eq!(p.quantize(q), q);
            prop_assert!(q.abs() <= p.max_value().abs() + 1.0 / (1 << frac) as f32);
        }
    }
}
