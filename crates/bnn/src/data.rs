//! Synthetic classification datasets.
//!
//! The paper trains on MNIST, CIFAR-10 and ImageNet, none of which can be downloaded in this
//! environment. The reproduction substitutes deterministic synthetic datasets with the same
//! tensor shapes: each class is a fixed random "template" image and every example is the class
//! template plus Gaussian pixel noise. This preserves what the reproduced experiments actually
//! measure — the training dynamics of Bayes-by-Backprop under different ε-handling strategies
//! and arithmetic precisions — while remaining fully reproducible from a seed.

use bnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr_free::StandardNormalBoxMuller;

/// Small internal Box–Muller helper so the crate needs no `rand_distr` dependency.
mod rand_distr_free {
    use rand::Rng;

    /// Draws standard normal values from a uniform RNG via the Box–Muller transform.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct StandardNormalBoxMuller;

    impl StandardNormalBoxMuller {
        /// Draws one standard normal value.
        pub fn sample(self, rng: &mut impl Rng) -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        }
    }
}

/// A labelled image dataset held in memory.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
    shape: Vec<usize>,
    classes: usize,
}

impl SyntheticDataset {
    /// Generates a dataset of `per_class` examples for each of `classes` classes with the given
    /// image `shape` (e.g. `[1, 28, 28]` for the MNIST stand-in, `[3, 32, 32]` for CIFAR-10).
    ///
    /// `noise` controls how much per-example Gaussian noise is added to the class template;
    /// larger values make the task harder.
    ///
    /// # Panics
    ///
    /// Panics if `classes` or `per_class` is zero.
    pub fn generate(
        shape: &[usize],
        classes: usize,
        per_class: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && per_class > 0, "dataset must have classes and examples");
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = StandardNormalBoxMuller;
        let len: usize = shape.iter().product();
        // One well-separated template per class.
        let templates: Vec<Vec<f32>> =
            (0..classes).map(|_| (0..len).map(|_| normal.sample(&mut rng)).collect()).collect();
        let mut images = Vec::with_capacity(classes * per_class);
        let mut labels = Vec::with_capacity(classes * per_class);
        for (class, template) in templates.iter().enumerate() {
            for _ in 0..per_class {
                let data: Vec<f32> =
                    template.iter().map(|&t| t + noise * normal.sample(&mut rng)).collect();
                images.push(Tensor::from_vec(shape.to_vec(), data).expect("length matches shape"));
                labels.push(class);
            }
        }
        // Deterministic interleave so minibatch-of-1 training sees classes round-robin.
        let mut order: Vec<usize> = (0..images.len()).collect();
        order.sort_by_key(|&i| (i % per_class, i / per_class));
        let images = order.iter().map(|&i| images[i].clone()).collect();
        let labels = order.iter().map(|&i| labels[i]).collect();
        Self { images, labels, shape: shape.to_vec(), classes }
    }

    /// Generates out-of-distribution inputs (pure noise, unrelated to any class template) used
    /// by the uncertainty example.
    pub fn out_of_distribution(shape: &[usize], count: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = StandardNormalBoxMuller;
        let len: usize = shape.iter().product();
        (0..count)
            .map(|_| {
                let data: Vec<f32> = (0..len).map(|_| 2.0 * normal.sample(&mut rng)).collect();
                Tensor::from_vec(shape.to_vec(), data).expect("length matches shape")
            })
            .collect()
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Returns `true` if the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Image shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The `index`-th example.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn example(&self, index: usize) -> (&Tensor, usize) {
        (&self.images[index], self.labels[index])
    }

    /// Iterates over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor, usize)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// Splits the dataset into a training and a validation part; `train_fraction` of every
    /// class goes to the training split.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not in `(0, 1)`.
    pub fn split(&self, train_fraction: f64) -> (Self, Self) {
        assert!(train_fraction > 0.0 && train_fraction < 1.0, "fraction must be in (0, 1)");
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1));
        let train = Self {
            images: self.images[..cut].to_vec(),
            labels: self.labels[..cut].to_vec(),
            shape: self.shape.clone(),
            classes: self.classes,
        };
        let val = Self {
            images: self.images[cut..].to_vec(),
            labels: self.labels[cut..].to_vec(),
            shape: self.shape.clone(),
            classes: self.classes,
        };
        (train, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let a = SyntheticDataset::generate(&[1, 8, 8], 3, 5, 0.2, 7);
        let b = SyntheticDataset::generate(&[1, 8, 8], 3, 5, 0.2, 7);
        assert_eq!(a.len(), 15);
        assert_eq!(a.shape(), &[1, 8, 8]);
        assert_eq!(a.classes(), 3);
        assert_eq!(a.example(0).0, b.example(0).0);
        assert_eq!(a.example(14).1, b.example(14).1);
    }

    #[test]
    fn classes_are_interleaved_for_round_robin_training() {
        let d = SyntheticDataset::generate(&[2], 3, 4, 0.1, 1);
        let first_labels: Vec<usize> = (0..3).map(|i| d.example(i).1).collect();
        assert_eq!(first_labels, vec![0, 1, 2]);
    }

    #[test]
    fn noise_zero_reproduces_templates_exactly_within_class() {
        let d = SyntheticDataset::generate(&[4], 2, 3, 0.0, 9);
        let (img_a, label_a) = d.example(0);
        let same_class: Vec<&Tensor> =
            d.iter().filter(|(_, l)| *l == label_a).map(|(img, _)| img).collect();
        for img in same_class {
            assert_eq!(img, img_a);
        }
    }

    #[test]
    fn split_preserves_total_count() {
        let d = SyntheticDataset::generate(&[2, 4, 4], 2, 10, 0.3, 3);
        let (train, val) = d.split(0.8);
        assert_eq!(train.len() + val.len(), d.len());
        assert!(!train.is_empty() && !val.is_empty());
    }

    #[test]
    fn ood_samples_have_requested_count_and_shape() {
        let ood = SyntheticDataset::out_of_distribution(&[1, 4, 4], 6, 2);
        assert_eq!(ood.len(), 6);
        assert!(ood.iter().all(|t| t.shape() == [1, 4, 4]));
    }

    #[test]
    fn different_classes_have_different_templates() {
        let d = SyntheticDataset::generate(&[16], 2, 1, 0.0, 5);
        let (a, la) = d.example(0);
        let (b, lb) = d.example(1);
        assert_ne!(la, lb);
        assert_ne!(a, b);
    }
}
