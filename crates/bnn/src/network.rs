//! Sequential Bayesian network container and model builders.

use crate::epsilon::EpsilonSource;
use crate::layers::{BayesConv2d, BayesLinear, FlattenLayer, Layer, MaxPoolLayer, ReluLayer};
use crate::variational::BayesConfig;
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::loss::softmax_inplace;
use bnn_tensor::{KernelConfig, Scratch, Tensor, TensorError};
use rand::Rng;

/// The Monte-Carlo predictive summary of one input under a frozen posterior: what a serving
/// engine returns per inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Predictive {
    /// Predictive class probabilities, averaged over the sampled models.
    pub mean: Tensor,
    /// Per-class variance across the sampled models' probabilities (epistemic spread).
    pub variance: Tensor,
    /// Predictive entropy of the mean, in nats.
    pub entropy: f32,
    /// Number of Monte-Carlo samples aggregated.
    pub samples: usize,
}

/// Reshapes a reusable output tensor only when its shape actually changed, so steady-state
/// calls that keep producing the same geometry never reallocate.
pub(crate) fn reuse_buffer(t: &mut Tensor, shape: &[usize]) {
    if t.shape() != shape {
        *t = Tensor::zeros(shape);
    }
}

/// A sequential stack of [`Layer`]s trained with Bayes-by-Backprop.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    config: BayesConfig,
    /// The per-replica scratch arena threaded through every layer call; owning it here keeps
    /// one arena per worker replica without widening the public API.
    scratch: Scratch,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Network").field("layers", &names).field("config", &self.config).finish()
    }
}

impl Network {
    /// Creates an empty network with the given Bayesian hyper-parameters.
    pub fn new(config: BayesConfig) -> Self {
        Self { layers: Vec::new(), config, scratch: Scratch::new() }
    }

    /// The network's Bayesian hyper-parameters.
    pub fn config(&self) -> &BayesConfig {
        &self.config
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Captures the network's complete trainable state as a
    /// [`NetworkSnapshot`](crate::snapshot::NetworkSnapshot) — the frozen-posterior artifact
    /// the checkpoint store persists. Activation caches are not captured (snapshots are taken
    /// at iteration boundaries, where they are empty).
    pub fn snapshot(&self) -> crate::snapshot::NetworkSnapshot {
        crate::snapshot::NetworkSnapshot {
            config: self.config,
            layers: self.layers.iter().map(|l| l.snapshot()).collect(),
        }
    }

    /// Number of ε values drawn per Monte-Carlo sample (one per Bayesian weight).
    pub fn epsilon_count(&self) -> usize {
        self.layers.iter().map(|l| l.epsilon_count()).sum()
    }

    /// Number of trainable scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Complexity loss accumulated by all Bayesian layers during the current iteration.
    pub fn complexity_loss(&self) -> f32 {
        self.layers.iter().map(|l| l.complexity_loss()).sum()
    }

    /// Prepares every layer for an iteration over `samples` Monte-Carlo samples, recycling
    /// any state a previous iteration left cached.
    pub fn begin_iteration(&mut self, samples: usize) {
        for layer in &mut self.layers {
            layer.begin_iteration(samples, &mut self.scratch);
        }
    }

    /// Forward pass of one sampled model.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_sample(
        &mut self,
        sample: usize,
        input: &Tensor,
        eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let mut x = self.scratch.take_tensor_copy(input);
        for layer in &mut self.layers {
            x = layer.forward(sample, x, eps, &mut self.scratch)?;
        }
        Ok(x)
    }

    /// Backward pass of one sampled model (layers traversed in reverse order, retrieving ε).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn backward_sample(
        &mut self,
        sample: usize,
        grad_output: &Tensor,
        eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let mut g = self.scratch.take_tensor_copy(grad_output);
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(sample, g, eps, &mut self.scratch)?;
        }
        Ok(g)
    }

    /// Returns a tensor that escaped the network (a forward output, a final gradient) to the
    /// internal scratch arena for reuse — how the trainer closes the zero-allocation loop.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.scratch.put_tensor(tensor);
    }

    /// Takes a zero-filled tensor from the network's internal arena — the counterpart of
    /// [`Network::recycle`] for drivers (like the trainer's fused forward stage) that need a
    /// short-lived buffer without allocating.
    pub fn take_buffer(&mut self, shape: &[usize]) -> Tensor {
        self.scratch.take_tensor(shape)
    }

    /// The kernel configuration (tier + GEMM worker budget) this network's layer stack
    /// dispatches on.
    pub fn kernel(&self) -> KernelConfig {
        self.scratch.kernel()
    }

    /// Replaces the kernel configuration the layer stack dispatches on. Bit-exact tiers
    /// ([`bnn_tensor::KernelTier::BIT_EXACT`]) and any `gemm_workers` count leave every
    /// output bit-identical; `FastMath` does not and is never a default.
    pub fn set_kernel(&mut self, kernel: KernelConfig) {
        self.scratch.set_kernel(kernel);
    }

    /// Forward pass of **all** sampled models at once over a sample-stacked copy of `input`
    /// (the fused-sampling path, PR 8): returns the stacked `[S, classes]` outputs. One
    /// [`Layer::forward_all`] call per layer replaces `S` per-layer visits, which turns the
    /// `S` matvecs of every linear layer into a single wide GEMM.
    ///
    /// Bit-identical to `sources.len()` individual [`Network::forward_sample`] calls; with
    /// `train = true` it also leaves identical per-sample caches and complexity sums behind,
    /// so the per-sample backward stage runs unchanged on top of a fused forward stage.
    /// Callers drive [`Network::begin_iteration`] first, exactly as with `forward_sample`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    ///
    /// # Panics
    ///
    /// Panics when `sources` is empty.
    pub fn forward_all_samples(
        &mut self,
        input: &Tensor,
        sources: &mut [Box<dyn EpsilonSource>],
        train: bool,
    ) -> Result<Tensor, TensorError> {
        let samples = sources.len();
        assert!(samples >= 1, "fused forward needs at least one ε source");
        let mut x = match input.shape() {
            &[c, h, w] => self.scratch.take_tensor(&[samples * c, h, w]),
            shape => self.scratch.take_tensor(&[samples, shape.iter().product()]),
        };
        let n = input.len();
        for s in 0..samples {
            x.data_mut()[s * n..(s + 1) * n].copy_from_slice(input.data());
        }
        for layer in &mut self.layers {
            x = layer.forward_all(x, samples, sources, train, &mut self.scratch)?;
        }
        Ok(x)
    }

    /// Applies accumulated updates on every layer.
    pub fn apply_update(&mut self, learning_rate: f32) {
        for layer in &mut self.layers {
            layer.apply_update(learning_rate);
        }
    }

    /// Predictive class probabilities for `input`, averaged over one forward pass per provided
    /// ε source (Monte-Carlo model averaging).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn predict(
        &mut self,
        input: &Tensor,
        sources: &mut [Box<dyn EpsilonSource>],
    ) -> Result<Tensor, TensorError> {
        assert!(!sources.is_empty(), "prediction needs at least one ε source");
        self.begin_iteration(sources.len());
        let mut mean: Option<Tensor> = None;
        for (s, src) in sources.iter_mut().enumerate() {
            let mut probs = self.forward_sample(s, input, src.as_mut())?;
            softmax_inplace(&mut probs);
            mean = Some(match mean {
                None => probs,
                Some(mut acc) => {
                    for (a, &p) in acc.data_mut().iter_mut().zip(probs.data()) {
                        *a += p;
                    }
                    self.scratch.put_tensor(probs);
                    acc
                }
            });
        }
        let inv_s = 1.0 / sources.len() as f32;
        let mut mean = mean.expect("at least one source");
        for v in mean.data_mut() {
            *v *= inv_s;
        }
        Ok(mean)
    }

    /// Predictive entropy (in nats) of a probability vector — the paper's motivating
    /// uncertainty measure.
    pub fn predictive_entropy(probabilities: &Tensor) -> f32 {
        -probabilities.data().iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()).sum::<f32>()
    }

    /// Monte-Carlo predictive summary for `input`: one forward pass per provided ε source,
    /// aggregated into predictive mean, per-class variance and predictive entropy.
    ///
    /// This is the inference-only path the serving engine (`bnn-serve`) drives: no backward
    /// pass runs, no ε is retrieved (forward-only sources like
    /// [`LfsrForward`](crate::epsilon::LfsrForward) suffice), and the result is a pure
    /// function of the frozen `(μ, ρ)` posterior, the input and the sources' seeds — which is
    /// what lets any worker replica produce bit-identical responses.
    ///
    /// The variance is the population variance over the `S` sampled probability vectors
    /// (`E[p²] − E[p]²`, clamped at zero against rounding), accumulated in the sources' order.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    ///
    /// # Panics
    ///
    /// Panics when `sources` is empty.
    pub fn predictive(
        &mut self,
        input: &Tensor,
        sources: &mut [Box<dyn EpsilonSource>],
    ) -> Result<Predictive, TensorError> {
        let mut out = Predictive {
            mean: Tensor::zeros(&[0]),
            variance: Tensor::zeros(&[0]),
            entropy: 0.0,
            samples: 0,
        };
        self.predictive_into(input, sources, &mut out)?;
        Ok(out)
    }

    /// [`Network::predictive`] into a caller-provided summary, reusing its buffers: the
    /// zero-allocation form the serving engine drives per request (bit-identical results).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    ///
    /// # Panics
    ///
    /// Panics when `sources` is empty.
    pub fn predictive_into(
        &mut self,
        input: &Tensor,
        sources: &mut [Box<dyn EpsilonSource>],
        out: &mut Predictive,
    ) -> Result<(), TensorError> {
        assert!(!sources.is_empty(), "predictive inference needs at least one ε source");
        self.begin_iteration(sources.len());
        let mut sum: Option<Tensor> = None;
        let mut sum_sq: Option<Tensor> = None;
        for (s, src) in sources.iter_mut().enumerate() {
            let mut probs = self.forward_sample(s, input, src.as_mut())?;
            softmax_inplace(&mut probs);
            // Zero-initialized accumulators added to in source order reproduce the old
            // fold exactly: probabilities are never −0.0, so `0.0 + p` has `p`'s bits.
            let (sum, sum_sq) = match (&mut sum, &mut sum_sq) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    sum = Some(self.scratch.take_tensor(probs.shape()));
                    sum_sq = Some(self.scratch.take_tensor(probs.shape()));
                    (sum.as_mut().unwrap(), sum_sq.as_mut().unwrap())
                }
            };
            for ((a, b), &p) in sum.data_mut().iter_mut().zip(sum_sq.data_mut()).zip(probs.data()) {
                *a += p;
                *b += p * p;
            }
            self.scratch.put_tensor(probs);
        }
        let sum = sum.expect("at least one source");
        let sum_sq = sum_sq.expect("at least one source");
        let inv_s = 1.0 / sources.len() as f32;
        reuse_buffer(&mut out.mean, sum.shape());
        reuse_buffer(&mut out.variance, sum.shape());
        for (m, &s) in out.mean.data_mut().iter_mut().zip(sum.data()) {
            *m = s * inv_s;
        }
        for ((v, &sq), &m) in
            out.variance.data_mut().iter_mut().zip(sum_sq.data()).zip(out.mean.data())
        {
            *v = (sq * inv_s - m * m).max(0.0);
        }
        out.entropy = Self::predictive_entropy(&out.mean);
        out.samples = sources.len();
        self.scratch.put_tensor(sum);
        self.scratch.put_tensor(sum_sq);
        Ok(())
    }

    /// [`Network::predictive_into`] on the fused-sampling path: the `S` forward passes run
    /// stacked through [`Network::forward_all_samples`] (inference-only, so Bayesian layers
    /// skip complexity-loss and cache work), then each stacked row is softmaxed and
    /// aggregated in sample order exactly as the per-sample path does.
    ///
    /// **Bit-identical** to `predictive_into` for the same `(posterior, input, sources)` —
    /// pinned by `bnn-serve`'s fused-identity tests and every committed response digest —
    /// and still zero-allocation per request once warmed up.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    ///
    /// # Panics
    ///
    /// Panics when `sources` is empty.
    pub fn predictive_fused_into(
        &mut self,
        input: &Tensor,
        sources: &mut [Box<dyn EpsilonSource>],
        out: &mut Predictive,
    ) -> Result<(), TensorError> {
        assert!(!sources.is_empty(), "predictive inference needs at least one ε source");
        let samples = sources.len();
        self.begin_iteration(samples);
        let stacked = self.forward_all_samples(input, sources, false)?;
        let classes = stacked.len() / samples;
        let mut probs = self.scratch.take_tensor(&[classes]);
        let mut sum = self.scratch.take_tensor(&[classes]);
        let mut sum_sq = self.scratch.take_tensor(&[classes]);
        for s in 0..samples {
            probs.data_mut().copy_from_slice(&stacked.data()[s * classes..(s + 1) * classes]);
            softmax_inplace(&mut probs);
            // Same zero-seeded, sample-ordered accumulation as `predictive_into`.
            for ((a, b), &p) in sum.data_mut().iter_mut().zip(sum_sq.data_mut()).zip(probs.data()) {
                *a += p;
                *b += p * p;
            }
        }
        let inv_s = 1.0 / samples as f32;
        reuse_buffer(&mut out.mean, sum.shape());
        reuse_buffer(&mut out.variance, sum.shape());
        for (m, &s) in out.mean.data_mut().iter_mut().zip(sum.data()) {
            *m = s * inv_s;
        }
        for ((v, &sq), &m) in
            out.variance.data_mut().iter_mut().zip(sum_sq.data()).zip(out.mean.data())
        {
            *v = (sq * inv_s - m * m).max(0.0);
        }
        out.entropy = Self::predictive_entropy(&out.mean);
        out.samples = samples;
        self.scratch.put_tensor(probs);
        self.scratch.put_tensor(sum);
        self.scratch.put_tensor(sum_sq);
        self.scratch.put_tensor(stacked);
        Ok(())
    }

    /// [`Network::predictive_fused_into`] into a fresh summary (the allocating convenience
    /// form, mirroring [`Network::predictive`]).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    ///
    /// # Panics
    ///
    /// Panics when `sources` is empty.
    pub fn predictive_fused(
        &mut self,
        input: &Tensor,
        sources: &mut [Box<dyn EpsilonSource>],
    ) -> Result<Predictive, TensorError> {
        let mut out = Predictive {
            mean: Tensor::zeros(&[0]),
            variance: Tensor::zeros(&[0]),
            entropy: 0.0,
            samples: 0,
        };
        self.predictive_fused_into(input, sources, &mut out)?;
        Ok(out)
    }

    /// Builds a Bayesian multi-layer perceptron: `input_dim → hidden… → classes` with ReLU
    /// between layers (the B-MLP family).
    pub fn bayes_mlp(
        input_dim: usize,
        hidden: &[usize],
        classes: usize,
        config: BayesConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let mut net = Network::new(config);
        let mut prev = input_dim;
        for &h in hidden {
            net.push(Box::new(BayesLinear::new(prev, h, config, rng)));
            net.push(Box::new(ReluLayer::new()));
            prev = h;
        }
        net.push(Box::new(BayesLinear::new(prev, classes, config, rng)));
        net
    }

    /// Builds a small Bayesian convolutional network in the LeNet style used by the paper's
    /// B-LeNet experiments: two conv+pool blocks followed by two fully-connected layers.
    ///
    /// `input_shape` is `[channels, height, width]`; height and width must be divisible by 4.
    ///
    /// # Panics
    ///
    /// Panics if the spatial size is not divisible by 4.
    pub fn bayes_lenet(
        input_shape: &[usize; 3],
        classes: usize,
        config: BayesConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let [c, h, w] = *input_shape;
        assert!(h % 4 == 0 && w % 4 == 0, "LeNet-style builder needs spatial size divisible by 4");
        let conv1 =
            ConvGeometry { in_channels: c, out_channels: 6, kernel: 3, stride: 1, padding: 1 };
        let conv2 =
            ConvGeometry { in_channels: 6, out_channels: 16, kernel: 3, stride: 1, padding: 1 };
        let flat = 16 * (h / 4) * (w / 4);
        let mut net = Network::new(config);
        net.push(Box::new(BayesConv2d::new(conv1, config, rng)));
        net.push(Box::new(ReluLayer::new()));
        net.push(Box::new(MaxPoolLayer::new(2)));
        net.push(Box::new(BayesConv2d::new(conv2, config, rng)));
        net.push(Box::new(ReluLayer::new()));
        net.push(Box::new(MaxPoolLayer::new(2)));
        net.push(Box::new(FlattenLayer::new()));
        net.push(Box::new(BayesLinear::new(flat, 64, config, rng)));
        net.push(Box::new(ReluLayer::new()));
        net.push(Box::new(BayesLinear::new(64, classes, config, rng)));
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::LfsrRetrieve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_builder_wires_expected_layers_and_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Network::bayes_mlp(10, &[8, 6], 3, BayesConfig::default(), &mut rng);
        // 3 linear + 2 relu layers.
        assert_eq!(net.len(), 5);
        assert_eq!(net.epsilon_count(), 10 * 8 + 8 * 6 + 6 * 3);
        assert!(net.parameter_count() > 2 * net.epsilon_count());
        assert!(!net.is_empty());
    }

    #[test]
    fn lenet_builder_produces_class_logits() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::bayes_lenet(&[1, 8, 8], 4, BayesConfig::default(), &mut rng);
        let mut eps = LfsrRetrieve::new(3).unwrap();
        net.begin_iteration(1);
        let out = net.forward_sample(0, &Tensor::filled(&[1, 8, 8], 0.5), &mut eps).unwrap();
        assert_eq!(out.shape(), &[4]);
    }

    #[test]
    fn forward_backward_round_trip_consumes_all_epsilons() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Network::bayes_mlp(6, &[5], 2, BayesConfig::default(), &mut rng);
        let mut eps = LfsrRetrieve::new(11).unwrap();
        net.begin_iteration(1);
        let out = net.forward_sample(0, &Tensor::filled(&[6], 1.0), &mut eps).unwrap();
        let grad = Tensor::filled(out.shape(), 1.0);
        net.backward_sample(0, &grad, &mut eps).unwrap();
        // All generated blocks were retrieved in reverse order; reset must not panic.
        use crate::epsilon::EpsilonSource;
        eps.reset_iteration();
        net.apply_update(0.01);
    }

    #[test]
    fn predict_returns_normalized_probabilities() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Network::bayes_mlp(4, &[6], 3, BayesConfig::default(), &mut rng);
        let mut sources: Vec<Box<dyn EpsilonSource>> = (0..4)
            .map(|i| Box::new(LfsrRetrieve::new(100 + i).unwrap()) as Box<dyn EpsilonSource>)
            .collect();
        let probs = net.predict(&Tensor::filled(&[4], 0.2), &mut sources).unwrap();
        assert_eq!(probs.shape(), &[3]);
        assert!((probs.sum() - 1.0).abs() < 1e-5);
        let entropy = Network::predictive_entropy(&probs);
        assert!(entropy >= 0.0 && entropy <= (3.0f32).ln() + 1e-5);
    }

    #[test]
    fn predictive_summary_is_consistent_with_predict() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Network::bayes_mlp(4, &[6], 3, BayesConfig::default(), &mut rng);
        let make_sources = || -> Vec<Box<dyn EpsilonSource>> {
            (0..5)
                .map(|i| {
                    Box::new(crate::epsilon::LfsrForward::new(200 + i).unwrap())
                        as Box<dyn EpsilonSource>
                })
                .collect()
        };
        let input = Tensor::filled(&[4], 0.3);
        let mut sources = make_sources();
        let summary = net.predictive(&input, &mut sources).unwrap();
        assert_eq!(summary.samples, 5);
        assert_eq!(summary.mean.shape(), &[3]);
        assert_eq!(summary.variance.shape(), &[3]);
        assert!((summary.mean.sum() - 1.0).abs() < 1e-5);
        assert!(summary.variance.data().iter().all(|&v| v >= 0.0));
        assert!(summary.entropy >= 0.0);
        // The mean must agree with `predict` given identically seeded sources.
        let mut sources = make_sources();
        let probs = net.predict(&input, &mut sources).unwrap();
        assert_eq!(summary.mean, probs);
        assert_eq!(summary.entropy, Network::predictive_entropy(&probs));
        // And the whole summary is reproducible from the seeds alone.
        let mut sources = make_sources();
        assert_eq!(net.predictive(&input, &mut sources).unwrap(), summary);
    }

    #[test]
    fn single_sample_predictive_has_zero_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Network::bayes_mlp(3, &[4], 2, BayesConfig::default(), &mut rng);
        let mut sources: Vec<Box<dyn EpsilonSource>> =
            vec![Box::new(crate::epsilon::LfsrForward::new(9).unwrap())];
        let summary = net.predictive(&Tensor::filled(&[3], 1.0), &mut sources).unwrap();
        assert!(summary.variance.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "without a cached forward")]
    fn backward_without_forward_panics_even_after_an_inference_pass() {
        // begin_iteration recycles forward-only caches, so a stray backward cannot silently
        // consume a previous iteration's activations.
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Network::bayes_mlp(3, &[4], 2, BayesConfig::default(), &mut rng);
        let mut sources: Vec<Box<dyn EpsilonSource>> =
            vec![Box::new(crate::epsilon::LfsrForward::new(5).unwrap())];
        net.predictive(&Tensor::filled(&[3], 0.5), &mut sources).unwrap();
        net.begin_iteration(1);
        let mut eps = LfsrRetrieve::new(6).unwrap();
        let _ = net.backward_sample(0, &Tensor::filled(&[2], 1.0), &mut eps);
    }

    #[test]
    fn debug_lists_layer_names() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::bayes_mlp(2, &[2], 2, BayesConfig::default(), &mut rng);
        let dbg = format!("{net:?}");
        assert!(dbg.contains("bayes_linear"));
        assert!(dbg.contains("relu"));
    }
}
