//! The Bayes-by-Backprop training loop.
//!
//! The trainer mirrors the computation flow of the paper's Fig. 1(a): per training example it
//! runs the forward stage for all `S` sampled models, computes the loss, runs the backward and
//! gradient-calculation stages per sample (reconstructing weights from retrieved ε), averages
//! the parameter gradients over the samples, and applies the update. Each sampled model owns its
//! own [`EpsilonSource`], matching the per-SPU GRNGs of the accelerator.

use crate::data::SyntheticDataset;
use crate::epsilon::{EpsilonSource, LfsrRetrieve, StoreReplay};
use crate::network::Network;
use crate::snapshot::TrainerSnapshot;
use bnn_lfsr::LfsrError;
use bnn_tensor::loss::softmax_cross_entropy_owned;
use bnn_tensor::{Tensor, TensorError};

/// How the forward-stage ε are made available to the backward stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EpsilonStrategy {
    /// Store every ε (the baseline's off-chip round trip).
    StoreReplay,
    /// Regenerate every ε by reversed LFSR shifting (Shift-BNN).
    #[default]
    LfsrRetrieve,
}

/// Trainer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of Monte-Carlo samples `S` per training example.
    pub samples: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// ε handling strategy.
    pub strategy: EpsilonStrategy,
    /// Base seed for the per-sample GRNGs.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self { samples: 8, learning_rate: 0.05, strategy: EpsilonStrategy::LfsrRetrieve, seed: 1 }
    }
}

/// Metrics of one training step (one example, `S` samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMetrics {
    /// Mean negative log-likelihood over the samples.
    pub nll: f32,
    /// Mean weighted complexity term (posterior − prior) over the samples.
    pub complexity: f32,
    /// Total loss (`nll + complexity`).
    pub total_loss: f32,
}

/// Metrics of one pass over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Mean total loss across the epoch's steps.
    pub mean_loss: f32,
    /// Mean negative log-likelihood across the epoch's steps.
    pub mean_nll: f32,
    /// Number of training steps taken.
    pub steps: usize,
}

/// Errors produced by the trainer.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Building a GRNG failed.
    Lfsr(LfsrError),
    /// A tensor shape did not match the network.
    Tensor(TensorError),
    /// A trainer snapshot was inconsistent with its own configuration (e.g. the wrong number
    /// of ε source captures for the configured sample count).
    Snapshot(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Lfsr(e) => write!(f, "epsilon source error: {e}"),
            TrainError::Tensor(e) => write!(f, "tensor error: {e}"),
            TrainError::Snapshot(detail) => write!(f, "inconsistent trainer snapshot: {detail}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<LfsrError> for TrainError {
    fn from(e: LfsrError) -> Self {
        TrainError::Lfsr(e)
    }
}

impl From<TensorError> for TrainError {
    fn from(e: TensorError) -> Self {
        TrainError::Tensor(e)
    }
}

/// Drives Bayes-by-Backprop training of a [`Network`].
pub struct Trainer {
    network: Network,
    sources: Vec<Box<dyn EpsilonSource>>,
    config: TrainerConfig,
    /// Training steps (examples) completed so far; carried through snapshots so a resumed
    /// run continues the count of the uninterrupted one.
    steps: u64,
    /// Per-sample loss gradients held between the forward and backward stages; the tensors
    /// cycle through the network's scratch arena, so the steady state allocates nothing.
    grad_store: Vec<Tensor>,
    /// Whether the forward stage runs fused (all `S` sampled passes stacked through
    /// [`Network::forward_all_samples`]). Runtime-only — never serialized: the fused stage
    /// is bit-identical to the per-sample one, so it is not part of the training recipe.
    fused_forward: bool,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("network", &self.network)
            .field("config", &self.config)
            .field("sources", &self.sources.len())
            .finish()
    }
}

fn build_sources(config: &TrainerConfig) -> Result<Vec<Box<dyn EpsilonSource>>, LfsrError> {
    (0..config.samples.max(1))
        .map(|s| {
            let seed =
                config.seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(s as u64 + 1));
            Ok(match config.strategy {
                EpsilonStrategy::StoreReplay => {
                    Box::new(StoreReplay::new(seed)?) as Box<dyn EpsilonSource>
                }
                EpsilonStrategy::LfsrRetrieve => {
                    Box::new(LfsrRetrieve::new(seed)?) as Box<dyn EpsilonSource>
                }
            })
        })
        .collect()
}

impl Trainer {
    /// Creates a trainer for `network`, building one ε source per Monte-Carlo sample.
    ///
    /// # Errors
    ///
    /// Returns an error if GRNG construction fails.
    pub fn new(network: Network, config: TrainerConfig) -> Result<Self, TrainError> {
        let sources = build_sources(&config)?;
        Ok(Self {
            network,
            sources,
            config,
            steps: 0,
            grad_store: Vec::new(),
            fused_forward: false,
        })
    }

    /// Rebuilds a trainer from a [`TrainerSnapshot`], bit-exactly: the network, the step
    /// count and every ε source resume precisely where [`Trainer::snapshot`] captured them,
    /// so continued training reproduces the uninterrupted run's posteriors and loss trace
    /// down to the bit (pinned by `crates/store`'s resume-determinism test).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Snapshot`] when the capture disagrees with its own
    /// configuration, and propagates network/ε-source restoration failures.
    pub fn from_snapshot(snapshot: &TrainerSnapshot) -> Result<Self, TrainError> {
        let network = snapshot.network.build()?;
        let mut trainer = Trainer::new(network, snapshot.config)?;
        if snapshot.sources.len() != trainer.sources.len() {
            return Err(TrainError::Snapshot(format!(
                "{} source captures for {} configured samples",
                snapshot.sources.len(),
                trainer.sources.len()
            )));
        }
        for (source, state) in trainer.sources.iter_mut().zip(&snapshot.sources) {
            source.restore(state)?;
        }
        trainer.steps = snapshot.steps;
        Ok(trainer)
    }

    /// Captures the complete training state at the current iteration boundary (posterior,
    /// configuration, step count, per-sample GRNG registers). See [`TrainerSnapshot`].
    ///
    /// # Panics
    ///
    /// Panics if called mid-iteration — possible only if a previous
    /// [`Trainer::train_example`] errored out partway; completed calls always leave the
    /// sources at a boundary.
    pub fn snapshot(&self) -> TrainerSnapshot {
        TrainerSnapshot {
            network: self.network.snapshot(),
            config: self.config,
            steps: self.steps,
            sources: self.sources.iter().map(|s| s.state()).collect(),
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Training steps (examples) completed so far, counted across snapshot/resume.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The trained network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the trained network (for inspection between epochs).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Total ε values that had to be stored off-chip so far (zero under LFSR retrieval).
    pub fn stored_epsilons(&self) -> u64 {
        self.sources.iter().map(|s| s.stored_values()).sum()
    }

    /// Enables or disables the fused forward stage: all `S` sampled forward passes batched
    /// through [`Network::forward_all_samples`] instead of `S` per-sample walks. Off by
    /// default. A runtime knob rather than a [`TrainerConfig`] field because the config is
    /// persisted inside checkpoints and the fused stage changes **no bit** of the training
    /// trajectory (pinned by the fused-training identity test) — a resumed run may toggle it
    /// freely.
    pub fn set_fused_forward(&mut self, fused: bool) {
        self.fused_forward = fused;
    }

    /// Whether the fused forward stage is enabled.
    pub fn fused_forward(&self) -> bool {
        self.fused_forward
    }

    /// Trains on one example (minibatch of 1, as the paper's characterization assumes).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if the input shape does not match the network.
    pub fn train_example(
        &mut self,
        image: &Tensor,
        label: usize,
    ) -> Result<StepMetrics, TrainError> {
        let samples = self.config.samples.max(1);
        self.network.begin_iteration(samples);

        // Forward stage for every sampled model, recording the per-sample loss gradient
        // (computed in place in the logits buffer — no per-sample allocation). The store is
        // normally drained by the backward loop; clearing defends against a previous call
        // that errored mid-iteration and left stale gradients behind.
        self.grad_store.clear();
        let mut nll_sum = 0.0f32;
        if self.fused_forward {
            // Fused stage: one stacked walk leaves bit-identical per-sample caches behind,
            // so the per-sample backward loop below runs unchanged.
            let stacked = self.network.forward_all_samples(image, &mut self.sources, true)?;
            let classes = stacked.len() / samples;
            for s in 0..samples {
                let mut logits = self.network.take_buffer(&[classes]);
                logits.data_mut().copy_from_slice(&stacked.data()[s * classes..(s + 1) * classes]);
                let (nll, grad) = softmax_cross_entropy_owned(logits, label);
                nll_sum += nll;
                self.grad_store.push(grad);
            }
            self.network.recycle(stacked);
        } else {
            for (s, source) in self.sources.iter_mut().enumerate() {
                let logits = self.network.forward_sample(s, image, source.as_mut())?;
                let (nll, grad) = softmax_cross_entropy_owned(logits, label);
                nll_sum += nll;
                self.grad_store.push(grad);
            }
        }

        // Backward + gradient-calculation stages, sample by sample, retrieving ε. The loss
        // gradients and the returned input gradients both recycle into the network's arena.
        for (s, (source, grad)) in
            self.sources.iter_mut().zip(self.grad_store.drain(..)).enumerate()
        {
            let grad_image = self.network.backward_sample(s, &grad, source.as_mut())?;
            self.network.recycle(grad_image);
            self.network.recycle(grad);
            source.reset_iteration();
        }

        let complexity = self.network.complexity_loss() / samples as f32;
        self.network.apply_update(self.config.learning_rate);
        self.steps += 1;

        let nll = nll_sum / samples as f32;
        Ok(StepMetrics { nll, complexity, total_loss: nll + complexity })
    }

    /// Trains one epoch over a dataset.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] on the first failing step.
    pub fn train_epoch(&mut self, dataset: &SyntheticDataset) -> Result<EpochMetrics, TrainError> {
        let mut loss_sum = 0.0f32;
        let mut nll_sum = 0.0f32;
        let mut steps = 0usize;
        for (image, label) in dataset.iter() {
            let m = self.train_example(image, label)?;
            loss_sum += m.total_loss;
            nll_sum += m.nll;
            steps += 1;
        }
        Ok(EpochMetrics {
            mean_loss: if steps > 0 { loss_sum / steps as f32 } else { 0.0 },
            mean_nll: if steps > 0 { nll_sum / steps as f32 } else { 0.0 },
            steps,
        })
    }

    /// Classification accuracy on a dataset, using Monte-Carlo averaging over
    /// `config.samples` forward passes with evaluation-only ε sources.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if shapes mismatch.
    pub fn evaluate(&mut self, dataset: &SyntheticDataset) -> Result<f64, TrainError> {
        if dataset.is_empty() {
            return Ok(0.0);
        }
        let eval_config = TrainerConfig { seed: self.config.seed ^ 0x5EED_5EED, ..self.config };
        let mut correct = 0usize;
        for (image, label) in dataset.iter() {
            let mut sources = build_sources(&eval_config)?;
            let probs = self.network.predict(image, &mut sources)?;
            if probs.argmax() == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / dataset.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variational::BayesConfig;
    use bnn_tensor::Precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> SyntheticDataset {
        SyntheticDataset::generate(&[6], 2, 8, 0.15, 11)
    }

    fn mlp(seed: u64, precision: Precision) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let config =
            BayesConfig { kl_weight: 1e-3, ..BayesConfig::default() }.with_precision(precision);
        Network::bayes_mlp(6, &[12], 2, config, &mut rng)
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let dataset = tiny_dataset();
        let mut trainer = Trainer::new(
            mlp(1, Precision::Fp32),
            TrainerConfig { samples: 4, learning_rate: 0.1, ..TrainerConfig::default() },
        )
        .unwrap();
        let first = trainer.train_epoch(&dataset).unwrap();
        let mut last = first;
        for _ in 0..14 {
            last = trainer.train_epoch(&dataset).unwrap();
        }
        assert!(
            last.mean_nll < first.mean_nll,
            "nll should fall: first {} last {}",
            first.mean_nll,
            last.mean_nll
        );
        let acc = trainer.evaluate(&dataset).unwrap();
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn store_replay_and_lfsr_retrieve_train_bit_identically() {
        // The paper's central accuracy claim: LFSR reversal changes nothing about training.
        let dataset = tiny_dataset();
        let base =
            TrainerConfig { samples: 3, learning_rate: 0.05, seed: 42, ..TrainerConfig::default() };
        let mut baseline = Trainer::new(
            mlp(7, Precision::Fp32),
            TrainerConfig { strategy: EpsilonStrategy::StoreReplay, ..base },
        )
        .unwrap();
        let mut shift = Trainer::new(
            mlp(7, Precision::Fp32),
            TrainerConfig { strategy: EpsilonStrategy::LfsrRetrieve, ..base },
        )
        .unwrap();
        for _ in 0..3 {
            let mb = baseline.train_epoch(&dataset).unwrap();
            let ms = shift.train_epoch(&dataset).unwrap();
            assert_eq!(mb, ms, "per-epoch metrics must be bit-identical");
        }
        assert!(baseline.stored_epsilons() > 0);
        assert_eq!(shift.stored_epsilons(), 0);
    }

    #[test]
    fn quantized_training_still_learns_with_16_bits() {
        let dataset = tiny_dataset();
        let mut trainer = Trainer::new(
            mlp(3, Precision::PAPER_16BIT),
            TrainerConfig { samples: 2, learning_rate: 0.1, ..TrainerConfig::default() },
        )
        .unwrap();
        for _ in 0..12 {
            trainer.train_epoch(&dataset).unwrap();
        }
        let acc = trainer.evaluate(&dataset).unwrap();
        assert!(acc > 0.6, "16-bit training accuracy {acc}");
    }

    #[test]
    fn stored_epsilon_count_matches_samples_times_weights_per_step() {
        let mut trainer = Trainer::new(
            mlp(5, Precision::Fp32),
            TrainerConfig {
                samples: 2,
                strategy: EpsilonStrategy::StoreReplay,
                ..TrainerConfig::default()
            },
        )
        .unwrap();
        let weights = trainer.network().epsilon_count() as u64;
        let dataset = SyntheticDataset::generate(&[6], 2, 1, 0.1, 1);
        trainer.train_epoch(&dataset).unwrap();
        assert_eq!(trainer.stored_epsilons(), 2 * weights * dataset.len() as u64);
    }

    #[test]
    fn error_type_formats_cleanly() {
        let e = TrainError::Lfsr(LfsrError::ZeroSeed);
        assert!(e.to_string().contains("epsilon source"));
        let e = TrainError::Snapshot("3 captures for 2 samples".into());
        assert!(e.to_string().contains("3 captures"));
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_training() {
        let dataset = tiny_dataset();
        let config = TrainerConfig { samples: 3, learning_rate: 0.07, ..TrainerConfig::default() };
        let mut uninterrupted = Trainer::new(mlp(9, Precision::Fp32), config).unwrap();
        let mut first_leg = Trainer::new(mlp(9, Precision::Fp32), config).unwrap();
        // First leg: one epoch, then snapshot at the boundary.
        uninterrupted.train_epoch(&dataset).unwrap();
        first_leg.train_epoch(&dataset).unwrap();
        let snapshot = first_leg.snapshot();
        assert_eq!(snapshot.steps, dataset.len() as u64);
        drop(first_leg);
        // Second leg: resumed trainer must replay the uninterrupted run bit-for-bit.
        let mut resumed = Trainer::from_snapshot(&snapshot).unwrap();
        assert_eq!(resumed.steps(), dataset.len() as u64);
        for (image, label) in dataset.iter() {
            let a = uninterrupted.train_example(image, label).unwrap();
            let b = resumed.train_example(image, label).unwrap();
            assert_eq!(a, b, "resumed step metrics diverged");
        }
        let final_a = uninterrupted.snapshot();
        let final_b = resumed.snapshot();
        assert_eq!(final_a.network, final_b.network, "posteriors diverged after resume");
        assert_eq!(final_a.sources, final_b.sources, "GRNG states diverged after resume");
        assert_eq!(final_a.steps, final_b.steps);
    }

    #[test]
    fn from_snapshot_rejects_source_count_mismatch() {
        let trainer = Trainer::new(mlp(2, Precision::Fp32), TrainerConfig::default()).unwrap();
        let mut snapshot = trainer.snapshot();
        snapshot.sources.pop();
        assert!(matches!(Trainer::from_snapshot(&snapshot), Err(TrainError::Snapshot(_))));
    }
}
