//! Sources of the Gaussian random variables ε used for weight sampling.
//!
//! The paper contrasts two ways of making the forward-stage ε available again to the backward
//! and gradient-calculation stages:
//!
//! * the **baseline** stores every ε off-chip after the forward stage and fetches it back later
//!   ([`StoreReplay`]);
//! * **Shift-BNN** regenerates every ε locally by shifting its LFSRs backwards
//!   ([`LfsrRetrieve`]), so nothing is ever stored.
//!
//! Both implement [`EpsilonSource`]; a training run wired to either must produce *bit-identical*
//! results (the paper's "no accuracy loss" claim), which the crate's tests assert.
//!
//! The hot path uses the `*_into` block APIs: they fill caller-provided buffers (no per-block
//! allocation) and ride the word-parallel 64-step LFSR batching of
//! [`Grng::fill_epsilon`](bnn_lfsr::Grng::fill_epsilon). The `Vec`-returning methods remain as
//! convenience wrappers that delegate to the `*_into` forms, so both paths draw the exact same
//! stream.

use bnn_lfsr::{Grng, GrngMode, GrngState, LfsrError};

/// A restorable capture of an [`EpsilonSource`] at an **iteration boundary** (every generated
/// block drained, nothing buffered): the generator register capture plus the storage counter.
/// This is what the checkpoint store serializes per Monte-Carlo sample so a resumed training
/// run draws the identical ε stream the uninterrupted run would have drawn.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceState {
    /// The underlying GRNG capture.
    pub grng: GrngState,
    /// Total ε values stored off-chip so far ([`EpsilonSource::stored_values`]; zero for the
    /// LFSR sources).
    pub stored: u64,
}

/// A provider of ε blocks for one sampled model (one SPU's worth of training).
///
/// The forward stage calls [`generate_block_into`](EpsilonSource::generate_block_into) once per
/// Bayesian layer, in layer order. The backward stage calls
/// [`retrieve_block_into`](EpsilonSource::retrieve_block_into) once per Bayesian layer, in
/// *reverse* layer order, and must receive exactly the values generated for that layer, in
/// generation order.
pub trait EpsilonSource {
    /// Draws fresh ε values during the forward stage into `out`, in generation order, without
    /// allocating.
    fn generate_block_into(&mut self, out: &mut [f32]);

    /// Writes the most recently generated and not-yet-retrieved block of `out.len()` ε values
    /// into `out`, in generation order, without allocating. Blocks must be retrieved in
    /// exactly the reverse of generation order (last layer first), mirroring backpropagation.
    fn retrieve_block_into(&mut self, out: &mut [f32]);

    /// Re-initializes the source in place as if freshly constructed with `seed`, reusing its
    /// buffers — what lets a serving replica reuse one source across requests without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Sources over narrow width-ablation registers panic if `seed`'s low `width` bits are
    /// all zero (the same seeds fresh construction rejects with
    /// [`LfsrError::ZeroSeed`]); the 256-bit default sources accept every seed, since their
    /// splitmix expansion is never all-zero.
    fn reseed(&mut self, seed: u64);

    /// Draws `count` fresh ε values during the forward stage, in generation order
    /// (allocating convenience wrapper over
    /// [`generate_block_into`](EpsilonSource::generate_block_into)).
    fn generate_block(&mut self, count: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; count];
        self.generate_block_into(&mut out);
        out
    }

    /// Returns the most recently generated and not-yet-retrieved block of `count` ε values, in
    /// generation order (allocating convenience wrapper over
    /// [`retrieve_block_into`](EpsilonSource::retrieve_block_into)).
    fn retrieve_block(&mut self, count: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; count];
        self.retrieve_block_into(&mut out);
        out
    }

    /// Captures the source's state at an iteration boundary for later [`restore`]
    /// (see [`SourceState`]) — the per-sample payload of a training checkpoint.
    ///
    /// [`restore`]: EpsilonSource::restore
    ///
    /// # Panics
    ///
    /// Panics when called mid-iteration (generated blocks not yet drained, or the iteration
    /// not yet reset): a snapshot there could not resume deterministically, because the
    /// buffered blocks are not part of the capture.
    fn state(&self) -> SourceState;

    /// Restores a state captured by [`state`](EpsilonSource::state) into this source in
    /// place, after which the source continues the captured ε stream exactly where it left
    /// off. The generator is replaced wholesale — the capture's register geometry (width,
    /// taps) takes over, whatever this source was configured with before. Any buffered
    /// blocks are discarded (their buffers recycled).
    ///
    /// # Errors
    ///
    /// Returns an [`LfsrError`] when the capture is internally inconsistent (invalid
    /// geometry, stray bits, pop-count drift — see [`bnn_lfsr::Grng::from_state`]); the
    /// current state is left untouched.
    fn restore(&mut self, state: &SourceState) -> Result<(), LfsrError>;

    /// Whether this source has to move ε off-chip between stages (true for the baseline,
    /// false for LFSR retrieval).
    fn stores_offchip(&self) -> bool;

    /// Total number of ε values this source has had to store so far (zero for LFSR retrieval).
    fn stored_values(&self) -> u64;

    /// Prepares the source for the next training iteration (both directions drained).
    fn reset_iteration(&mut self);
}

/// Baseline ε handling: values are generated by an LFSR-backed GRNG during the forward stage and
/// *stored* (modelling the off-chip round trip) for the backward stage. Stored blocks are
/// recycled through an internal free list, so the steady state allocates nothing even though it
/// models the full storage traffic.
#[derive(Debug)]
pub struct StoreReplay {
    grng: Grng,
    stack: Vec<Vec<f32>>,
    free: Vec<Vec<f32>>,
    stored: u64,
}

impl StoreReplay {
    /// Creates a store-and-replay source whose generator is a 256-bit Shift-BNN GRNG seeded
    /// with `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError`] from GRNG construction.
    pub fn new(seed: u64) -> Result<Self, LfsrError> {
        Ok(Self {
            grng: Grng::shift_bnn_default(seed)?,
            stack: Vec::new(),
            free: Vec::new(),
            stored: 0,
        })
    }
}

impl EpsilonSource for StoreReplay {
    fn generate_block_into(&mut self, out: &mut [f32]) {
        self.grng.set_mode(GrngMode::Forward);
        self.grng.fill_epsilon(out);
        self.stored += out.len() as u64;
        let mut copy = self.free.pop().unwrap_or_default();
        copy.clear();
        copy.extend_from_slice(out);
        self.stack.push(copy);
    }

    fn retrieve_block_into(&mut self, out: &mut [f32]) {
        let block = self.stack.pop().expect("retrieve called more times than generate");
        assert_eq!(block.len(), out.len(), "retrieved block size does not match request");
        out.copy_from_slice(&block);
        self.free.push(block);
    }

    fn reseed(&mut self, seed: u64) {
        self.grng.reseed_shift_bnn(seed);
        while let Some(block) = self.stack.pop() {
            self.free.push(block);
        }
        self.stored = 0;
    }

    fn state(&self) -> SourceState {
        assert!(self.stack.is_empty(), "snapshot requires an iteration boundary (blocks stored)");
        SourceState { grng: self.grng.state(), stored: self.stored }
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), LfsrError> {
        self.grng.restore(&state.grng)?;
        while let Some(block) = self.stack.pop() {
            self.free.push(block);
        }
        self.stored = state.stored;
        Ok(())
    }

    fn stores_offchip(&self) -> bool {
        true
    }

    fn stored_values(&self) -> u64 {
        self.stored
    }

    fn reset_iteration(&mut self) {
        assert!(self.stack.is_empty(), "not all stored ε blocks were consumed");
    }
}

/// Shift-BNN ε handling: values are regenerated during the backward stage by shifting the same
/// LFSR backwards, storing nothing.
///
/// After a full backward pass the LFSR has returned to the pattern it held at the start of the
/// iteration. So that consecutive iterations keep drawing *fresh* Gaussian noise — exactly as the
/// forward-only baseline does — [`reset_iteration`](EpsilonSource::reset_iteration) fast-forwards
/// the register past the patterns consumed this iteration. This costs only local shifts (no
/// memory traffic) and makes the ε stream of Shift-BNN bit-identical to the baseline's across an
/// entire training run.
#[derive(Debug)]
pub struct LfsrRetrieve {
    grng: Grng,
    /// Whether the GRNG came from the 256-bit Shift-BNN default construction (as opposed to an
    /// explicit-width ablation register); reseeding must reproduce the same construction.
    default_seeded: bool,
    /// Sizes of generated blocks, kept only to validate the caller's retrieval pattern; the
    /// hardware needs no such bookkeeping because the dataflow guarantees the order.
    block_sizes: Vec<usize>,
    /// ε generated during the current iteration, used to fast-forward at iteration end.
    generated_this_iteration: usize,
}

impl LfsrRetrieve {
    /// Creates an LFSR-retrieval source using a 256-bit Shift-BNN GRNG seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError`] from GRNG construction.
    pub fn new(seed: u64) -> Result<Self, LfsrError> {
        Ok(Self {
            grng: Grng::shift_bnn_default(seed)?,
            default_seeded: true,
            block_sizes: Vec::new(),
            generated_this_iteration: 0,
        })
    }

    /// Creates a source over a GRNG of arbitrary LFSR width (used by width-ablation tests).
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError`] from GRNG construction.
    pub fn with_width(width: usize, seed: u64) -> Result<Self, LfsrError> {
        Ok(Self {
            grng: Grng::new(width, seed)?,
            default_seeded: false,
            block_sizes: Vec::new(),
            generated_this_iteration: 0,
        })
    }
}

impl EpsilonSource for LfsrRetrieve {
    fn generate_block_into(&mut self, out: &mut [f32]) {
        self.grng.set_mode(GrngMode::Forward);
        self.block_sizes.push(out.len());
        self.generated_this_iteration += out.len();
        self.grng.fill_epsilon(out);
    }

    fn retrieve_block_into(&mut self, out: &mut [f32]) {
        let expected = self.block_sizes.pop().expect("retrieve called more times than generate");
        assert_eq!(expected, out.len(), "blocks must be retrieved in reverse generation order");
        self.grng.set_mode(GrngMode::Backward);
        // Backward shifting yields the block's values last-first; `fill_retrieved` writes
        // back-to-front so `out` ends up in generation order.
        self.grng.fill_retrieved(out);
    }

    fn reseed(&mut self, seed: u64) {
        if self.default_seeded {
            self.grng.reseed_shift_bnn(seed);
        } else {
            self.grng.reseed_plain(seed).expect("reseed seed masks to zero in this register width");
        }
        self.block_sizes.clear();
        self.generated_this_iteration = 0;
    }

    fn state(&self) -> SourceState {
        assert!(
            self.block_sizes.is_empty() && self.generated_this_iteration == 0,
            "snapshot requires an iteration boundary (blocks generated but not reset)"
        );
        SourceState { grng: self.grng.state(), stored: 0 }
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), LfsrError> {
        self.grng.restore(&state.grng)?;
        self.block_sizes.clear();
        self.generated_this_iteration = 0;
        Ok(())
    }

    fn stores_offchip(&self) -> bool {
        false
    }

    fn stored_values(&self) -> u64 {
        0
    }

    fn reset_iteration(&mut self) {
        assert!(self.block_sizes.is_empty(), "not all generated ε blocks were retrieved");
        // Skip past the patterns consumed this iteration so the next iteration draws fresh
        // noise, exactly like the forward-only baseline generator would.
        self.grng.set_mode(GrngMode::Forward);
        self.grng.skip_forward(self.generated_this_iteration);
        self.generated_this_iteration = 0;
    }
}

/// Inference-time ε handling: a forward-only stream over the same Shift-BNN GRNG.
///
/// Serving a Bayesian posterior never backpropagates, so it never *retrieves* — but the
/// paper's storage argument carries over to the serving side: because the whole ε ensemble of
/// a request is regenerated from a 64-bit seed by LFSR shifting, nothing per-request is ever
/// stored or shipped between replicas. Any engine worker holding the frozen `(μ, ρ)` posterior
/// reproduces a request's exact sampled ensemble from its seed alone, which is what makes
/// batched multi-worker inference bit-deterministic.
///
/// Unlike [`LfsrRetrieve`] this source keeps **no** block bookkeeping at all — it is a pure
/// generator. Calling [`retrieve_block_into`](EpsilonSource::retrieve_block_into) on it panics.
#[derive(Debug)]
pub struct LfsrForward {
    grng: Grng,
}

impl LfsrForward {
    /// Creates a forward-only source using a 256-bit Shift-BNN GRNG seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError`] from GRNG construction.
    pub fn new(seed: u64) -> Result<Self, LfsrError> {
        Ok(Self { grng: Grng::shift_bnn_default(seed)? })
    }
}

impl EpsilonSource for LfsrForward {
    fn generate_block_into(&mut self, out: &mut [f32]) {
        self.grng.set_mode(GrngMode::Forward);
        self.grng.fill_epsilon(out);
    }

    fn retrieve_block_into(&mut self, _out: &mut [f32]) {
        panic!("LfsrForward is inference-only: retrieve_block has no backward stage to serve");
    }

    fn reseed(&mut self, seed: u64) {
        self.grng.reseed_shift_bnn(seed);
    }

    fn state(&self) -> SourceState {
        // A pure generator has no buffered blocks: every point of its stream is a boundary.
        SourceState { grng: self.grng.state(), stored: 0 }
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), LfsrError> {
        self.grng.restore(&state.grng)
    }

    fn stores_offchip(&self) -> bool {
        false
    }

    fn stored_values(&self) -> u64 {
        0
    }

    fn reset_iteration(&mut self) {
        // A pure generator has nothing to validate or fast-forward: the next forward pass
        // simply continues the stream.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(source: &mut dyn EpsilonSource) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let sizes = [9usize, 4, 25, 1];
        let generated: Vec<Vec<f32>> = sizes.iter().map(|&s| source.generate_block(s)).collect();
        let mut retrieved: Vec<Vec<f32>> =
            sizes.iter().rev().map(|&s| source.retrieve_block(s)).collect();
        retrieved.reverse();
        source.reset_iteration();
        (generated, retrieved)
    }

    #[test]
    fn store_replay_returns_identical_blocks() {
        let mut src = StoreReplay::new(42).unwrap();
        let (generated, retrieved) = exercise(&mut src);
        assert_eq!(generated, retrieved);
        assert!(src.stores_offchip());
        assert_eq!(src.stored_values(), 9 + 4 + 25 + 1);
    }

    #[test]
    fn lfsr_retrieve_returns_identical_blocks_without_storing() {
        let mut src = LfsrRetrieve::new(42).unwrap();
        let (generated, retrieved) = exercise(&mut src);
        assert_eq!(generated, retrieved);
        assert!(!src.stores_offchip());
        assert_eq!(src.stored_values(), 0);
    }

    #[test]
    fn both_sources_agree_for_the_same_seed() {
        let mut a = StoreReplay::new(7).unwrap();
        let mut b = LfsrRetrieve::new(7).unwrap();
        assert_eq!(a.generate_block(100), b.generate_block(100));
    }

    #[test]
    fn into_blocks_match_vec_blocks() {
        // The allocating wrappers and the in-place fills must draw the identical stream.
        let mut via_vec = LfsrRetrieve::new(5).unwrap();
        let mut via_into = LfsrRetrieve::new(5).unwrap();
        let a = via_vec.generate_block(70);
        let mut b = vec![0.0f32; 70];
        via_into.generate_block_into(&mut b);
        assert_eq!(a, b);
        let a = via_vec.retrieve_block(70);
        let mut b = vec![0.0f32; 70];
        via_into.retrieve_block_into(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn multiple_iterations_round_trip() {
        let mut src = LfsrRetrieve::new(3).unwrap();
        for _ in 0..5 {
            let g1 = src.generate_block(12);
            let g2 = src.generate_block(30);
            assert_eq!(src.retrieve_block(30), g2);
            assert_eq!(src.retrieve_block(12), g1);
            src.reset_iteration();
        }
    }

    #[test]
    fn reseeding_replays_a_fresh_source() {
        for make in [
            |seed| Box::new(StoreReplay::new(seed).unwrap()) as Box<dyn EpsilonSource>,
            |seed| Box::new(LfsrRetrieve::new(seed).unwrap()) as Box<dyn EpsilonSource>,
            |seed| Box::new(LfsrForward::new(seed).unwrap()) as Box<dyn EpsilonSource>,
        ] {
            let mut reused = make(1);
            reused.generate_block(40);
            reused.reseed(77);
            let mut fresh = make(77);
            assert_eq!(reused.generate_block(64), fresh.generate_block(64));
            assert_eq!(reused.stored_values(), fresh.stored_values());
        }
        // Width-ablation sources reseed through the plain construction.
        let mut reused = LfsrRetrieve::with_width(16, 3).unwrap();
        reused.generate_block(10);
        reused.reseed(9);
        let mut fresh = LfsrRetrieve::with_width(16, 9).unwrap();
        assert_eq!(reused.generate_block(20), fresh.generate_block(20));
    }

    #[test]
    fn forward_only_source_matches_the_training_sources_stream() {
        // Same seed ⇒ same ε stream as both training sources: inference samples from exactly
        // the posterior noise distribution training used.
        let mut forward = LfsrForward::new(7).unwrap();
        let mut training = LfsrRetrieve::new(7).unwrap();
        assert_eq!(forward.generate_block(64), training.generate_block(64));
        assert!(!forward.stores_offchip());
        assert_eq!(forward.stored_values(), 0);
        // reset_iteration is a no-op: the stream continues rather than fast-forwarding.
        let next_before = forward.generate_block(1);
        let mut replay = LfsrForward::new(7).unwrap();
        replay.generate_block(64);
        replay.reset_iteration();
        assert_eq!(replay.generate_block(1), next_before);
    }

    #[test]
    fn state_restore_continues_every_source_kind() {
        // (constructor, whether a generated block must be retrieved before the boundary)
        type MakeSource = fn(u64) -> Box<dyn EpsilonSource>;
        let kinds: [(MakeSource, bool); 3] = [
            (|seed| Box::new(StoreReplay::new(seed).unwrap()), true),
            (|seed| Box::new(LfsrRetrieve::new(seed).unwrap()), true),
            (|seed| Box::new(LfsrForward::new(seed).unwrap()), false),
        ];
        for (make, retrieves) in kinds {
            // Drive one full iteration so the register sits mid-stream, then snapshot at the
            // boundary.
            let mut original = make(21);
            original.generate_block(40);
            if retrieves {
                original.retrieve_block(40);
            }
            original.reset_iteration();
            let state = original.state();
            // Restore into a differently seeded, already-used source of the same kind.
            let mut resumed = make(99);
            resumed.generate_block(3);
            if retrieves {
                resumed.retrieve_block(3);
            }
            resumed.reset_iteration();
            resumed.restore(&state).unwrap();
            assert_eq!(resumed.generate_block(64), original.generate_block(64));
            assert_eq!(resumed.stored_values(), original.stored_values());
        }
    }

    #[test]
    #[should_panic(expected = "iteration boundary")]
    fn snapshot_mid_iteration_panics() {
        let mut src = LfsrRetrieve::new(5).unwrap();
        src.generate_block(8);
        let _ = src.state();
    }

    #[test]
    fn restore_discards_buffered_blocks() {
        let mut src = StoreReplay::new(4).unwrap();
        let state = src.state();
        src.generate_block(6);
        src.restore(&state).unwrap();
        // The buffered block was recycled; a fresh iteration replays the same stream.
        let mut fresh = StoreReplay::new(4).unwrap();
        assert_eq!(src.generate_block(6), fresh.generate_block(6));
        assert_eq!(src.stored_values(), fresh.stored_values());
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn forward_only_source_rejects_retrieval() {
        let mut src = LfsrForward::new(1).unwrap();
        src.generate_block(4);
        src.retrieve_block(4);
    }

    #[test]
    #[should_panic(expected = "reverse generation order")]
    fn lfsr_retrieve_rejects_out_of_order_blocks() {
        let mut src = LfsrRetrieve::new(1).unwrap();
        src.generate_block(4);
        src.generate_block(9);
        src.retrieve_block(4);
    }

    #[test]
    #[should_panic(expected = "more times than generate")]
    fn retrieving_too_many_blocks_panics() {
        let mut src = StoreReplay::new(1).unwrap();
        src.generate_block(4);
        src.retrieve_block(4);
        src.retrieve_block(4);
    }
}
