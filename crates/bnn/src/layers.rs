//! Bayesian and auxiliary layers.
//!
//! Every layer implements [`Layer`]. Bayesian layers ([`BayesLinear`], [`BayesConv2d`]) sample
//! their weights from `(μ, σ)` with ε drawn from an [`EpsilonSource`] during the forward stage,
//! and *reconstruct* the same weights during the backward stage by asking the source for the same
//! ε block again — exactly the paper's process ② — rather than caching the sampled weights.
//! Auxiliary layers (ReLU, max-pooling, flatten) carry no parameters.
//!
//! Layers move tensors **by value** and draw every temporary from the per-worker
//! [`Scratch`] arena: activations flow down the stack without cloning, consumed inputs are
//! cached for the backward stage (replacing — and recycling — whatever the previous iteration
//! left), and gradients travel back the same way. After a warmup iteration has grown the
//! arena, a steady-state forward+backward pass performs **zero heap allocations** (asserted by
//! the allocation-counting test in `crates/bench`).

use crate::epsilon::EpsilonSource;
use crate::snapshot::LayerSnapshot;
use crate::variational::{BayesConfig, VariationalParams};
use bnn_tensor::activation::{relu_backward_into, relu_into};
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::kernels::{
    conv2d_backward_input_into, conv2d_backward_weights_into, conv2d_forward_into,
    fused_linear_accumulate, gemm_at_accumulate,
};
use bnn_tensor::pool::{max_pool2d_backward_into, max_pool2d_into};
use bnn_tensor::{Scratch, Tensor, TensorError};
use rand::Rng;

/// A network layer processing one sampled model at a time.
///
/// The trainer drives layers through three phases per iteration:
///
/// 1. [`begin_iteration`](Layer::begin_iteration) with the number of Monte-Carlo samples `S`;
/// 2. for each sample `s`: [`forward`](Layer::forward) through all layers, then
///    [`backward`](Layer::backward) through all layers in reverse;
/// 3. [`apply_update`](Layer::apply_update) once.
///
/// Inputs and upstream gradients are consumed by value; every intermediate buffer comes from
/// (and returns to) the caller's [`Scratch`] arena.
pub trait Layer {
    /// Forward pass for sample `s`, consuming the input activation.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the input shape does not match the layer.
    fn forward(
        &mut self,
        sample: usize,
        input: Tensor,
        eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError>;

    /// Backward pass for sample `s`, consuming the gradient w.r.t. this layer's output and
    /// returning the gradient w.r.t. its input.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the gradient shape does not match the layer.
    fn backward(
        &mut self,
        sample: usize,
        grad_output: Tensor,
        eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError>;

    /// Forward pass of **all** `samples` sampled models over a sample-stacked activation
    /// (the fused-sampling path). `stacked` holds the per-sample activations sample-major:
    /// rank-2 `[S, F]` for vectors, rank-3 `[S·C, H, W]` for feature maps, so a flatten is a
    /// pure reshape and per-channel ops act per-sample for free.
    ///
    /// The contract is bit-exactness with the per-sample [`Layer::forward`] walk: one
    /// `forward_all` call must produce exactly the stacked concatenation of `samples`
    /// individual `forward` calls — same ε draws from `sources[s]`, same per-scalar
    /// accumulation orders — and, when `train` is true, leave identical per-sample caches
    /// and complexity sums behind. When `train` is false a layer may skip backward-only work
    /// (input caches, complexity accumulation), which makes fused serving *faster*, never
    /// *different* (pinned by `bnn-serve`'s fused-identity tests).
    ///
    /// The default implementation splits, forwards per sample, and restacks — correct for
    /// any layer; layers with a faster fused evaluation override it.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the stacked shape does not match the layer.
    fn forward_all(
        &mut self,
        stacked: Tensor,
        samples: usize,
        sources: &mut [Box<dyn EpsilonSource>],
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let _ = train;
        forward_all_split(self, stacked, samples, sources, scratch)
    }

    /// Prepares per-sample caches for an iteration of `samples` Monte-Carlo samples,
    /// recycling whatever the previous iteration left cached (so forward-only iterations
    /// return their activations to the arena, and a backward pass without a matching forward
    /// still fails loudly instead of consuming stale state).
    fn begin_iteration(&mut self, samples: usize, scratch: &mut Scratch);

    /// Applies the accumulated parameter updates (averaged over the iteration's samples).
    fn apply_update(&mut self, learning_rate: f32);

    /// Number of ε values this layer draws per sample (0 for non-Bayesian layers).
    fn epsilon_count(&self) -> usize {
        0
    }

    /// Number of trainable scalar parameters (counting μ and ρ separately).
    fn parameter_count(&self) -> usize {
        0
    }

    /// Complexity loss `Σ[log q − log P]` accumulated across the samples of the current
    /// iteration (0 for non-Bayesian layers).
    fn complexity_loss(&self) -> f32 {
        0.0
    }

    /// A short human-readable layer name for reports.
    fn name(&self) -> &'static str;

    /// Captures the layer's complete trainable state as a [`LayerSnapshot`] — parameters,
    /// gradient accumulators and geometry, but **not** the per-sample activation caches
    /// (snapshots are taken at iteration boundaries, where those are empty). The snapshot
    /// rebuilds an identical layer via [`LayerSnapshot::build`].
    fn snapshot(&self) -> LayerSnapshot;
}

/// Empties a per-sample tensor cache, returning every cached buffer to the arena (what
/// `begin_iteration` does with the previous iteration's leftovers).
fn recycle_tensor_cache(slots: &mut [Option<Tensor>], scratch: &mut Scratch) {
    for slot in slots {
        if let Some(stale) = slot.take() {
            scratch.put_tensor(stale);
        }
    }
}

/// Caches `value` for `sample`, recycling whatever a previous iteration left in the slot.
fn cache_tensor(slots: &mut [Option<Tensor>], sample: usize, value: Tensor, scratch: &mut Scratch) {
    if let Some(old) = slots[sample].replace(value) {
        scratch.put_tensor(old);
    }
}

/// Grows a per-sample cache without reallocating in the steady state (never shrinks, so an
/// oscillating sample count cannot thrash the `Vec`; callers empty the slots — recycling
/// their buffers — before resizing).
fn resize_cache<T>(slots: &mut Vec<Option<T>>, samples: usize) {
    if slots.len() < samples {
        slots.resize_with(samples, || None);
    }
}

/// Takes a stacked tensor for `samples` copies of a per-sample `shape`: rank-3 feature maps
/// stack along channels (`[S·C, H, W]`), everything else stacks as rows (`[S, len]`).
fn take_stacked(scratch: &mut Scratch, per_sample: &[usize], samples: usize) -> Tensor {
    match per_sample {
        [c, h, w] => scratch.take_tensor(&[samples * c, *h, *w]),
        shape => scratch.take_tensor(&[samples, shape.iter().product()]),
    }
}

/// The generic (and trivially bit-exact) fused walk: split the stacked activation per
/// sample, run the layer's own per-sample [`Layer::forward`], restack the outputs. Every
/// `forward_all` override must match this byte for byte; layers without a faster fused
/// evaluation — and every layer when `train` needs the full per-sample cache shape — defer
/// to it.
fn forward_all_split<L: Layer + ?Sized>(
    layer: &mut L,
    stacked: Tensor,
    samples: usize,
    sources: &mut [Box<dyn EpsilonSource>],
    scratch: &mut Scratch,
) -> Result<Tensor, TensorError> {
    assert!(
        samples >= 1 && sources.len() >= samples,
        "fused forward needs one ε source per sample"
    );
    let per_len = stacked.len() / samples;
    let mut out: Option<Tensor> = None;
    for (s, source) in sources.iter_mut().take(samples).enumerate() {
        let mut input = match stacked.shape() {
            &[c, h, w] => scratch.take_tensor(&[c / samples, h, w]),
            _ => scratch.take_tensor(&[per_len]),
        };
        input.data_mut().copy_from_slice(&stacked.data()[s * per_len..(s + 1) * per_len]);
        let out_s = layer.forward(s, input, source.as_mut(), scratch)?;
        let dst = match &mut out {
            Some(t) => t,
            None => out.insert(take_stacked(scratch, out_s.shape(), samples)),
        };
        let n = out_s.len();
        dst.data_mut()[s * n..(s + 1) * n].copy_from_slice(out_s.data());
        scratch.put_tensor(out_s);
    }
    scratch.put_tensor(stacked);
    Ok(out.expect("at least one sample"))
}

/// A Bayesian fully-connected layer: `output = W·input + b` with `W` sampled per Monte-Carlo
/// sample.
#[derive(Debug)]
pub struct BayesLinear {
    in_features: usize,
    out_features: usize,
    weights: VariationalParams,
    bias: Tensor,
    grad_bias: Tensor,
    config: BayesConfig,
    samples: usize,
    cached_inputs: Vec<Option<Tensor>>,
    accumulated_complexity: f32,
}

impl BayesLinear {
    /// Creates a Bayesian linear layer with Xavier-initialized means.
    pub fn new(
        in_features: usize,
        out_features: usize,
        config: BayesConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let weights = VariationalParams::init(&[out_features, in_features], &config, rng);
        Self {
            in_features,
            out_features,
            weights,
            bias: Tensor::zeros(&[out_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            config,
            samples: 1,
            cached_inputs: Vec::new(),
            accumulated_complexity: 0.0,
        }
    }

    /// Reassembles a layer from captured parameters (the checkpoint-restore constructor,
    /// bit-exact — nothing is re-initialized or recomputed).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the weight shape is not
    /// `[out_features, in_features]` or the bias shapes are not `[out_features]`.
    pub fn from_parts(
        in_features: usize,
        out_features: usize,
        weights: VariationalParams,
        bias: Tensor,
        grad_bias: Tensor,
        config: BayesConfig,
    ) -> Result<Self, TensorError> {
        if weights.shape() != [out_features, in_features] {
            return Err(TensorError::ShapeMismatch {
                left: weights.shape().to_vec(),
                right: vec![out_features, in_features],
            });
        }
        if bias.shape() != [out_features] || grad_bias.shape() != [out_features] {
            return Err(TensorError::ShapeMismatch {
                left: bias.shape().to_vec(),
                right: vec![out_features],
            });
        }
        Ok(Self {
            in_features,
            out_features,
            weights,
            bias,
            grad_bias,
            config,
            samples: 1,
            cached_inputs: Vec::new(),
            accumulated_complexity: 0.0,
        })
    }

    /// The layer's variational parameters (exposed for inspection and tests).
    pub fn weights(&self) -> &VariationalParams {
        &self.weights
    }

    /// The layer's bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Samples this layer's weights for the current ε block into a scratch tensor.
    fn sample_weights(&self, epsilon: &[f32], scratch: &mut Scratch) -> Tensor {
        let mut w = scratch.take_tensor(self.weights.shape());
        self.weights.sample_into(epsilon, self.config.precision, &mut w);
        w
    }
}

impl Layer for BayesLinear {
    fn forward(
        &mut self,
        sample: usize,
        input: Tensor,
        eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        if input.len() != self.in_features {
            return Err(TensorError::InvalidReshape {
                len: input.len(),
                shape: vec![self.in_features],
            });
        }
        let mut epsilon = scratch.take_f32(self.weights.len());
        eps.generate_block_into(&mut epsilon);
        let w = self.sample_weights(&epsilon, scratch);
        self.accumulated_complexity += self.config.kl_weight
            * self.weights.complexity_loss(&w, &epsilon, self.config.prior_sigma);

        // out = W·x + b, quantized — dot products accumulate the weights in ascending input
        // order, matching the matmul the layer used to perform.
        let mut out = scratch.take_tensor(&[self.out_features]);
        let (x, wd) = (input.data(), w.data());
        for (i, o) in out.data_mut().iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (&wv, &xv) in wd[i * self.in_features..(i + 1) * self.in_features].iter().zip(x) {
                acc += wv * xv;
            }
            *o = self.config.precision.quantize(acc + self.bias.data()[i]);
        }

        scratch.put_tensor(w);
        scratch.put_f32(epsilon);
        cache_tensor(&mut self.cached_inputs, sample, input, scratch);
        Ok(out)
    }

    /// Fused evaluation: all `S` sampled matvecs become one wide GEMM. Per sample the layer
    /// draws ε and samples `w_s` exactly as [`Layer::forward`] does, then packs the weights
    /// *transposed* into one `[in, S·out]` panel (`wt[i][s·out + o] = w_s[o][i]`);
    /// [`fused_linear_accumulate`]'s i-outer rank-1 updates then add each output scalar's
    /// terms in precisely the per-sample dot loop's ascending-`i` order, so the stacked
    /// result is bit-identical (pinned by the kernel's proptest and the serve/train identity
    /// tests). When `train` is false the complexity-loss transcendentals and the input cache
    /// are skipped — the dominant serving win on MLP stacks.
    fn forward_all(
        &mut self,
        stacked: Tensor,
        samples: usize,
        sources: &mut [Box<dyn EpsilonSource>],
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        if stacked.len() != samples * self.in_features {
            return Err(TensorError::InvalidReshape {
                len: stacked.len(),
                shape: vec![samples, self.in_features],
            });
        }
        let (inf, outf) = (self.in_features, self.out_features);
        let width = samples * outf;
        let mut epsilon = scratch.take_f32(self.weights.len());
        let mut w = scratch.take_tensor(self.weights.shape());
        let mut wt = scratch.take_f32(inf * width);
        for (s, source) in sources.iter_mut().take(samples).enumerate() {
            source.generate_block_into(&mut epsilon);
            self.weights.sample_into(&epsilon, self.config.precision, &mut w);
            if train {
                self.accumulated_complexity += self.config.kl_weight
                    * self.weights.complexity_loss(&w, &epsilon, self.config.prior_sigma);
                let mut input = scratch.take_tensor(&[inf]);
                input.data_mut().copy_from_slice(&stacked.data()[s * inf..(s + 1) * inf]);
                cache_tensor(&mut self.cached_inputs, s, input, scratch);
            }
            let wd = w.data();
            for o in 0..outf {
                for (i, &wv) in wd[o * inf..(o + 1) * inf].iter().enumerate() {
                    wt[i * width + s * outf + o] = wv;
                }
            }
        }

        let mut out = scratch.take_tensor(&[samples, outf]);
        fused_linear_accumulate(out.data_mut(), stacked.data(), &wt, samples, inf, outf);
        {
            let od = out.data_mut();
            let bias = self.bias.data();
            for s in 0..samples {
                for (o, &b) in bias.iter().enumerate() {
                    let v = &mut od[s * outf + o];
                    *v = self.config.precision.quantize(*v + b);
                }
            }
        }

        scratch.put_f32(wt);
        scratch.put_tensor(w);
        scratch.put_f32(epsilon);
        scratch.put_tensor(stacked);
        Ok(out)
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: Tensor,
        eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        if grad_output.len() != self.out_features {
            return Err(TensorError::InvalidReshape {
                len: grad_output.len(),
                shape: vec![self.out_features],
            });
        }
        let input = self.cached_inputs[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        // Reconstruct the sampled weights from the retrieved ε (process ② of the paper).
        let mut epsilon = scratch.take_f32(self.weights.len());
        eps.retrieve_block_into(&mut epsilon);
        let w = self.sample_weights(&epsilon, scratch);

        // Gradient w.r.t. the input: Wᵀ · grad_output, without materializing Wᵀ.
        let mut grad_input = scratch.take_tensor(&[self.in_features]);
        gemm_at_accumulate(
            grad_input.data_mut(),
            w.data(),
            grad_output.data(),
            self.in_features,
            self.out_features,
            1,
        );

        // Likelihood gradient w.r.t. the weights: grad_output ⊗ input.
        let mut grad_w = scratch.take_tensor(self.weights.shape());
        {
            let gw = grad_w.data_mut();
            for (i, &g) in grad_output.data().iter().enumerate() {
                if g == 0.0 {
                    continue; // row stays zero, as in the sparse outer product
                }
                let row = &mut gw[i * self.in_features..(i + 1) * self.in_features];
                for (r, &xv) in row.iter_mut().zip(input.data()) {
                    *r = g * xv;
                }
            }
        }
        self.weights.accumulate_gradients(&grad_w, &w, &epsilon, &self.config);
        for (gb, &g) in self.grad_bias.data_mut().iter_mut().zip(grad_output.data()) {
            *gb += g;
        }

        scratch.put_tensor(grad_w);
        scratch.put_tensor(w);
        scratch.put_f32(epsilon);
        scratch.put_tensor(input);
        scratch.put_tensor(grad_output);
        Ok(grad_input)
    }

    fn begin_iteration(&mut self, samples: usize, scratch: &mut Scratch) {
        self.samples = samples.max(1);
        recycle_tensor_cache(&mut self.cached_inputs, scratch);
        resize_cache(&mut self.cached_inputs, self.samples);
        self.accumulated_complexity = 0.0;
    }

    fn apply_update(&mut self, learning_rate: f32) {
        self.weights.sgd_step(learning_rate, self.samples);
        let scale = -learning_rate / self.samples as f32;
        self.bias.axpy(scale, &self.grad_bias).expect("bias gradient matches bias shape");
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn epsilon_count(&self) -> usize {
        self.weights.len()
    }

    fn parameter_count(&self) -> usize {
        2 * self.weights.len() + self.bias.len()
    }

    fn complexity_loss(&self) -> f32 {
        self.accumulated_complexity
    }

    fn name(&self) -> &'static str {
        "bayes_linear"
    }

    fn snapshot(&self) -> LayerSnapshot {
        LayerSnapshot::Linear {
            in_features: self.in_features,
            out_features: self.out_features,
            weights: self.weights.clone(),
            bias: self.bias.clone(),
            grad_bias: self.grad_bias.clone(),
        }
    }
}

/// A Bayesian 2-D convolution layer with per-sample weight sampling, running on the packed
/// im2col+GEMM kernels of [`bnn_tensor::kernels`].
#[derive(Debug)]
pub struct BayesConv2d {
    geometry: ConvGeometry,
    weights: VariationalParams,
    bias: Tensor,
    grad_bias: Tensor,
    config: BayesConfig,
    samples: usize,
    cached_inputs: Vec<Option<Tensor>>,
    accumulated_complexity: f32,
}

impl BayesConv2d {
    /// Creates a Bayesian convolution layer with Xavier-initialized means.
    pub fn new(geometry: ConvGeometry, config: BayesConfig, rng: &mut impl Rng) -> Self {
        let shape = [geometry.out_channels, geometry.in_channels, geometry.kernel, geometry.kernel];
        let weights = VariationalParams::init(&shape, &config, rng);
        Self {
            geometry,
            weights,
            bias: Tensor::zeros(&[geometry.out_channels]),
            grad_bias: Tensor::zeros(&[geometry.out_channels]),
            config,
            samples: 1,
            cached_inputs: Vec::new(),
            accumulated_complexity: 0.0,
        }
    }

    /// Reassembles a layer from captured parameters (the checkpoint-restore constructor,
    /// bit-exact — nothing is re-initialized or recomputed).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the weight shape does not match the
    /// geometry or the bias shapes are not `[out_channels]`.
    pub fn from_parts(
        geometry: ConvGeometry,
        weights: VariationalParams,
        bias: Tensor,
        grad_bias: Tensor,
        config: BayesConfig,
    ) -> Result<Self, TensorError> {
        let expect =
            [geometry.out_channels, geometry.in_channels, geometry.kernel, geometry.kernel];
        if weights.shape() != expect {
            return Err(TensorError::ShapeMismatch {
                left: weights.shape().to_vec(),
                right: expect.to_vec(),
            });
        }
        if bias.shape() != [geometry.out_channels] || grad_bias.shape() != [geometry.out_channels] {
            return Err(TensorError::ShapeMismatch {
                left: bias.shape().to_vec(),
                right: vec![geometry.out_channels],
            });
        }
        Ok(Self {
            geometry,
            weights,
            bias,
            grad_bias,
            config,
            samples: 1,
            cached_inputs: Vec::new(),
            accumulated_complexity: 0.0,
        })
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geometry
    }

    /// The layer's variational parameters.
    pub fn weights(&self) -> &VariationalParams {
        &self.weights
    }

    /// The layer's bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    fn sample_weights(&self, epsilon: &[f32], scratch: &mut Scratch) -> Tensor {
        let mut w = scratch.take_tensor(self.weights.shape());
        self.weights.sample_into(epsilon, self.config.precision, &mut w);
        w
    }
}

impl Layer for BayesConv2d {
    fn forward(
        &mut self,
        sample: usize,
        input: Tensor,
        eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let in_shape = input.shape();
        if in_shape.len() != 3 || in_shape[0] != self.geometry.in_channels {
            return Err(TensorError::ShapeMismatch {
                left: in_shape.to_vec(),
                right: vec![self.geometry.in_channels, 0, 0],
            });
        }
        let (oh, ow) = self.geometry.output_size(in_shape[1], in_shape[2]);

        let mut epsilon = scratch.take_f32(self.weights.len());
        eps.generate_block_into(&mut epsilon);
        let w = self.sample_weights(&epsilon, scratch);
        self.accumulated_complexity += self.config.kl_weight
            * self.weights.complexity_loss(&w, &epsilon, self.config.prior_sigma);

        let mut out = scratch.take_tensor(&[self.geometry.out_channels, oh, ow]);
        conv2d_forward_into(&self.geometry, &input, &w, &self.bias, &mut out, scratch)?;
        self.config.precision.quantize_tensor_inplace(&mut out);

        scratch.put_tensor(w);
        scratch.put_f32(epsilon);
        cache_tensor(&mut self.cached_inputs, sample, input, scratch);
        Ok(out)
    }

    /// Fused evaluation: the convolution itself stays per-sample (each sample owns a full
    /// im2col+GEMM pass over its own sampled kernel), but inference-only calls skip the
    /// complexity-loss transcendentals and the input cache — the dominant per-sample serving
    /// cost for convolutional stacks. Training calls defer to the split walk, which leaves
    /// byte-identical caches for the per-sample backward stage.
    fn forward_all(
        &mut self,
        stacked: Tensor,
        samples: usize,
        sources: &mut [Box<dyn EpsilonSource>],
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        if train {
            return forward_all_split(self, stacked, samples, sources, scratch);
        }
        let sh = stacked.shape();
        let cin = self.geometry.in_channels;
        let cout = self.geometry.out_channels;
        if sh.len() != 3 || sh[0] != samples * cin {
            return Err(TensorError::ShapeMismatch {
                left: sh.to_vec(),
                right: vec![samples * cin, 0, 0],
            });
        }
        let (h, w_dim) = (sh[1], sh[2]);
        let (oh, ow) = self.geometry.output_size(h, w_dim);
        let (per_in, per_out) = (cin * h * w_dim, cout * oh * ow);

        let mut epsilon = scratch.take_f32(self.weights.len());
        let mut w = scratch.take_tensor(self.weights.shape());
        let mut input_s = scratch.take_tensor(&[cin, h, w_dim]);
        let mut out_s = scratch.take_tensor(&[cout, oh, ow]);
        let mut out = scratch.take_tensor(&[samples * cout, oh, ow]);
        for (s, source) in sources.iter_mut().take(samples).enumerate() {
            source.generate_block_into(&mut epsilon);
            self.weights.sample_into(&epsilon, self.config.precision, &mut w);
            input_s.data_mut().copy_from_slice(&stacked.data()[s * per_in..(s + 1) * per_in]);
            // The driver overwrites every output scalar (bias prefill), so `out_s` reuse is
            // sound across samples.
            conv2d_forward_into(&self.geometry, &input_s, &w, &self.bias, &mut out_s, scratch)?;
            self.config.precision.quantize_tensor_inplace(&mut out_s);
            out.data_mut()[s * per_out..(s + 1) * per_out].copy_from_slice(out_s.data());
        }

        scratch.put_tensor(out_s);
        scratch.put_tensor(input_s);
        scratch.put_tensor(w);
        scratch.put_f32(epsilon);
        scratch.put_tensor(stacked);
        Ok(out)
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: Tensor,
        eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let input = self.cached_inputs[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        let mut epsilon = scratch.take_f32(self.weights.len());
        eps.retrieve_block_into(&mut epsilon);
        let w = self.sample_weights(&epsilon, scratch);

        let (h, wd) = (input.shape()[1], input.shape()[2]);
        let mut grad_input = scratch.take_tensor(&[self.geometry.in_channels, h, wd]);
        conv2d_backward_input_into(
            &self.geometry,
            &grad_output,
            &w,
            h,
            wd,
            &mut grad_input,
            scratch,
        )?;

        let mut grad_w = scratch.take_tensor(self.weights.shape());
        let mut grad_b = scratch.take_tensor(&[self.geometry.out_channels]);
        conv2d_backward_weights_into(
            &self.geometry,
            &input,
            &grad_output,
            &mut grad_w,
            &mut grad_b,
            scratch,
        )?;
        self.weights.accumulate_gradients(&grad_w, &w, &epsilon, &self.config);
        for (gb, &g) in self.grad_bias.data_mut().iter_mut().zip(grad_b.data()) {
            *gb += g;
        }

        scratch.put_tensor(grad_b);
        scratch.put_tensor(grad_w);
        scratch.put_tensor(w);
        scratch.put_f32(epsilon);
        scratch.put_tensor(input);
        scratch.put_tensor(grad_output);
        Ok(grad_input)
    }

    fn begin_iteration(&mut self, samples: usize, scratch: &mut Scratch) {
        self.samples = samples.max(1);
        recycle_tensor_cache(&mut self.cached_inputs, scratch);
        resize_cache(&mut self.cached_inputs, self.samples);
        self.accumulated_complexity = 0.0;
    }

    fn apply_update(&mut self, learning_rate: f32) {
        self.weights.sgd_step(learning_rate, self.samples);
        let scale = -learning_rate / self.samples as f32;
        self.bias.axpy(scale, &self.grad_bias).expect("bias gradient matches bias shape");
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn epsilon_count(&self) -> usize {
        self.weights.len()
    }

    fn parameter_count(&self) -> usize {
        2 * self.weights.len() + self.bias.len()
    }

    fn complexity_loss(&self) -> f32 {
        self.accumulated_complexity
    }

    fn name(&self) -> &'static str {
        "bayes_conv2d"
    }

    fn snapshot(&self) -> LayerSnapshot {
        LayerSnapshot::Conv {
            geometry: self.geometry,
            weights: self.weights.clone(),
            bias: self.bias.clone(),
            grad_bias: self.grad_bias.clone(),
        }
    }
}

/// ReLU activation layer.
#[derive(Debug, Default)]
pub struct ReluLayer {
    cached_inputs: Vec<Option<Tensor>>,
}

impl ReluLayer {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReluLayer {
    fn forward(
        &mut self,
        sample: usize,
        input: Tensor,
        _eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let mut out = scratch.take_tensor(input.shape());
        relu_into(&input, &mut out);
        cache_tensor(&mut self.cached_inputs, sample, input, scratch);
        Ok(out)
    }

    /// Fused evaluation: ReLU is elementwise, so inference-only calls apply it to the whole
    /// stacked activation at once and skip the per-sample input cache. Training calls defer
    /// to the split walk (the backward stage needs per-sample caches).
    fn forward_all(
        &mut self,
        stacked: Tensor,
        samples: usize,
        sources: &mut [Box<dyn EpsilonSource>],
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        if train {
            return forward_all_split(self, stacked, samples, sources, scratch);
        }
        let mut out = scratch.take_tensor(stacked.shape());
        relu_into(&stacked, &mut out);
        scratch.put_tensor(stacked);
        Ok(out)
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: Tensor,
        _eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let input = self.cached_inputs[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        let mut grad_input = scratch.take_tensor(input.shape());
        relu_backward_into(&input, &grad_output, &mut grad_input);
        scratch.put_tensor(input);
        scratch.put_tensor(grad_output);
        Ok(grad_input)
    }

    fn begin_iteration(&mut self, samples: usize, scratch: &mut Scratch) {
        recycle_tensor_cache(&mut self.cached_inputs, scratch);
        resize_cache(&mut self.cached_inputs, samples.max(1));
    }

    fn apply_update(&mut self, _learning_rate: f32) {}

    fn name(&self) -> &'static str {
        "relu"
    }

    fn snapshot(&self) -> LayerSnapshot {
        LayerSnapshot::Relu
    }
}

/// Non-overlapping max-pooling layer.
#[derive(Debug)]
pub struct MaxPoolLayer {
    window: usize,
    /// Per-sample `(input shape, argmax record)`, both in recycled scratch buffers.
    cached: Vec<Option<(Vec<usize>, Vec<usize>)>>,
}

impl MaxPoolLayer {
    /// Creates a max-pooling layer with the given window (and equal stride).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pooling window must be positive");
        Self { window, cached: Vec::new() }
    }
}

impl Layer for MaxPoolLayer {
    fn forward(
        &mut self,
        sample: usize,
        input: Tensor,
        _eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let shape = input.shape();
        if shape.len() != 3
            || !shape[1].is_multiple_of(self.window)
            || !shape[2].is_multiple_of(self.window)
        {
            return Err(TensorError::ShapeMismatch {
                left: shape.to_vec(),
                right: vec![shape.first().copied().unwrap_or(0), self.window, self.window],
            });
        }
        let (c, oh, ow) = (shape[0], shape[1] / self.window, shape[2] / self.window);
        let mut out = scratch.take_tensor(&[c, oh, ow]);
        let mut argmax = scratch.take_usize(c * oh * ow);
        max_pool2d_into(&input, self.window, &mut out, &mut argmax)?;
        let mut cached_shape = scratch.take_usize(3);
        cached_shape.copy_from_slice(input.shape());
        if let Some((old_shape, old_argmax)) = self.cached[sample].replace((cached_shape, argmax)) {
            scratch.put_usize(old_shape);
            scratch.put_usize(old_argmax);
        }
        scratch.put_tensor(input);
        Ok(out)
    }

    /// Fused evaluation: pooling acts per channel, and the stacked layout `[S·C, H, W]`
    /// keeps every sample's channels contiguous — one pooling pass over the stacked map *is*
    /// `S` per-sample passes. Inference-only calls skip the argmax cache; training calls
    /// defer to the split walk.
    fn forward_all(
        &mut self,
        stacked: Tensor,
        samples: usize,
        sources: &mut [Box<dyn EpsilonSource>],
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        if train {
            return forward_all_split(self, stacked, samples, sources, scratch);
        }
        let shape = stacked.shape();
        if shape.len() != 3
            || !shape[1].is_multiple_of(self.window)
            || !shape[2].is_multiple_of(self.window)
        {
            return Err(TensorError::ShapeMismatch {
                left: shape.to_vec(),
                right: vec![shape.first().copied().unwrap_or(0), self.window, self.window],
            });
        }
        let (c, oh, ow) = (shape[0], shape[1] / self.window, shape[2] / self.window);
        let mut out = scratch.take_tensor(&[c, oh, ow]);
        let mut argmax = scratch.take_usize(c * oh * ow);
        max_pool2d_into(&stacked, self.window, &mut out, &mut argmax)?;
        scratch.put_usize(argmax);
        scratch.put_tensor(stacked);
        Ok(out)
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: Tensor,
        _eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let (shape, argmax) = self.cached[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        let mut grad_input = scratch.take_tensor(&shape);
        max_pool2d_backward_into(&grad_output, &argmax, &mut grad_input);
        scratch.put_usize(shape);
        scratch.put_usize(argmax);
        scratch.put_tensor(grad_output);
        Ok(grad_input)
    }

    fn begin_iteration(&mut self, samples: usize, scratch: &mut Scratch) {
        for slot in &mut self.cached {
            if let Some((shape, argmax)) = slot.take() {
                scratch.put_usize(shape);
                scratch.put_usize(argmax);
            }
        }
        resize_cache(&mut self.cached, samples.max(1));
    }

    fn apply_update(&mut self, _learning_rate: f32) {}

    fn name(&self) -> &'static str {
        "max_pool"
    }

    fn snapshot(&self) -> LayerSnapshot {
        LayerSnapshot::MaxPool { window: self.window }
    }
}

/// Flattens a `[C, H, W]` feature map into a `[C·H·W]` vector (and restores the shape on the way
/// back) — a pure reshape of the owned tensor, no data movement at all.
#[derive(Debug, Default)]
pub struct FlattenLayer {
    cached_shapes: Vec<Option<Vec<usize>>>,
}

impl FlattenLayer {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for FlattenLayer {
    fn forward(
        &mut self,
        sample: usize,
        mut input: Tensor,
        _eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let mut cached_shape = scratch.take_usize(input.shape().len());
        cached_shape.copy_from_slice(input.shape());
        if let Some(old) = self.cached_shapes[sample].replace(cached_shape) {
            scratch.put_usize(old);
        }
        input.reshape_in_place(&[input.len()])?;
        Ok(input)
    }

    /// Fused evaluation: the stacked layout is sample-major, so flattening `[S·C, H, W]` to
    /// `[S, C·H·W]` is a pure in-place reshape. Inference-only calls skip the shape cache;
    /// training calls defer to the split walk.
    fn forward_all(
        &mut self,
        mut stacked: Tensor,
        samples: usize,
        sources: &mut [Box<dyn EpsilonSource>],
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        if train {
            return forward_all_split(self, stacked, samples, sources, scratch);
        }
        let per_len = stacked.len() / samples;
        stacked.reshape_in_place(&[samples, per_len])?;
        Ok(stacked)
    }

    fn backward(
        &mut self,
        sample: usize,
        mut grad_output: Tensor,
        _eps: &mut dyn EpsilonSource,
        scratch: &mut Scratch,
    ) -> Result<Tensor, TensorError> {
        let shape = self.cached_shapes[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        grad_output.reshape_in_place(&shape)?;
        scratch.put_usize(shape);
        Ok(grad_output)
    }

    fn begin_iteration(&mut self, samples: usize, scratch: &mut Scratch) {
        for slot in &mut self.cached_shapes {
            if let Some(stale) = slot.take() {
                scratch.put_usize(stale);
            }
        }
        resize_cache(&mut self.cached_shapes, samples.max(1));
    }

    fn apply_update(&mut self, _learning_rate: f32) {}

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn snapshot(&self) -> LayerSnapshot {
        LayerSnapshot::Flatten
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::LfsrRetrieve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps_source() -> LfsrRetrieve {
        LfsrRetrieve::new(99).unwrap()
    }

    #[test]
    fn linear_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = BayesLinear::new(6, 4, BayesConfig::default(), &mut rng);
        let mut eps = eps_source();
        let mut scratch = Scratch::new();
        layer.begin_iteration(1, &mut scratch);
        let input = Tensor::filled(&[6], 0.5);
        let out = layer.forward(0, input, &mut eps, &mut scratch).unwrap();
        assert_eq!(out.shape(), &[4]);
        let grad = Tensor::filled(&[4], 1.0);
        let grad_in = layer.backward(0, grad, &mut eps, &mut scratch).unwrap();
        assert_eq!(grad_in.shape(), &[6]);
        assert_eq!(layer.epsilon_count(), 24);
        assert_eq!(layer.parameter_count(), 2 * 24 + 4);
        layer.apply_update(0.01);
    }

    #[test]
    fn conv_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let geom =
            ConvGeometry { in_channels: 1, out_channels: 2, kernel: 3, stride: 1, padding: 1 };
        let mut layer = BayesConv2d::new(geom, BayesConfig::default(), &mut rng);
        let mut eps = eps_source();
        let mut scratch = Scratch::new();
        layer.begin_iteration(2, &mut scratch);
        let input = Tensor::filled(&[1, 6, 6], 1.0);
        let out = layer.forward(0, input, &mut eps, &mut scratch).unwrap();
        assert_eq!(out.shape(), &[2, 6, 6]);
        let grad_in =
            layer.backward(0, Tensor::filled(&[2, 6, 6], 0.1), &mut eps, &mut scratch).unwrap();
        assert_eq!(grad_in.shape(), &[1, 6, 6]);
        assert_eq!(layer.epsilon_count(), 2 * 9);
    }

    #[test]
    fn backward_reconstructs_the_same_weights_it_sampled() {
        // The complexity loss uses the forward weights, the gradients use the reconstructed
        // ones; with the same source both must coincide, so one SGD step from two layers driven
        // by identically seeded sources stays identical.
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let cfg = BayesConfig::default();
        let mut layer_a = BayesLinear::new(5, 3, cfg, &mut rng_a);
        let mut layer_b = BayesLinear::new(5, 3, cfg, &mut rng_b);
        let mut eps_a = LfsrRetrieve::new(7).unwrap();
        let mut eps_b = crate::epsilon::StoreReplay::new(7).unwrap();
        let input = Tensor::from_vec(vec![5], vec![0.1, -0.2, 0.3, 0.4, -0.5]).unwrap();
        let grad = Tensor::from_vec(vec![3], vec![1.0, -1.0, 0.5]).unwrap();
        let mut scratch = Scratch::new();
        for (layer, eps) in [
            (&mut layer_a, &mut eps_a as &mut dyn EpsilonSource),
            (&mut layer_b, &mut eps_b as &mut dyn EpsilonSource),
        ] {
            layer.begin_iteration(1, &mut scratch);
            layer.forward(0, input.clone(), eps, &mut scratch).unwrap();
            layer.backward(0, grad.clone(), eps, &mut scratch).unwrap();
            layer.apply_update(0.05);
        }
        assert_eq!(layer_a.weights().mu(), layer_b.weights().mu());
        assert_eq!(layer_a.weights().rho(), layer_b.weights().rho());
    }

    #[test]
    fn relu_and_flatten_round_trip_shapes() {
        let mut relu_layer = ReluLayer::new();
        let mut flatten = FlattenLayer::new();
        let mut eps = eps_source();
        let mut scratch = Scratch::new();
        relu_layer.begin_iteration(1, &mut scratch);
        flatten.begin_iteration(1, &mut scratch);
        let input =
            Tensor::from_vec(vec![2, 2, 2], vec![-1., 2., -3., 4., 5., -6., 7., -8.]).unwrap();
        let activated = relu_layer.forward(0, input, &mut eps, &mut scratch).unwrap();
        let flat = flatten.forward(0, activated, &mut eps, &mut scratch).unwrap();
        assert_eq!(flat.shape(), &[8]);
        let back = flatten.backward(0, Tensor::filled(&[8], 1.0), &mut eps, &mut scratch).unwrap();
        assert_eq!(back.shape(), &[2, 2, 2]);
        let grad_in = relu_layer.backward(0, back, &mut eps, &mut scratch).unwrap();
        // Gradient passes only where the input was positive.
        assert_eq!(grad_in.data(), &[0., 1., 0., 1., 1., 0., 1., 0.]);
    }

    #[test]
    fn max_pool_layer_reduces_and_restores() {
        let mut pool = MaxPoolLayer::new(2);
        let mut eps = eps_source();
        let mut scratch = Scratch::new();
        pool.begin_iteration(1, &mut scratch);
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1., 5., 2., 3.]).unwrap();
        let out = pool.forward(0, input, &mut eps, &mut scratch).unwrap();
        assert_eq!(out.data(), &[5.0]);
        let grad_in =
            pool.backward(0, Tensor::filled(&[1, 1, 1], 2.0), &mut eps, &mut scratch).unwrap();
        assert_eq!(grad_in.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn complexity_loss_accumulates_only_on_bayes_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = BayesLinear::new(4, 2, BayesConfig::default(), &mut rng);
        let mut eps = eps_source();
        let mut scratch = Scratch::new();
        layer.begin_iteration(1, &mut scratch);
        layer.forward(0, Tensor::filled(&[4], 1.0), &mut eps, &mut scratch).unwrap();
        assert_ne!(layer.complexity_loss(), 0.0);
        let relu_layer = ReluLayer::new();
        assert_eq!(relu_layer.complexity_loss(), 0.0);
    }

    #[test]
    fn steady_state_layer_round_trips_do_not_grow_the_arena() {
        let mut rng = StdRng::seed_from_u64(5);
        let geom =
            ConvGeometry { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let mut layer = BayesConv2d::new(geom, BayesConfig::default(), &mut rng);
        let mut eps = eps_source();
        let mut scratch = Scratch::new();
        let mut pooled_after_warmup = 0;
        for iter in 0..4 {
            layer.begin_iteration(1, &mut scratch);
            // Inputs come from the arena, as `Network::forward_sample` provides them.
            let mut input = scratch.take_tensor(&[2, 8, 8]);
            input.data_mut().fill(0.3);
            let out = layer.forward(0, input, &mut eps, &mut scratch).unwrap();
            let grad_in = layer.backward(0, out, &mut eps, &mut scratch).unwrap();
            scratch.put_tensor(grad_in);
            eps.reset_iteration();
            layer.apply_update(0.01);
            if iter == 1 {
                pooled_after_warmup = scratch.pooled_buffers();
            } else if iter > 1 {
                assert_eq!(scratch.pooled_buffers(), pooled_after_warmup, "arena grew");
            }
        }
    }
}
