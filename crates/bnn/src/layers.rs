//! Bayesian and auxiliary layers.
//!
//! Every layer implements [`Layer`]. Bayesian layers ([`BayesLinear`], [`BayesConv2d`]) sample
//! their weights from `(μ, σ)` with ε drawn from an [`EpsilonSource`] during the forward stage,
//! and *reconstruct* the same weights during the backward stage by asking the source for the same
//! ε block again — exactly the paper's process ② — rather than caching the sampled weights.
//! Auxiliary layers (ReLU, max-pooling, flatten) carry no parameters.

use crate::epsilon::EpsilonSource;
use crate::variational::{BayesConfig, VariationalParams};
use bnn_tensor::activation::{relu, relu_backward};
use bnn_tensor::conv::{
    conv2d_backward_input, conv2d_backward_weights, conv2d_forward, ConvGeometry,
};
use bnn_tensor::pool::{max_pool2d, max_pool2d_backward};
use bnn_tensor::{Tensor, TensorError};
use rand::Rng;

/// A network layer processing one sampled model at a time.
///
/// The trainer drives layers through three phases per iteration:
///
/// 1. [`begin_iteration`](Layer::begin_iteration) with the number of Monte-Carlo samples `S`;
/// 2. for each sample `s`: [`forward`](Layer::forward) through all layers, then
///    [`backward`](Layer::backward) through all layers in reverse;
/// 3. [`apply_update`](Layer::apply_update) once.
pub trait Layer {
    /// Forward pass for sample `s`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the input shape does not match the layer.
    fn forward(
        &mut self,
        sample: usize,
        input: &Tensor,
        eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError>;

    /// Backward pass for sample `s`, consuming the gradient w.r.t. this layer's output and
    /// returning the gradient w.r.t. its input.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the gradient shape does not match the layer.
    fn backward(
        &mut self,
        sample: usize,
        grad_output: &Tensor,
        eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError>;

    /// Prepares per-sample caches for an iteration of `samples` Monte-Carlo samples.
    fn begin_iteration(&mut self, samples: usize);

    /// Applies the accumulated parameter updates (averaged over the iteration's samples).
    fn apply_update(&mut self, learning_rate: f32);

    /// Number of ε values this layer draws per sample (0 for non-Bayesian layers).
    fn epsilon_count(&self) -> usize {
        0
    }

    /// Number of trainable scalar parameters (counting μ and ρ separately).
    fn parameter_count(&self) -> usize {
        0
    }

    /// Complexity loss `Σ[log q − log P]` accumulated across the samples of the current
    /// iteration (0 for non-Bayesian layers).
    fn complexity_loss(&self) -> f32 {
        0.0
    }

    /// A short human-readable layer name for reports.
    fn name(&self) -> &'static str;
}

/// A Bayesian fully-connected layer: `output = W·input + b` with `W` sampled per Monte-Carlo
/// sample.
#[derive(Debug)]
pub struct BayesLinear {
    in_features: usize,
    out_features: usize,
    weights: VariationalParams,
    bias: Tensor,
    grad_bias: Tensor,
    config: BayesConfig,
    samples: usize,
    cached_inputs: Vec<Option<Tensor>>,
    accumulated_complexity: f32,
}

impl BayesLinear {
    /// Creates a Bayesian linear layer with Xavier-initialized means.
    pub fn new(
        in_features: usize,
        out_features: usize,
        config: BayesConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let weights = VariationalParams::init(&[out_features, in_features], &config, rng);
        Self {
            in_features,
            out_features,
            weights,
            bias: Tensor::zeros(&[out_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            config,
            samples: 1,
            cached_inputs: Vec::new(),
            accumulated_complexity: 0.0,
        }
    }

    /// The layer's variational parameters (exposed for inspection and tests).
    pub fn weights(&self) -> &VariationalParams {
        &self.weights
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for BayesLinear {
    fn forward(
        &mut self,
        sample: usize,
        input: &Tensor,
        eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let input = input.reshape(&[self.in_features])?;
        let epsilon = eps.generate_block(self.weights.len());
        let w = self.weights.sample(&epsilon, self.config.precision);
        self.accumulated_complexity += self.config.kl_weight
            * self.weights.complexity_loss(&w, &epsilon, self.config.prior_sigma);
        let x = input.reshape(&[self.in_features, 1])?;
        let mut out = w.matmul(&x)?.reshape(&[self.out_features])?;
        out = out.add(&self.bias)?;
        out = self.config.precision.quantize_tensor(&out);
        self.cached_inputs[sample] = Some(input);
        Ok(out)
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: &Tensor,
        eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let grad_output = grad_output.reshape(&[self.out_features])?;
        let input = self.cached_inputs[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        // Reconstruct the sampled weights from the retrieved ε (process ② of the paper).
        let epsilon = eps.retrieve_block(self.weights.len());
        let w = self.weights.sample(&epsilon, self.config.precision);

        // Gradient w.r.t. the input: W^T · grad_output.
        let g_col = grad_output.reshape(&[self.out_features, 1])?;
        let grad_input = w.transpose2().matmul(&g_col)?.reshape(&[self.in_features])?;

        // Likelihood gradient w.r.t. the weights: grad_output ⊗ input.
        let grad_w = g_col.matmul(&input.reshape(&[1, self.in_features])?)?;
        self.weights.accumulate_gradients(&grad_w, &w, &epsilon, &self.config);
        self.grad_bias.axpy(1.0, &grad_output)?;
        Ok(grad_input)
    }

    fn begin_iteration(&mut self, samples: usize) {
        self.samples = samples.max(1);
        self.cached_inputs = (0..self.samples).map(|_| None).collect();
        self.accumulated_complexity = 0.0;
    }

    fn apply_update(&mut self, learning_rate: f32) {
        self.weights.sgd_step(learning_rate, self.samples);
        let scale = -learning_rate / self.samples as f32;
        self.bias.axpy(scale, &self.grad_bias).expect("bias gradient matches bias shape");
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn epsilon_count(&self) -> usize {
        self.weights.len()
    }

    fn parameter_count(&self) -> usize {
        2 * self.weights.len() + self.bias.len()
    }

    fn complexity_loss(&self) -> f32 {
        self.accumulated_complexity
    }

    fn name(&self) -> &'static str {
        "bayes_linear"
    }
}

/// A Bayesian 2-D convolution layer with per-sample weight sampling.
#[derive(Debug)]
pub struct BayesConv2d {
    geometry: ConvGeometry,
    weights: VariationalParams,
    bias: Tensor,
    grad_bias: Tensor,
    config: BayesConfig,
    samples: usize,
    cached_inputs: Vec<Option<Tensor>>,
    accumulated_complexity: f32,
}

impl BayesConv2d {
    /// Creates a Bayesian convolution layer with Xavier-initialized means.
    pub fn new(geometry: ConvGeometry, config: BayesConfig, rng: &mut impl Rng) -> Self {
        let shape = [geometry.out_channels, geometry.in_channels, geometry.kernel, geometry.kernel];
        let weights = VariationalParams::init(&shape, &config, rng);
        Self {
            geometry,
            weights,
            bias: Tensor::zeros(&[geometry.out_channels]),
            grad_bias: Tensor::zeros(&[geometry.out_channels]),
            config,
            samples: 1,
            cached_inputs: Vec::new(),
            accumulated_complexity: 0.0,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geometry
    }

    /// The layer's variational parameters.
    pub fn weights(&self) -> &VariationalParams {
        &self.weights
    }
}

impl Layer for BayesConv2d {
    fn forward(
        &mut self,
        sample: usize,
        input: &Tensor,
        eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let epsilon = eps.generate_block(self.weights.len());
        let w = self.weights.sample(&epsilon, self.config.precision);
        self.accumulated_complexity += self.config.kl_weight
            * self.weights.complexity_loss(&w, &epsilon, self.config.prior_sigma);
        let out = conv2d_forward(&self.geometry, input, &w, &self.bias)?;
        let out = self.config.precision.quantize_tensor(&out);
        self.cached_inputs[sample] = Some(input.clone());
        Ok(out)
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: &Tensor,
        eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let input = self.cached_inputs[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        let epsilon = eps.retrieve_block(self.weights.len());
        let w = self.weights.sample(&epsilon, self.config.precision);
        let (h, wd) = (input.shape()[1], input.shape()[2]);
        let grad_input = conv2d_backward_input(&self.geometry, grad_output, &w, h, wd)?;
        let (grad_w, grad_b) = conv2d_backward_weights(&self.geometry, &input, grad_output)?;
        self.weights.accumulate_gradients(&grad_w, &w, &epsilon, &self.config);
        self.grad_bias.axpy(1.0, &grad_b)?;
        Ok(grad_input)
    }

    fn begin_iteration(&mut self, samples: usize) {
        self.samples = samples.max(1);
        self.cached_inputs = (0..self.samples).map(|_| None).collect();
        self.accumulated_complexity = 0.0;
    }

    fn apply_update(&mut self, learning_rate: f32) {
        self.weights.sgd_step(learning_rate, self.samples);
        let scale = -learning_rate / self.samples as f32;
        self.bias.axpy(scale, &self.grad_bias).expect("bias gradient matches bias shape");
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn epsilon_count(&self) -> usize {
        self.weights.len()
    }

    fn parameter_count(&self) -> usize {
        2 * self.weights.len() + self.bias.len()
    }

    fn complexity_loss(&self) -> f32 {
        self.accumulated_complexity
    }

    fn name(&self) -> &'static str {
        "bayes_conv2d"
    }
}

/// ReLU activation layer.
#[derive(Debug, Default)]
pub struct ReluLayer {
    cached_inputs: Vec<Option<Tensor>>,
}

impl ReluLayer {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReluLayer {
    fn forward(
        &mut self,
        sample: usize,
        input: &Tensor,
        _eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        self.cached_inputs[sample] = Some(input.clone());
        Ok(relu(input))
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: &Tensor,
        _eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let input = self.cached_inputs[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        Ok(relu_backward(&input, grad_output))
    }

    fn begin_iteration(&mut self, samples: usize) {
        self.cached_inputs = (0..samples.max(1)).map(|_| None).collect();
    }

    fn apply_update(&mut self, _learning_rate: f32) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Non-overlapping max-pooling layer.
#[derive(Debug)]
pub struct MaxPoolLayer {
    window: usize,
    cached: Vec<Option<(Vec<usize>, Vec<usize>)>>,
}

impl MaxPoolLayer {
    /// Creates a max-pooling layer with the given window (and equal stride).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pooling window must be positive");
        Self { window, cached: Vec::new() }
    }
}

impl Layer for MaxPoolLayer {
    fn forward(
        &mut self,
        sample: usize,
        input: &Tensor,
        _eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let pooled = max_pool2d(input, self.window)?;
        self.cached[sample] = Some((input.shape().to_vec(), pooled.argmax.clone()));
        Ok(pooled.output)
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: &Tensor,
        _eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let (shape, argmax) = self.cached[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        Ok(max_pool2d_backward(grad_output, &argmax, &shape))
    }

    fn begin_iteration(&mut self, samples: usize) {
        self.cached = (0..samples.max(1)).map(|_| None).collect();
    }

    fn apply_update(&mut self, _learning_rate: f32) {}

    fn name(&self) -> &'static str {
        "max_pool"
    }
}

/// Flattens a `[C, H, W]` feature map into a `[C·H·W]` vector (and restores the shape on the way
/// back).
#[derive(Debug, Default)]
pub struct FlattenLayer {
    cached_shapes: Vec<Option<Vec<usize>>>,
}

impl FlattenLayer {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for FlattenLayer {
    fn forward(
        &mut self,
        sample: usize,
        input: &Tensor,
        _eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        self.cached_shapes[sample] = Some(input.shape().to_vec());
        input.reshape(&[input.len()])
    }

    fn backward(
        &mut self,
        sample: usize,
        grad_output: &Tensor,
        _eps: &mut dyn EpsilonSource,
    ) -> Result<Tensor, TensorError> {
        let shape = self.cached_shapes[sample]
            .take()
            .expect("backward called for a sample without a cached forward");
        grad_output.reshape(&shape)
    }

    fn begin_iteration(&mut self, samples: usize) {
        self.cached_shapes = (0..samples.max(1)).map(|_| None).collect();
    }

    fn apply_update(&mut self, _learning_rate: f32) {}

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::LfsrRetrieve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps_source() -> LfsrRetrieve {
        LfsrRetrieve::new(99).unwrap()
    }

    #[test]
    fn linear_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = BayesLinear::new(6, 4, BayesConfig::default(), &mut rng);
        let mut eps = eps_source();
        layer.begin_iteration(1);
        let input = Tensor::filled(&[6], 0.5);
        let out = layer.forward(0, &input, &mut eps).unwrap();
        assert_eq!(out.shape(), &[4]);
        let grad = Tensor::filled(&[4], 1.0);
        let grad_in = layer.backward(0, &grad, &mut eps).unwrap();
        assert_eq!(grad_in.shape(), &[6]);
        assert_eq!(layer.epsilon_count(), 24);
        assert_eq!(layer.parameter_count(), 2 * 24 + 4);
        layer.apply_update(0.01);
    }

    #[test]
    fn conv_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let geom =
            ConvGeometry { in_channels: 1, out_channels: 2, kernel: 3, stride: 1, padding: 1 };
        let mut layer = BayesConv2d::new(geom, BayesConfig::default(), &mut rng);
        let mut eps = eps_source();
        layer.begin_iteration(2);
        let input = Tensor::filled(&[1, 6, 6], 1.0);
        let out = layer.forward(0, &input, &mut eps).unwrap();
        assert_eq!(out.shape(), &[2, 6, 6]);
        let grad_in = layer.backward(0, &Tensor::filled(&[2, 6, 6], 0.1), &mut eps).unwrap();
        assert_eq!(grad_in.shape(), &[1, 6, 6]);
        assert_eq!(layer.epsilon_count(), 2 * 9);
    }

    #[test]
    fn backward_reconstructs_the_same_weights_it_sampled() {
        // The complexity loss uses the forward weights, the gradients use the reconstructed
        // ones; with the same source both must coincide, so one SGD step from two layers driven
        // by identically seeded sources stays identical.
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let cfg = BayesConfig::default();
        let mut layer_a = BayesLinear::new(5, 3, cfg, &mut rng_a);
        let mut layer_b = BayesLinear::new(5, 3, cfg, &mut rng_b);
        let mut eps_a = LfsrRetrieve::new(7).unwrap();
        let mut eps_b = crate::epsilon::StoreReplay::new(7).unwrap();
        let input = Tensor::from_vec(vec![5], vec![0.1, -0.2, 0.3, 0.4, -0.5]).unwrap();
        let grad = Tensor::from_vec(vec![3], vec![1.0, -1.0, 0.5]).unwrap();
        for (layer, eps) in [
            (&mut layer_a, &mut eps_a as &mut dyn EpsilonSource),
            (&mut layer_b, &mut eps_b as &mut dyn EpsilonSource),
        ] {
            layer.begin_iteration(1);
            layer.forward(0, &input, eps).unwrap();
            layer.backward(0, &grad, eps).unwrap();
            layer.apply_update(0.05);
        }
        assert_eq!(layer_a.weights().mu(), layer_b.weights().mu());
        assert_eq!(layer_a.weights().rho(), layer_b.weights().rho());
    }

    #[test]
    fn relu_and_flatten_round_trip_shapes() {
        let mut relu_layer = ReluLayer::new();
        let mut flatten = FlattenLayer::new();
        let mut eps = eps_source();
        relu_layer.begin_iteration(1);
        flatten.begin_iteration(1);
        let input =
            Tensor::from_vec(vec![2, 2, 2], vec![-1., 2., -3., 4., 5., -6., 7., -8.]).unwrap();
        let activated = relu_layer.forward(0, &input, &mut eps).unwrap();
        let flat = flatten.forward(0, &activated, &mut eps).unwrap();
        assert_eq!(flat.shape(), &[8]);
        let back = flatten.backward(0, &Tensor::filled(&[8], 1.0), &mut eps).unwrap();
        assert_eq!(back.shape(), &[2, 2, 2]);
        let grad_in = relu_layer.backward(0, &back, &mut eps).unwrap();
        // Gradient passes only where the input was positive.
        assert_eq!(grad_in.data(), &[0., 1., 0., 1., 1., 0., 1., 0.]);
    }

    #[test]
    fn max_pool_layer_reduces_and_restores() {
        let mut pool = MaxPoolLayer::new(2);
        let mut eps = eps_source();
        pool.begin_iteration(1);
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1., 5., 2., 3.]).unwrap();
        let out = pool.forward(0, &input, &mut eps).unwrap();
        assert_eq!(out.data(), &[5.0]);
        let grad_in = pool.backward(0, &Tensor::filled(&[1, 1, 1], 2.0), &mut eps).unwrap();
        assert_eq!(grad_in.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn complexity_loss_accumulates_only_on_bayes_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = BayesLinear::new(4, 2, BayesConfig::default(), &mut rng);
        let mut eps = eps_source();
        layer.begin_iteration(1);
        layer.forward(0, &Tensor::filled(&[4], 1.0), &mut eps).unwrap();
        assert_ne!(layer.complexity_loss(), 0.0);
        let relu_layer = ReluLayer::new();
        assert_eq!(relu_layer.complexity_loss(), 0.0);
    }
}
