//! Variational weight parameters (μ, ρ) shared by all Bayesian layers.
//!
//! Each weight is a Gaussian `N(μ, σ²)` with `σ = softplus(ρ)`; a sampled weight is
//! `w = μ + ε ∘ σ` (the paper's process ①/②). Gradients follow Bayes-by-Backprop (Blundell et
//! al., 2015), which is the training algorithm the paper builds on:
//!
//! * `Δμ = ∂NLL/∂w + λ·w/σ_c²` — the posterior's direct and pathwise μ terms cancel, leaving the
//!   likelihood gradient plus the Gaussian-prior pull (the paper's `Δw_p ≈ w/σ_c²`, implemented
//!   in the DPU as a 2-bit shift when `σ_c = 0.5`);
//! * `Δσ = ε·(∂NLL/∂w + λ·w/σ_c²) − λ/σ`, then `Δρ = Δσ·sigmoid(ρ)` through the softplus
//!   reparameterization. The ε factor is why the backward stage needs every forward ε again —
//!   the data-movement problem Shift-BNN eliminates.

use bnn_tensor::activation::{sigmoid, softplus, softplus_inverse};
use bnn_tensor::init::{fan_in_out, xavier_uniform};
use bnn_tensor::{Precision, Tensor, TensorError};
use rand::Rng;

/// Hyper-parameters shared by every Bayesian layer of a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesConfig {
    /// Arithmetic precision emulated during training (the paper's Table 1 sweeps this).
    pub precision: Precision,
    /// Standard deviation `σ_c` of the zero-mean Gaussian prior; the paper fixes 0.5.
    pub prior_sigma: f32,
    /// Weight `λ` of the complexity (posterior − prior) term relative to the likelihood,
    /// typically `1 / number_of_training_examples`.
    pub kl_weight: f32,
    /// Initial value of ρ; `softplus(init_rho)` is the initial posterior standard deviation.
    pub init_rho: f32,
}

impl Default for BayesConfig {
    fn default() -> Self {
        Self { precision: Precision::Fp32, prior_sigma: 0.5, kl_weight: 1e-3, init_rho: -4.0 }
    }
}

impl BayesConfig {
    /// Returns a copy of the configuration with a different precision (convenience for the
    /// Table 1 precision sweep).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// The (μ, ρ) parameter pair of one Bayesian weight tensor, with gradient accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationalParams {
    mu: Tensor,
    rho: Tensor,
    grad_mu: Tensor,
    grad_rho: Tensor,
}

impl VariationalParams {
    /// Initializes μ with Xavier-uniform values and ρ with `config.init_rho`.
    pub fn init(shape: &[usize], config: &BayesConfig, rng: &mut impl Rng) -> Self {
        let (fan_in, fan_out) = fan_in_out(shape);
        let mu = xavier_uniform(shape, fan_in, fan_out, rng);
        let rho = Tensor::filled(shape, config.init_rho);
        Self { grad_mu: Tensor::zeros(shape), grad_rho: Tensor::zeros(shape), mu, rho }
    }

    /// Creates parameters from explicit μ and σ tensors (σ is converted to ρ).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or σ contains non-positive values.
    pub fn from_mu_sigma(mu: Tensor, sigma: &Tensor) -> Self {
        assert_eq!(mu.shape(), sigma.shape(), "mu and sigma must share a shape");
        let rho = sigma.map(softplus_inverse);
        let shape = mu.shape().to_vec();
        Self { grad_mu: Tensor::zeros(&shape), grad_rho: Tensor::zeros(&shape), mu, rho }
    }

    /// Reassembles parameters from captured tensors, bit-exactly — the checkpoint-restore
    /// constructor: unlike [`VariationalParams::from_mu_sigma`] nothing is recomputed through
    /// `softplus`, so a snapshot/restore round trip reproduces every ρ and every accumulated
    /// gradient down to the bit.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the four tensors do not share one shape.
    pub fn from_raw(
        mu: Tensor,
        rho: Tensor,
        grad_mu: Tensor,
        grad_rho: Tensor,
    ) -> Result<Self, TensorError> {
        for other in [&rho, &grad_mu, &grad_rho] {
            if other.shape() != mu.shape() {
                return Err(TensorError::ShapeMismatch {
                    left: mu.shape().to_vec(),
                    right: other.shape().to_vec(),
                });
            }
        }
        Ok(Self { mu, rho, grad_mu, grad_rho })
    }

    /// The mean tensor μ.
    pub fn mu(&self) -> &Tensor {
        &self.mu
    }

    /// The pre-softplus spread parameter ρ.
    pub fn rho(&self) -> &Tensor {
        &self.rho
    }

    /// The posterior standard deviation `σ = softplus(ρ)`.
    pub fn sigma(&self) -> Tensor {
        self.rho.map(softplus)
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.mu.len()
    }

    /// Returns `true` if the parameter tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.mu.is_empty()
    }

    /// Shape of the weight tensor.
    pub fn shape(&self) -> &[usize] {
        self.mu.shape()
    }

    /// Samples a weight tensor `w = μ + ε∘σ` into a caller-provided tensor, quantizing to the
    /// configured precision — the zero-allocation sampling primitive of the hot path (σ is
    /// computed per element instead of materializing a σ tensor; `softplus` is deterministic,
    /// so the values are bit-identical to the allocating form).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon.len()` or `out.len()` differs from the parameter count.
    pub fn sample_into(&self, epsilon: &[f32], precision: Precision, out: &mut Tensor) {
        assert_eq!(epsilon.len(), self.len(), "epsilon block size must match weight count");
        assert_eq!(out.len(), self.len(), "output tensor must match weight count");
        for (((wv, &m), &e), &rho) in
            out.data_mut().iter_mut().zip(self.mu.data()).zip(epsilon).zip(self.rho.data())
        {
            *wv = precision.quantize(m + e * softplus(rho));
        }
    }

    /// Samples a weight tensor `w = μ + ε∘σ`, quantizing the result to the configured precision
    /// (allocating wrapper over [`VariationalParams::sample_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon.len()` differs from the parameter count.
    pub fn sample(&self, epsilon: &[f32], precision: Precision) -> Tensor {
        let mut w = Tensor::zeros(self.shape());
        self.sample_into(epsilon, precision, &mut w);
        w
    }

    /// Complexity contribution `Σ_i [log q(w_i|θ) − log P(w_i)]` for a sampled weight tensor.
    pub fn complexity_loss(&self, weights: &Tensor, epsilon: &[f32], prior_sigma: f32) -> f32 {
        let mut total = 0.0f64;
        for ((&w, &e), &rho) in weights.data().iter().zip(epsilon).zip(self.rho.data()) {
            let s = softplus(rho);
            let log_q = -(s as f64).ln() - 0.5 * (e as f64) * (e as f64);
            let log_p = -(prior_sigma as f64).ln()
                - 0.5 * (w as f64) * (w as f64) / (prior_sigma as f64).powi(2);
            total += log_q - log_p;
        }
        total as f32
    }

    /// Accumulates gradients for one sample given the likelihood gradient `∂NLL/∂w`, the sampled
    /// weights, and the ε used to sample them.
    ///
    /// # Panics
    ///
    /// Panics if the operand sizes disagree.
    pub fn accumulate_gradients(
        &mut self,
        grad_w_likelihood: &Tensor,
        weights: &Tensor,
        epsilon: &[f32],
        config: &BayesConfig,
    ) {
        assert_eq!(grad_w_likelihood.len(), self.len());
        assert_eq!(weights.len(), self.len());
        assert_eq!(epsilon.len(), self.len());
        let inv_prior_var = 1.0 / (config.prior_sigma * config.prior_sigma);
        let gm = self.grad_mu.data_mut();
        let gr = self.grad_rho.data_mut();
        for i in 0..gm.len() {
            let gw = grad_w_likelihood.data()[i];
            let w = weights.data()[i];
            let e = epsilon[i];
            let rho = self.rho.data()[i];
            let s = softplus(rho);
            let total_w_grad = gw + config.kl_weight * w * inv_prior_var;
            gm[i] += total_w_grad;
            let dsigma = e * total_w_grad - config.kl_weight / s;
            gr[i] += dsigma * sigmoid(rho);
        }
    }

    /// Zeroes the gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.grad_mu.map_inplace(|_| 0.0);
        self.grad_rho.map_inplace(|_| 0.0);
    }

    /// Applies one SGD step with the accumulated gradients averaged over `samples`, then clears
    /// the accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn sgd_step(&mut self, learning_rate: f32, samples: usize) {
        assert!(samples > 0, "cannot average gradients over zero samples");
        let scale = -learning_rate / samples as f32;
        self.mu.axpy(scale, &self.grad_mu).expect("gradient shape matches parameters");
        self.rho.axpy(scale, &self.grad_rho).expect("gradient shape matches parameters");
        self.zero_grad();
    }

    /// Read access to the accumulated μ gradient (used in tests).
    pub fn grad_mu(&self) -> &Tensor {
        &self.grad_mu
    }

    /// Read access to the accumulated ρ gradient (used in tests).
    pub fn grad_rho(&self) -> &Tensor {
        &self.grad_rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> VariationalParams {
        let mut rng = StdRng::seed_from_u64(1);
        VariationalParams::init(&[4, 3], &BayesConfig::default(), &mut rng)
    }

    #[test]
    fn init_sets_rho_and_xavier_mu() {
        let p = params();
        assert_eq!(p.shape(), &[4, 3]);
        assert!(p.rho().data().iter().all(|&r| r == -4.0));
        assert!(p.mu().data().iter().any(|&m| m != 0.0));
        assert!(!p.is_empty());
    }

    #[test]
    fn sigma_is_softplus_of_rho() {
        let p = params();
        let expected = softplus(-4.0);
        assert!(p.sigma().data().iter().all(|&s| (s - expected).abs() < 1e-6));
    }

    #[test]
    fn sampling_with_zero_epsilon_returns_mu() {
        let p = params();
        let eps = vec![0.0f32; p.len()];
        let w = p.sample(&eps, Precision::Fp32);
        assert_eq!(w, *p.mu());
    }

    #[test]
    fn sampling_shifts_by_epsilon_times_sigma() {
        let p = params();
        let eps = vec![2.0f32; p.len()];
        let w = p.sample(&eps, Precision::Fp32);
        let sigma = softplus(-4.0);
        for (wv, m) in w.data().iter().zip(p.mu().data()) {
            assert!((wv - (m + 2.0 * sigma)).abs() < 1e-6);
        }
    }

    #[test]
    fn from_mu_sigma_round_trips_sigma() {
        let mu = Tensor::zeros(&[2, 2]);
        let sigma = Tensor::filled(&[2, 2], 0.25);
        let p = VariationalParams::from_mu_sigma(mu, &sigma);
        assert!(p.sigma().data().iter().all(|&s| (s - 0.25).abs() < 1e-3));
    }

    #[test]
    fn complexity_loss_is_zero_when_posterior_equals_prior_and_sample_is_typical() {
        // With sigma == prior_sigma and w == 0 and eps == 0, log q - log p reduces to 0.
        let mu = Tensor::zeros(&[3]);
        let sigma = Tensor::filled(&[3], 0.5);
        let p = VariationalParams::from_mu_sigma(mu, &sigma);
        let w = Tensor::zeros(&[3]);
        let loss = p.complexity_loss(&w, &[0.0, 0.0, 0.0], 0.5);
        assert!(loss.abs() < 1e-4, "loss {loss}");
    }

    #[test]
    fn complexity_loss_penalizes_narrow_posterior_far_from_prior() {
        let mu = Tensor::filled(&[1], 3.0);
        let sigma = Tensor::filled(&[1], 0.05);
        let p = VariationalParams::from_mu_sigma(mu, &sigma);
        let w = Tensor::filled(&[1], 3.0);
        let loss = p.complexity_loss(&w, &[0.0], 0.5);
        assert!(loss > 1.0, "narrow posterior far from the prior should cost, got {loss}");
    }

    #[test]
    fn gradient_accumulation_and_sgd_step_move_parameters() {
        let mut p = params();
        let eps = vec![0.5f32; p.len()];
        let w = p.sample(&eps, Precision::Fp32);
        let grad = Tensor::filled(p.shape(), 1.0);
        let cfg = BayesConfig::default();
        p.accumulate_gradients(&grad, &w, &eps, &cfg);
        assert!(p.grad_mu().data().iter().all(|&g| g != 0.0));
        let mu_before = p.mu().clone();
        p.sgd_step(0.1, 1);
        assert_ne!(*p.mu(), mu_before);
        assert!(p.grad_mu().data().iter().all(|&g| g == 0.0), "gradients cleared after step");
    }

    #[test]
    fn mu_gradient_matches_finite_difference_of_full_objective() {
        // Scalar "network": NLL(w) = 0.5 * w^2 so dNLL/dw = w; plus the complexity term.
        let cfg = BayesConfig { kl_weight: 0.1, ..BayesConfig::default() };
        let mu0 = 0.7f32;
        let sigma0 = 0.3f32;
        let eps = 0.9f32;

        let objective = |mu: f32| -> f32 {
            let w = mu + eps * sigma0;
            let nll = 0.5 * w * w;
            let log_q = -(sigma0).ln() - 0.5 * eps * eps;
            let log_p = -(0.5f32).ln() - w * w / (2.0 * 0.25);
            nll + cfg.kl_weight * (log_q - log_p)
        };
        let h = 1e-3;
        let numerical = (objective(mu0 + h) - objective(mu0 - h)) / (2.0 * h);

        let mu = Tensor::filled(&[1], mu0);
        let sigma = Tensor::filled(&[1], sigma0);
        let mut p = VariationalParams::from_mu_sigma(mu, &sigma);
        let w = p.sample(&[eps], Precision::Fp32);
        let grad_nll = Tensor::filled(&[1], w.data()[0]);
        p.accumulate_gradients(&grad_nll, &w, &[eps], &cfg);
        let analytic = p.grad_mu().data()[0];
        assert!(
            (numerical - analytic).abs() < 1e-2,
            "numerical {numerical} vs analytic {analytic}"
        );
    }

    #[test]
    fn rho_gradient_matches_finite_difference_of_full_objective() {
        let cfg = BayesConfig { kl_weight: 0.1, ..BayesConfig::default() };
        let mu0 = 0.2f32;
        let rho0 = -1.0f32;
        let eps = -0.6f32;

        let objective = |rho: f32| -> f32 {
            let sigma = softplus(rho);
            let w = mu0 + eps * sigma;
            let nll = 0.5 * w * w;
            let log_q = -sigma.ln() - 0.5 * eps * eps;
            let log_p = -(0.5f32).ln() - w * w / (2.0 * 0.25);
            nll + cfg.kl_weight * (log_q - log_p)
        };
        let h = 1e-3;
        let numerical = (objective(rho0 + h) - objective(rho0 - h)) / (2.0 * h);

        let mu = Tensor::filled(&[1], mu0);
        let sigma = Tensor::filled(&[1], softplus(rho0));
        let mut p = VariationalParams::from_mu_sigma(mu, &sigma);
        let w = p.sample(&[eps], Precision::Fp32);
        let grad_nll = Tensor::filled(&[1], w.data()[0]);
        p.accumulate_gradients(&grad_nll, &w, &[eps], &cfg);
        let analytic = p.grad_rho().data()[0];
        assert!(
            (numerical - analytic).abs() < 1e-2,
            "numerical {numerical} vs analytic {analytic}"
        );
    }
}
