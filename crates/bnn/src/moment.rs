//! Single-pass moment propagation over a frozen posterior — the analytic alternative to
//! Monte-Carlo serving.
//!
//! Monte-Carlo inference runs `S` sampled forward passes per request (`w = μ + ε∘σ` each
//! pass) and aggregates; the serving cost is `S` GEMMs plus `S·ε` Gaussian draws. Moment
//! propagation replaces the ensemble with **one analytic pass** that pushes the pair
//! `(E[x], Var[x])` through every layer, exploiting the fact that under the mean-field
//! posterior each weight is an *independent* Gaussian `N(μ, σ²)`:
//!
//! * **Linear / conv** (exact, given independent inputs): a weighted sum `y_i = Σ_j W_ij·x_j + b_i`
//!   of independent terms has
//!   `E[y]_i = Σ_j μ_ij·E[x]_j + b_i` and
//!   `Var[y]_i = Σ_j (μ²_ij·Var[x]_j + σ²_ij·(Var[x]_j + E[x]²_j))` — one GEMM for the mean
//!   and two accumulating GEMMs (or convolutions) for the variance, riding the same blocked
//!   kernels as the sampled path ([`bnn_tensor::kernels`]).
//! * **ReLU** (Gaussian approximation): treating the pre-activation as `X ~ N(m, s²)`, the
//!   rectified moments are closed-form in the standard normal pdf `φ` and cdf `Φ`:
//!   `E[max(X,0)] = m·Φ(m/s) + s·φ(m/s)` and
//!   `E[max(X,0)²] = (m² + s²)·Φ(m/s) + m·s·φ(m/s)`. The *approximation* is re-assuming the
//!   output is Gaussian for the next layer (it is left-truncated); the validation harness in
//!   `bnn-serve` pins how far this drifts from large-`S` Monte-Carlo in practice.
//! * **Max-pool** (mean-field argmax): the pooled mean is the max over window means and the
//!   pooled variance is gathered from the argmax position — exact when one window element
//!   dominates, an underestimate when means tie (documented divergence case).
//! * **Flatten**: a reshape of both moments.
//! * **Head**: predictive probabilities are `softmax(E[z])` and the per-class probability
//!   variance is the first-order delta method through the full softmax Jacobian over
//!   independent logits, `Var[p_i] ≈ Σ_j (p_i·(δ_ij − p_j))²·Var[z_j]`.
//!   [`Predictive::samples`] is 0, marking the summary as analytic.
//!
//! One deviation from the Monte-Carlo backend is structural, not numerical: every rule above
//! assumes **independent** weight perturbations (`ε ~ N(0, I)`), the textbook mean-field
//! posterior. The serial Shift-BNN GRNG that the MC path draws from advances its LFSR one
//! shift per ε, so consecutive draws share all but one register bit and are strongly
//! serially correlated — which inflates MC *predictive variance* well above the
//! independent-ε value while leaving the predictive mean and entropy essentially unchanged.
//! The validation harness in `bnn-serve` therefore pins mean and entropy tightly and gates
//! the per-class variance on scale (a pinned ratio window), not on tight agreement.
//!
//! Weight moments are taken from the posterior directly (`μ`, `σ = softplus(ρ)`), which is
//! exact for the default `Fp32` precision; quantized precisions sample *quantized* weights in
//! the MC path, so there the analytic moments are one further approximation.
//!
//! The φ/Φ evaluations run in `f64` (erf via the Abramowitz–Stegun 7.1.26 polynomial, max
//! absolute error 1.5e-7) so the approximation error — not the arithmetic — dominates; the
//! whole pass is deterministic and allocation-free in steady state under [`Scratch`].

use crate::network::{Network, Predictive};
use crate::snapshot::{LayerSnapshot, NetworkSnapshot};
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::kernels::{conv2d_forward_into, gemm_accumulate};
use bnn_tensor::loss::softmax_inplace;
use bnn_tensor::pool::max_pool2d_into;
use bnn_tensor::{Scratch, Tensor, TensorError};

/// `1/√(2π)`, the standard normal density normalizer.
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
/// `1/√2`, converting `erf` to the standard normal CDF.
const INV_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Error function via Abramowitz & Stegun 7.1.26 (5-term polynomial in `1/(1+px)` times a
/// Gaussian), maximum absolute error 1.5e-7 — far below the Gaussian-ReLU approximation error
/// it feeds.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = ((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
        * t
        + 0.254_829_592;
    sign * (1.0 - poly * t * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z * INV_SQRT_2))
}

/// Standard normal PDF `φ(z)`.
fn normal_pdf(z: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * z * z).exp()
}

/// The rectified-Gaussian moments: mean and variance of `max(X, 0)` for `X ~ N(m, v)`.
///
/// Degenerate spread (`v ≤ 0`, including the exact-input case) falls back to the
/// deterministic ReLU: `(max(m, 0), 0)`.
fn relu_moments(m: f64, v: f64) -> (f64, f64) {
    if v <= 0.0 {
        return (m.max(0.0), 0.0);
    }
    let s = v.sqrt();
    let z = m / s;
    let cdf = normal_cdf(z);
    let pdf = normal_pdf(z);
    let mean = m * cdf + s * pdf;
    let var = ((m * m + v) * cdf + m * s * pdf - mean * mean).max(0.0);
    (mean, var)
}

/// One layer of a [`MomentNetwork`]: the frozen weight moments a single analytic pass needs.
///
/// Bayesian layers pre-square their posteriors (`μ²`, `σ²`) at construction so the steady
/// state is pure GEMM traffic; parameter-free layers carry only geometry.
enum MomentLayer {
    /// A fully-connected layer's weight moments (`[out, in]`) and bias.
    Linear { mu: Tensor, mu_sq: Tensor, sigma_sq: Tensor, bias: Tensor },
    /// A convolution layer's weight moments (`[M, N, K, K]`), bias, and an all-zero bias used
    /// to seed the variance convolutions.
    Conv {
        geometry: ConvGeometry,
        mu: Tensor,
        mu_sq: Tensor,
        sigma_sq: Tensor,
        bias: Tensor,
        zero_bias: Tensor,
    },
    /// Rectified-Gaussian moment matching.
    Relu,
    /// Mean-field max-pool (window = stride).
    MaxPool { window: usize },
    /// Reshape of both moments.
    Flatten,
}

impl MomentLayer {
    fn name(&self) -> &'static str {
        match self {
            MomentLayer::Linear { .. } => "moment_linear",
            MomentLayer::Conv { .. } => "moment_conv",
            MomentLayer::Relu => "moment_relu",
            MomentLayer::MaxPool { .. } => "moment_max_pool",
            MomentLayer::Flatten => "moment_flatten",
        }
    }
}

/// A frozen posterior compiled for single-pass moment propagation: the analytic serving
/// backend (`ServeMode::Moment` in `bnn-serve`).
///
/// Built from the same [`NetworkSnapshot`] artifact the Monte-Carlo path serves, so a
/// checkpoint round-trips into either backend. The pass itself is deterministic (no ε
/// sources, no RNG) and allocation-free in steady state: every intermediate buffer cycles
/// through the owned [`Scratch`] arena.
pub struct MomentNetwork {
    layers: Vec<MomentLayer>,
    /// Classes at the head (the last linear layer's fan-out), for shape checks.
    classes: usize,
    scratch: Scratch,
}

impl std::fmt::Debug for MomentNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("MomentNetwork")
            .field("layers", &names)
            .field("classes", &self.classes)
            .finish()
    }
}

impl MomentNetwork {
    /// Compiles a snapshot's frozen `(μ, ρ)` posteriors into weight moments (`μ`, `μ²`,
    /// `σ² = softplus(ρ)²`).
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkSnapshot::validate`] shape errors, and rejects a snapshot whose
    /// last Bayesian layer is not a linear head (the delta-method softmax needs logits).
    pub fn from_snapshot(snapshot: &NetworkSnapshot) -> Result<MomentNetwork, TensorError> {
        snapshot.validate()?;
        let mut layers = Vec::with_capacity(snapshot.layers.len());
        let mut classes = 0;
        for layer in &snapshot.layers {
            layers.push(match layer {
                LayerSnapshot::Linear { out_features, weights, bias, .. } => {
                    classes = *out_features;
                    let sigma = weights.sigma();
                    MomentLayer::Linear {
                        mu: weights.mu().clone(),
                        mu_sq: weights.mu().map(|w| w * w),
                        sigma_sq: sigma.map(|s| s * s),
                        bias: bias.clone(),
                    }
                }
                LayerSnapshot::Conv { geometry, weights, bias, .. } => {
                    let sigma = weights.sigma();
                    MomentLayer::Conv {
                        geometry: *geometry,
                        mu: weights.mu().clone(),
                        mu_sq: weights.mu().map(|w| w * w),
                        sigma_sq: sigma.map(|s| s * s),
                        bias: bias.clone(),
                        zero_bias: Tensor::zeros(&[geometry.out_channels]),
                    }
                }
                LayerSnapshot::Relu => MomentLayer::Relu,
                LayerSnapshot::MaxPool { window } => MomentLayer::MaxPool { window: *window },
                LayerSnapshot::Flatten => MomentLayer::Flatten,
            });
        }
        Ok(MomentNetwork { layers, classes, scratch: Scratch::new() })
    }

    /// Compiles a live network (convenience over [`MomentNetwork::from_snapshot`]).
    ///
    /// # Errors
    ///
    /// Propagates [`MomentNetwork::from_snapshot`] errors.
    pub fn from_network(network: &Network) -> Result<MomentNetwork, TensorError> {
        MomentNetwork::from_snapshot(&network.snapshot())
    }

    /// Classes at the head.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of compiled layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when no layers were compiled.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The analytic predictive summary for `input` (see [`MomentNetwork::predictive_into`]).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layer rules.
    pub fn predictive(&mut self, input: &Tensor) -> Result<Predictive, TensorError> {
        let mut out = Predictive {
            mean: Tensor::zeros(&[0]),
            variance: Tensor::zeros(&[0]),
            entropy: 0.0,
            samples: 0,
        };
        self.predictive_into(input, &mut out)?;
        Ok(out)
    }

    /// One single-pass analytic predictive summary into a caller-provided buffer — the
    /// zero-allocation form the serving engine drives per request.
    ///
    /// The input is treated as exact (`Var[x] = 0`); uncertainty enters through the weight
    /// posteriors. `out.samples` is set to 0 to mark the summary as analytic rather than an
    /// `S`-sample Monte-Carlo aggregate; mean/variance/entropy have the same shapes as the
    /// MC path's, so `InferResponse`s are interchangeable between backends.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layer rules.
    pub fn predictive_into(
        &mut self,
        input: &Tensor,
        out: &mut Predictive,
    ) -> Result<(), TensorError> {
        let mut mean = self.scratch.take_tensor_copy(input);
        let mut var = self.scratch.take_tensor(input.shape());
        for layer in &self.layers {
            match layer {
                MomentLayer::Linear { mu, mu_sq, sigma_sq, bias } => {
                    let (out_f, in_f) = (mu.shape()[0], mu.shape()[1]);
                    if mean.len() != in_f {
                        let err = TensorError::ShapeMismatch {
                            left: mean.shape().to_vec(),
                            right: vec![in_f],
                        };
                        self.scratch.put_tensor(mean);
                        self.scratch.put_tensor(var);
                        return Err(err);
                    }
                    // E[y] = μ·E[x] + b — one GEMM with n = 1.
                    let mut out_mean = self.scratch.take_tensor(&[out_f]);
                    out_mean.data_mut().copy_from_slice(bias.data());
                    gemm_accumulate(out_mean.data_mut(), mu.data(), mean.data(), out_f, in_f, 1);
                    // Var[y] = μ²·Var[x] + σ²·(Var[x] + E[x]²) — two accumulating GEMMs into
                    // the zero-filled output, sharing the second moment E[x²] buffer.
                    let mut m2 = self.scratch.take_tensor(&[in_f]);
                    for ((d, &m), &v) in m2.data_mut().iter_mut().zip(mean.data()).zip(var.data()) {
                        *d = v + m * m;
                    }
                    let mut out_var = self.scratch.take_tensor(&[out_f]);
                    gemm_accumulate(out_var.data_mut(), mu_sq.data(), var.data(), out_f, in_f, 1);
                    gemm_accumulate(out_var.data_mut(), sigma_sq.data(), m2.data(), out_f, in_f, 1);
                    self.scratch.put_tensor(m2);
                    self.scratch.put_tensor(mean);
                    self.scratch.put_tensor(var);
                    mean = out_mean;
                    var = out_var;
                }
                MomentLayer::Conv { geometry, mu, mu_sq, sigma_sq, bias, zero_bias } => {
                    let in_shape = mean.shape();
                    if in_shape.len() != 3 || in_shape[0] != geometry.in_channels {
                        let err = TensorError::ShapeMismatch {
                            left: in_shape.to_vec(),
                            right: vec![geometry.in_channels, 0, 0],
                        };
                        self.scratch.put_tensor(mean);
                        self.scratch.put_tensor(var);
                        return Err(err);
                    }
                    let (oh, ow) = geometry.output_size(in_shape[1], in_shape[2]);
                    let out_shape = [geometry.out_channels, oh, ow];
                    // Mean path: one convolution of E[x] with μ, seeded by the bias.
                    let mut out_mean = self.scratch.take_tensor(&out_shape);
                    conv2d_forward_into(
                        geometry,
                        &mean,
                        mu,
                        bias,
                        &mut out_mean,
                        &mut self.scratch,
                    )?;
                    // Variance path: conv(Var[x], μ²) + conv(Var[x] + E[x]², σ²), bias-free.
                    let mut m2 = self.scratch.take_tensor(mean.shape());
                    for ((d, &m), &v) in m2.data_mut().iter_mut().zip(mean.data()).zip(var.data()) {
                        *d = v + m * m;
                    }
                    let mut out_var = self.scratch.take_tensor(&out_shape);
                    conv2d_forward_into(
                        geometry,
                        &var,
                        mu_sq,
                        zero_bias,
                        &mut out_var,
                        &mut self.scratch,
                    )?;
                    let mut sigma_term = self.scratch.take_tensor(&out_shape);
                    conv2d_forward_into(
                        geometry,
                        &m2,
                        sigma_sq,
                        zero_bias,
                        &mut sigma_term,
                        &mut self.scratch,
                    )?;
                    for (v, &s) in out_var.data_mut().iter_mut().zip(sigma_term.data()) {
                        *v += s;
                    }
                    self.scratch.put_tensor(sigma_term);
                    self.scratch.put_tensor(m2);
                    self.scratch.put_tensor(mean);
                    self.scratch.put_tensor(var);
                    mean = out_mean;
                    var = out_var;
                }
                MomentLayer::Relu => {
                    for (m, v) in mean.data_mut().iter_mut().zip(var.data_mut()) {
                        let (rm, rv) = relu_moments(*m as f64, *v as f64);
                        *m = rm as f32;
                        *v = rv as f32;
                    }
                }
                MomentLayer::MaxPool { window } => {
                    let in_shape = mean.shape();
                    if in_shape.len() != 3 {
                        let err = TensorError::ShapeMismatch {
                            left: in_shape.to_vec(),
                            right: vec![0, *window, *window],
                        };
                        self.scratch.put_tensor(mean);
                        self.scratch.put_tensor(var);
                        return Err(err);
                    }
                    let out_shape = [in_shape[0], in_shape[1] / window, in_shape[2] / window];
                    let out_len = out_shape.iter().product();
                    let mut out_mean = self.scratch.take_tensor(&out_shape);
                    let mut argmax = self.scratch.take_usize(out_len);
                    if let Err(err) = max_pool2d_into(&mean, *window, &mut out_mean, &mut argmax) {
                        self.scratch.put_usize(argmax);
                        self.scratch.put_tensor(out_mean);
                        self.scratch.put_tensor(mean);
                        self.scratch.put_tensor(var);
                        return Err(err);
                    }
                    // Gather the variance at each window's mean-argmax: the mean-field
                    // approximation that the window max is attained where the mean is.
                    let mut out_var = self.scratch.take_tensor(&out_shape);
                    for (d, &src) in out_var.data_mut().iter_mut().zip(argmax.iter()) {
                        *d = var.data()[src];
                    }
                    self.scratch.put_usize(argmax);
                    self.scratch.put_tensor(mean);
                    self.scratch.put_tensor(var);
                    mean = out_mean;
                    var = out_var;
                }
                MomentLayer::Flatten => {
                    let len = mean.len();
                    mean.reshape_in_place(&[len])?;
                    var.reshape_in_place(&[len])?;
                }
            }
        }
        // Head: probabilities from the logit means, per-class probability variance through
        // the full softmax Jacobian (first-order delta method over independent logits):
        // `Var[p_i] ≈ Σ_j (p_i·(δ_ij − p_j))²·Var[z_j]`.
        softmax_inplace(&mut mean);
        crate::network::reuse_buffer(&mut out.mean, mean.shape());
        crate::network::reuse_buffer(&mut out.variance, mean.shape());
        out.mean.data_mut().copy_from_slice(mean.data());
        let probs = mean.data();
        let logit_var = var.data();
        for (i, d) in out.variance.data_mut().iter_mut().enumerate() {
            let p_i = probs[i] as f64;
            let mut acc = 0.0f64;
            for (j, (&p_j, &vz)) in probs.iter().zip(logit_var).enumerate() {
                let jac = if i == j { p_i * (1.0 - p_i) } else { -p_i * p_j as f64 };
                acc += jac * jac * vz.max(0.0) as f64;
            }
            *d = acc as f32;
        }
        out.entropy = Network::predictive_entropy(&out.mean);
        out.samples = 0;
        self.scratch.put_tensor(mean);
        self.scratch.put_tensor(var);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::{EpsilonSource, LfsrForward};
    use crate::variational::BayesConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mc_sources(count: usize, base: u64) -> Vec<Box<dyn EpsilonSource>> {
        (0..count)
            .map(|i| Box::new(LfsrForward::new(base + i as u64).unwrap()) as Box<dyn EpsilonSource>)
            .collect()
    }

    #[test]
    fn erf_matches_known_values() {
        // erf(0) = 0, erf(1) ≈ 0.8427007929, erf(2) ≈ 0.9953222650, odd symmetry.
        assert!(erf(0.0).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 2e-7);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
    }

    #[test]
    fn relu_moments_match_closed_form_limits() {
        // Deep in the positive tail the ReLU is the identity: moments pass through.
        let (m, v) = relu_moments(10.0, 0.25);
        assert!((m - 10.0).abs() < 1e-6);
        assert!((v - 0.25).abs() < 1e-4);
        // Deep in the negative tail everything is clipped to zero.
        let (m, v) = relu_moments(-10.0, 0.25);
        assert!(m.abs() < 1e-6 && v.abs() < 1e-6);
        // At m = 0: E = s/√(2π), Var = s²(1/2 − 1/(2π)).
        let (m, v) = relu_moments(0.0, 1.0);
        assert!((m - INV_SQRT_2PI).abs() < 1e-6);
        assert!((v - (0.5 - 1.0 / (2.0 * std::f64::consts::PI))).abs() < 1e-6);
        // Degenerate spread falls back to the deterministic ReLU.
        assert_eq!(relu_moments(3.0, 0.0), (3.0, 0.0));
        assert_eq!(relu_moments(-3.0, 0.0), (0.0, 0.0));
    }

    #[test]
    fn moment_summary_is_deterministic_and_well_formed() {
        let mut rng = StdRng::seed_from_u64(31);
        let net = Network::bayes_mlp(6, &[8], 3, BayesConfig::default(), &mut rng);
        let mut moment = MomentNetwork::from_network(&net).unwrap();
        let input = Tensor::filled(&[6], 0.4);
        let a = moment.predictive(&input).unwrap();
        let b = moment.predictive(&input).unwrap();
        assert_eq!(a, b, "the analytic pass must be bit-deterministic");
        assert_eq!(a.samples, 0, "samples = 0 marks the summary as analytic");
        assert_eq!(a.mean.shape(), &[3]);
        assert_eq!(a.variance.shape(), &[3]);
        assert!((a.mean.sum() - 1.0).abs() < 1e-5);
        assert!(a.variance.data().iter().all(|&v| v >= 0.0));
        assert!(a.entropy >= 0.0);
    }

    #[test]
    fn moment_mean_tracks_large_s_monte_carlo_on_an_mlp() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut net = Network::bayes_mlp(5, &[7, 6], 3, BayesConfig::default(), &mut rng);
        let mut moment = MomentNetwork::from_network(&net).unwrap();
        let input = Tensor::filled(&[5], 0.3);
        let analytic = moment.predictive(&input).unwrap();
        let mut sources = mc_sources(512, 900);
        let mc = net.predictive(&input, &mut sources).unwrap();
        for (a, m) in analytic.mean.data().iter().zip(mc.mean.data()) {
            assert!((a - m).abs() < 0.02, "analytic mean {a} vs MC mean {m}");
        }
        assert!((analytic.entropy - mc.entropy).abs() < 0.05);
    }

    #[test]
    fn moment_pass_handles_the_lenet_stack() {
        let mut rng = StdRng::seed_from_u64(33);
        let net = Network::bayes_lenet(&[1, 8, 8], 4, BayesConfig::default(), &mut rng);
        let mut moment = MomentNetwork::from_network(&net).unwrap();
        assert_eq!(moment.classes(), 4);
        let out = moment.predictive(&Tensor::filled(&[1, 8, 8], 0.5)).unwrap();
        assert_eq!(out.mean.shape(), &[4]);
        assert!((out.mean.sum() - 1.0).abs() < 1e-5);
        assert!(out.variance.data().iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn steady_state_moment_pass_reuses_scratch() {
        let mut rng = StdRng::seed_from_u64(34);
        let net = Network::bayes_lenet(&[1, 8, 8], 3, BayesConfig::default(), &mut rng);
        let mut moment = MomentNetwork::from_network(&net).unwrap();
        let input = Tensor::filled(&[1, 8, 8], 0.2);
        let mut out = moment.predictive(&input).unwrap();
        moment.predictive_into(&input, &mut out).unwrap();
        let pooled = moment.scratch.pooled_buffers();
        for _ in 0..3 {
            moment.predictive_into(&input, &mut out).unwrap();
            assert_eq!(
                moment.scratch.pooled_buffers(),
                pooled,
                "steady-state passes must not grow the arena"
            );
        }
    }

    #[test]
    fn mismatched_input_shape_is_rejected() {
        let mut rng = StdRng::seed_from_u64(35);
        let net = Network::bayes_mlp(4, &[5], 2, BayesConfig::default(), &mut rng);
        let mut moment = MomentNetwork::from_network(&net).unwrap();
        assert!(moment.predictive(&Tensor::filled(&[3], 0.1)).is_err());
        // The arena survives the error path: a well-shaped request still succeeds.
        assert!(moment.predictive(&Tensor::filled(&[4], 0.1)).is_ok());
    }
}
