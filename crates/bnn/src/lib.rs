//! Bayes-by-Backprop BNN training with LFSR-retrieved Gaussian samples — the algorithmic half of
//! the Shift-BNN reproduction.
//!
//! A Bayesian neural network keeps a Gaussian distribution `N(μ, σ²)` per weight and trains
//! `(μ, σ)` by variational inference: per training example it draws `S` weight samples
//! `w = μ + ε∘σ`, runs forward/backward/gradient-calculation for each sampled model, and
//! averages the parameter gradients (the paper's Fig. 1(a)). The Gaussian random variables ε are
//! needed twice — at sampling time and again during backpropagation — and how they are kept
//! around is exactly what distinguishes the baseline from Shift-BNN:
//!
//! * [`epsilon::StoreReplay`] stores every ε (the baseline's DRAM round trip);
//! * [`epsilon::LfsrRetrieve`] regenerates every ε locally by shifting the LFSR backwards;
//! * [`epsilon::LfsrForward`] is the inference-only sibling — a pure forward stream whose
//!   whole ε ensemble is reproducible from a 64-bit seed, which is what the serving engine
//!   (`bnn-serve`) relies on for storage-free, bit-deterministic Monte-Carlo inference
//!   (see [`network::Network::predictive`]).
//!
//! Both produce bit-identical training, which this crate's tests and the `fig09` benchmark
//! binary demonstrate.
//!
//! # Modules
//!
//! * [`variational`] — the (μ, ρ) parameter pair and Bayes-by-Backprop gradients;
//! * [`layers`] — Bayesian linear / convolution layers plus ReLU, pooling and flatten;
//! * [`network`] — sequential container and B-MLP / B-LeNet builders;
//! * [`moment`] — single-pass analytic moment propagation over a frozen posterior (the
//!   Monte-Carlo-free serving backend);
//! * [`trainer`] — the training loop, metrics, and the ε-strategy switch;
//! * [`data`] — deterministic synthetic datasets standing in for MNIST/CIFAR/ImageNet;
//! * [`epsilon`] — the ε-source abstraction;
//! * [`snapshot`] — restorable captures of networks and whole training runs (the in-memory
//!   artifact the `bnn-store` checkpoint format serializes).
//!
//! # Example
//!
//! ```
//! use bnn_train::data::SyntheticDataset;
//! use bnn_train::network::Network;
//! use bnn_train::trainer::{Trainer, TrainerConfig};
//! use bnn_train::variational::BayesConfig;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), bnn_train::trainer::TrainError> {
//! let dataset = SyntheticDataset::generate(&[4], 2, 6, 0.2, 3);
//! let mut rng = StdRng::seed_from_u64(0);
//! let network = Network::bayes_mlp(4, &[8], 2, BayesConfig::default(), &mut rng);
//! let mut trainer = Trainer::new(network, TrainerConfig { samples: 2, ..Default::default() })?;
//! let metrics = trainer.train_epoch(&dataset)?;
//! assert!(metrics.steps > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data;
pub mod epsilon;
pub mod layers;
pub mod moment;
pub mod network;
pub mod snapshot;
pub mod trainer;
pub mod variational;

pub use epsilon::{EpsilonSource, LfsrForward, LfsrRetrieve, SourceState, StoreReplay};
pub use moment::MomentNetwork;
pub use network::{Network, Predictive};
pub use snapshot::{LayerSnapshot, NetworkSnapshot, TrainerSnapshot};
pub use trainer::{EpsilonStrategy, Trainer, TrainerConfig};
pub use variational::BayesConfig;
