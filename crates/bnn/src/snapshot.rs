//! Restorable captures of networks and trainers — the in-memory half of the checkpoint story.
//!
//! The paper's observation is that the posterior `θ = (μ, ρ)` is the *durable* artifact of
//! Bayesian training while every ε is regenerable from an LFSR seed. This module makes that
//! artifact first-class: a [`NetworkSnapshot`] captures the full trainable state of a
//! [`Network`] (parameters, gradient accumulators, geometry), and a [`TrainerSnapshot`] adds
//! everything else a training run carries — the step count, the trainer configuration and one
//! [`SourceState`] per Monte-Carlo sample (the GRNG registers mid-stream). Rebuilding from a
//! snapshot is **bit-exact**: a run resumed from a snapshot at step `K` produces the same
//! posteriors and loss trace as the uninterrupted run, down to `to_bits()` equality (pinned by
//! `crates/store`'s resume-determinism test).
//!
//! Snapshots are plain in-memory values; the binary serialization (versioned, checksummed)
//! lives in the `bnn-store` crate, which encodes exactly the fields defined here.

use crate::epsilon::SourceState;
use crate::layers::{BayesConv2d, BayesLinear, FlattenLayer, Layer, MaxPoolLayer, ReluLayer};
use crate::network::Network;
use crate::trainer::TrainerConfig;
use crate::variational::{BayesConfig, VariationalParams};
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::{Tensor, TensorError};

/// The captured state of one layer (see [`Layer::snapshot`]). Parameter-free layers carry
/// only their geometry; Bayesian layers carry their full `(μ, ρ)` posteriors, biases and
/// gradient accumulators.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSnapshot {
    /// A [`BayesLinear`] layer.
    Linear {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
        /// The `(μ, ρ)` posterior with gradient accumulators.
        weights: VariationalParams,
        /// The bias vector.
        bias: Tensor,
        /// The bias gradient accumulator.
        grad_bias: Tensor,
    },
    /// A [`BayesConv2d`] layer.
    Conv {
        /// The convolution geometry.
        geometry: ConvGeometry,
        /// The `(μ, ρ)` posterior with gradient accumulators.
        weights: VariationalParams,
        /// The bias vector.
        bias: Tensor,
        /// The bias gradient accumulator.
        grad_bias: Tensor,
    },
    /// A parameter-free ReLU layer.
    Relu,
    /// A parameter-free max-pooling layer.
    MaxPool {
        /// Pooling window (and stride).
        window: usize,
    },
    /// A parameter-free flatten layer.
    Flatten,
}

impl LayerSnapshot {
    /// Materializes the captured layer (bit-exact; see the layer `from_parts` constructors).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the captured tensors are inconsistent with
    /// the captured geometry (possible only for hand-built or corrupted snapshots).
    pub fn build(&self, config: BayesConfig) -> Result<Box<dyn Layer>, TensorError> {
        Ok(match self {
            LayerSnapshot::Linear { in_features, out_features, weights, bias, grad_bias } => {
                Box::new(BayesLinear::from_parts(
                    *in_features,
                    *out_features,
                    weights.clone(),
                    bias.clone(),
                    grad_bias.clone(),
                    config,
                )?)
            }
            LayerSnapshot::Conv { geometry, weights, bias, grad_bias } => {
                Box::new(BayesConv2d::from_parts(
                    *geometry,
                    weights.clone(),
                    bias.clone(),
                    grad_bias.clone(),
                    config,
                )?)
            }
            LayerSnapshot::Relu => Box::new(ReluLayer::new()),
            LayerSnapshot::MaxPool { window } => Box::new(MaxPoolLayer::new(*window)),
            LayerSnapshot::Flatten => Box::new(FlattenLayer::new()),
        })
    }

    /// Number of ε values the captured layer draws per Monte-Carlo sample.
    pub fn epsilon_count(&self) -> usize {
        match self {
            LayerSnapshot::Linear { weights, .. } | LayerSnapshot::Conv { weights, .. } => {
                weights.len()
            }
            _ => 0,
        }
    }

    /// Checks the capture's internal consistency — everything [`LayerSnapshot::build`] could
    /// fail on — **without** materializing a layer (no tensor clones). `validate().is_ok()`
    /// guarantees `build` succeeds.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when a captured tensor disagrees with the
    /// captured geometry (a zero pooling window reports as the degenerate `[0]` vs `[1]`
    /// window-shape mismatch).
    pub fn validate(&self) -> Result<(), TensorError> {
        let shape_check = |found: &[usize], expect: Vec<usize>| {
            if found == expect.as_slice() {
                Ok(())
            } else {
                Err(TensorError::ShapeMismatch { left: found.to_vec(), right: expect })
            }
        };
        match self {
            LayerSnapshot::Linear { in_features, out_features, weights, bias, grad_bias } => {
                shape_check(weights.shape(), vec![*out_features, *in_features])?;
                shape_check(bias.shape(), vec![*out_features])?;
                shape_check(grad_bias.shape(), vec![*out_features])
            }
            LayerSnapshot::Conv { geometry, weights, bias, grad_bias } => {
                shape_check(
                    weights.shape(),
                    vec![
                        geometry.out_channels,
                        geometry.in_channels,
                        geometry.kernel,
                        geometry.kernel,
                    ],
                )?;
                shape_check(bias.shape(), vec![geometry.out_channels])?;
                shape_check(grad_bias.shape(), vec![geometry.out_channels])
            }
            LayerSnapshot::MaxPool { window } => shape_check(&[*window], vec![(*window).max(1)]),
            LayerSnapshot::Relu | LayerSnapshot::Flatten => Ok(()),
        }
    }
}

/// The captured trainable state of a whole [`Network`]: the frozen-posterior artifact a
/// checkpoint persists and a serving replica is materialized from.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSnapshot {
    /// The network's Bayesian hyper-parameters.
    pub config: BayesConfig,
    /// Per-layer captures, in stack order.
    pub layers: Vec<LayerSnapshot>,
}

impl NetworkSnapshot {
    /// Materializes a network from the capture. The result is bit-identical to the network
    /// the snapshot was taken from: same parameters, same accumulators, same forward and
    /// backward arithmetic.
    ///
    /// # Errors
    ///
    /// Propagates shape validation from [`LayerSnapshot::build`].
    pub fn build(&self) -> Result<Network, TensorError> {
        let mut network = Network::new(self.config);
        for layer in &self.layers {
            network.push(layer.build(self.config)?);
        }
        Ok(network)
    }

    /// Number of ε values one Monte-Carlo sample of the captured network draws.
    pub fn epsilon_count(&self) -> usize {
        self.layers.iter().map(LayerSnapshot::epsilon_count).sum()
    }

    /// Checks every layer capture's consistency without materializing anything (see
    /// [`LayerSnapshot::validate`]); `validate().is_ok()` guarantees [`NetworkSnapshot::build`]
    /// succeeds. This is what the checkpoint decoder and the serving `CheckpointReplica` run
    /// instead of building (and immediately dropping) a whole throwaway network.
    ///
    /// # Errors
    ///
    /// Returns the first layer's [`TensorError::ShapeMismatch`].
    pub fn validate(&self) -> Result<(), TensorError> {
        self.layers.iter().try_for_each(LayerSnapshot::validate)
    }
}

/// The complete state of a training run at an iteration boundary: posterior, trainer
/// configuration, step count, and the mid-stream GRNG capture of every Monte-Carlo sample's
/// ε source. `TrainerSnapshot::build` + further training is bit-identical to never having
/// stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerSnapshot {
    /// The captured network.
    pub network: NetworkSnapshot,
    /// The trainer's hyper-parameters (including the ε strategy and base seed).
    pub config: TrainerConfig,
    /// Training steps taken so far ([`crate::trainer::Trainer::steps`]).
    pub steps: u64,
    /// Per-sample ε source captures, in sample order.
    pub sources: Vec<SourceState>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::LfsrRetrieve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn network_snapshot_round_trips_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Network::bayes_lenet(&[1, 8, 8], 3, BayesConfig::default(), &mut rng);
        let snap = net.snapshot();
        let mut rebuilt = snap.build().unwrap();
        assert_eq!(rebuilt.len(), net.len());
        assert_eq!(rebuilt.epsilon_count(), net.epsilon_count());
        assert_eq!(snap.epsilon_count(), net.epsilon_count());
        // Identical forward arithmetic from identically seeded sources.
        let input = Tensor::filled(&[1, 8, 8], 0.4);
        let mut a = LfsrRetrieve::new(5).unwrap();
        let mut b = LfsrRetrieve::new(5).unwrap();
        net.begin_iteration(1);
        rebuilt.begin_iteration(1);
        let out_a = net.forward_sample(0, &input, &mut a).unwrap();
        let out_b = rebuilt.forward_sample(0, &input, &mut b).unwrap();
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn hand_built_inconsistent_snapshot_fails_to_build() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = VariationalParams::init(&[4, 2], &BayesConfig::default(), &mut rng);
        let snap = NetworkSnapshot {
            config: BayesConfig::default(),
            layers: vec![LayerSnapshot::Linear {
                in_features: 3, // inconsistent with the [4, 2] weights
                out_features: 4,
                weights,
                bias: Tensor::zeros(&[4]),
                grad_bias: Tensor::zeros(&[4]),
            }],
        };
        assert!(snap.build().is_err());
        assert!(snap.validate().is_err());
    }

    #[test]
    fn validate_agrees_with_build_without_materializing() {
        let mut rng = StdRng::seed_from_u64(12);
        let net = Network::bayes_lenet(&[1, 8, 8], 3, BayesConfig::default(), &mut rng);
        let snap = net.snapshot();
        assert!(snap.validate().is_ok());
        assert!(snap.build().is_ok());
        // Every corruption build() would reject, validate() must reject too.
        let mut bad = snap.clone();
        if let LayerSnapshot::Conv { bias, .. } = &mut bad.layers[0] {
            *bias = Tensor::zeros(&[7]);
        } else {
            panic!("first LeNet layer is a conv");
        }
        assert!(bad.validate().is_err());
        assert!(bad.build().is_err());
        // The zero pooling window — which build() would *panic* on — validates to an error.
        let mut bad = snap.clone();
        bad.layers[2] = LayerSnapshot::MaxPool { window: 0 };
        assert!(bad.validate().is_err());
    }
}
