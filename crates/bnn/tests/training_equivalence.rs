//! Cross-module integration and property tests: the LFSR-retrieval training path is bit-exact
//! against the store-and-replay baseline across network shapes, sample counts and precisions.

use bnn_tensor::Precision;
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_trainer(
    strategy: EpsilonStrategy,
    samples: usize,
    seed: u64,
    precision: Precision,
    conv: bool,
) -> Trainer {
    let mut rng = StdRng::seed_from_u64(seed);
    let config =
        BayesConfig { kl_weight: 1e-3, ..BayesConfig::default() }.with_precision(precision);
    let network = if conv {
        Network::bayes_lenet(&[1, 8, 8], 3, config, &mut rng)
    } else {
        Network::bayes_mlp(16, &[10], 3, config, &mut rng)
    };
    Trainer::new(
        network,
        TrainerConfig { samples, learning_rate: 0.05, strategy, seed: seed ^ 0xABCD },
    )
    .unwrap()
}

fn dataset(conv: bool, seed: u64) -> SyntheticDataset {
    if conv {
        SyntheticDataset::generate(&[1, 8, 8], 3, 4, 0.2, seed)
    } else {
        SyntheticDataset::generate(&[16], 3, 4, 0.2, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any sample count, seed, precision and architecture family, LFSR retrieval and
    /// store-replay produce identical training trajectories.
    #[test]
    fn lfsr_retrieval_is_bit_exact(
        samples in 1usize..5,
        seed in 1u64..1_000,
        precision_16 in prop::bool::ANY,
        conv in prop::bool::ANY,
    ) {
        let precision = if precision_16 { Precision::PAPER_16BIT } else { Precision::Fp32 };
        let data = dataset(conv, seed);
        let mut baseline = build_trainer(EpsilonStrategy::StoreReplay, samples, seed, precision, conv);
        let mut shift = build_trainer(EpsilonStrategy::LfsrRetrieve, samples, seed, precision, conv);
        for _ in 0..2 {
            let mb = baseline.train_epoch(&data).unwrap();
            let ms = shift.train_epoch(&data).unwrap();
            prop_assert_eq!(mb, ms);
        }
        let acc_b = baseline.evaluate(&data).unwrap();
        let acc_s = shift.evaluate(&data).unwrap();
        prop_assert_eq!(acc_b, acc_s);
        prop_assert_eq!(shift.stored_epsilons(), 0);
        prop_assert!(baseline.stored_epsilons() > 0);
    }
}

#[test]
fn lenet_on_synthetic_cifar_converges_and_strategies_agree() {
    let data = SyntheticDataset::generate(&[1, 8, 8], 3, 8, 0.25, 99);
    let (train, val) = data.split(0.75);
    let mut shift = build_trainer(EpsilonStrategy::LfsrRetrieve, 2, 5, Precision::Fp32, true);
    let first = shift.train_epoch(&train).unwrap();
    let mut last = first;
    for _ in 0..6 {
        last = shift.train_epoch(&train).unwrap();
    }
    assert!(last.mean_nll < first.mean_nll, "nll {} -> {}", first.mean_nll, last.mean_nll);
    let acc = shift.evaluate(&val).unwrap();
    assert!(acc > 0.3, "validation accuracy {acc}");
}

#[test]
fn eight_bit_training_degrades_relative_to_sixteen_bit() {
    // The Table 1 trend: 8-bit fixed point is materially worse (often divergent) while 16-bit
    // tracks fp32 closely.
    let data = SyntheticDataset::generate(&[16], 3, 10, 0.2, 21);
    let mut acc = Vec::new();
    for precision in [Precision::Fp32, Precision::PAPER_16BIT, Precision::PAPER_8BIT] {
        let mut t = build_trainer(EpsilonStrategy::LfsrRetrieve, 2, 13, precision, false);
        for _ in 0..10 {
            t.train_epoch(&data).unwrap();
        }
        acc.push(t.evaluate(&data).unwrap());
    }
    let (fp32, fx16, fx8) = (acc[0], acc[1], acc[2]);
    assert!((fp32 - fx16).abs() < 0.25, "16-bit should track fp32: {fp32} vs {fx16}");
    assert!(fx8 <= fx16 + 1e-9, "8-bit should not beat 16-bit: {fx8} vs {fx16}");
}
