//! Fused-sampling identity tests (PR 8): batching all `S` sampled forward passes into one
//! stacked walk — `Network::forward_all_samples` / `Network::predictive_fused_into` — must be
//! a pure layout change. Every number the per-sample path produces, the fused path must
//! reproduce **bit for bit**: predictive summaries at inference time, and the complete
//! training trajectory (losses, posteriors, GRNG states) when the trainer's forward stage
//! runs fused.

use bnn_train::data::SyntheticDataset;
use bnn_train::epsilon::LfsrForward;
use bnn_train::network::Network;
use bnn_train::trainer::{Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use bnn_train::EpsilonSource;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn forward_sources(samples: usize, seed: u64) -> Vec<Box<dyn EpsilonSource>> {
    (1..=samples)
        .map(|s| {
            Box::new(LfsrForward::new(seed.wrapping_mul(s as u64 * 2 + 1)).unwrap())
                as Box<dyn EpsilonSource>
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `predictive_fused` matches `predictive` bit-for-bit on both architecture families,
    /// any sample count, and under quantized precisions.
    #[test]
    fn fused_predictive_is_bit_identical(
        samples in 1usize..7,
        seed in 1u64..10_000,
        conv in prop::bool::ANY,
        precision_16 in prop::bool::ANY,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = BayesConfig::default();
        if precision_16 {
            config = config.with_precision(bnn_tensor::Precision::PAPER_16BIT);
        }
        let (mut net, input) = if conv {
            (
                Network::bayes_lenet(&[1, 8, 8], 3, config, &mut rng),
                bnn_tensor::init::splitmix_tensor(seed ^ 0xF0F0, &[1, 8, 8]),
            )
        } else {
            (
                Network::bayes_mlp(9, &[7], 3, config, &mut rng),
                bnn_tensor::init::splitmix_tensor(seed ^ 0xF0F0, &[9]),
            )
        };
        let mut sources = forward_sources(samples, seed);
        let per_sample = net.predictive(&input, &mut sources).unwrap();
        let mut sources = forward_sources(samples, seed);
        let fused = net.predictive_fused(&input, &mut sources).unwrap();
        prop_assert_eq!(&fused, &per_sample, "fused predictive summary diverged");
        // The ε sources must end in the same state either way: reseeding and rerunning the
        // per-sample path after a fused run reproduces the summary again.
        let mut sources = forward_sources(samples, seed);
        prop_assert_eq!(net.predictive(&input, &mut sources).unwrap(), per_sample);
    }

    /// A trainer with the fused forward stage produces the same trajectory as the
    /// per-sample trainer: identical step metrics, identical final posterior, identical
    /// GRNG registers — the fused stage leaves bit-identical caches for the backward stage.
    #[test]
    fn fused_training_trajectory_is_bit_identical(
        samples in 1usize..5,
        seed in 1u64..10_000,
        conv in prop::bool::ANY,
    ) {
        let build = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = BayesConfig { kl_weight: 1e-3, ..BayesConfig::default() };
            let network = if conv {
                Network::bayes_lenet(&[1, 8, 8], 3, config, &mut rng)
            } else {
                Network::bayes_mlp(12, &[8], 3, config, &mut rng)
            };
            Trainer::new(
                network,
                TrainerConfig { samples, learning_rate: 0.05, seed: seed ^ 0x5A5A, ..TrainerConfig::default() },
            )
            .unwrap()
        };
        let data = if conv {
            SyntheticDataset::generate(&[1, 8, 8], 3, 3, 0.2, seed)
        } else {
            SyntheticDataset::generate(&[12], 3, 3, 0.2, seed)
        };
        let mut per_sample = build();
        let mut fused = build();
        fused.set_fused_forward(true);
        prop_assert!(fused.fused_forward());
        for _ in 0..2 {
            for (image, label) in data.iter() {
                let a = per_sample.train_example(image, label).unwrap();
                let b = fused.train_example(image, label).unwrap();
                prop_assert_eq!(a, b, "step metrics diverged");
            }
        }
        let a = per_sample.snapshot();
        let b = fused.snapshot();
        prop_assert_eq!(a.network, b.network, "posteriors diverged");
        prop_assert_eq!(a.sources, b.sources, "GRNG states diverged");
    }
}

/// The fused inference path allocates nothing per call once warmed up: the scratch pools
/// stop growing after the first request (the serving zero-allocation contract, checked
/// coarsely here via pool size and precisely by `crates/bench`'s allocation counter).
#[test]
fn fused_predictive_reuses_its_buffers() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut net = Network::bayes_lenet(&[1, 8, 8], 3, BayesConfig::default(), &mut rng);
    let input = bnn_tensor::init::splitmix_tensor(123, &[1, 8, 8]);
    let mut out = net.predictive_fused(&input, &mut forward_sources(4, 9)).unwrap();
    // Warmup done; further fused calls must reuse the same buffers and reproduce the result.
    let first = out.clone();
    for round in 0..3 {
        net.predictive_fused_into(&input, &mut forward_sources(4, 9), &mut out).unwrap();
        assert_eq!(out, first, "round {round} diverged");
    }
}
