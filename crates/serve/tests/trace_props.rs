//! Span-tree invariants of the traced cluster path, property-tested across random fault
//! plans × all four arrival processes on small **executed** clusters (real engines, phase B
//! pinned to phase A internally).
//!
//! The invariants, for every submitted request:
//!
//! * the recorded event stream assembles into one span tree per request;
//! * every tree is **well-formed** — monotone ticks, children nested inside their parent —
//!   and carries exactly one terminal answer-or-shed leaf, matching the report's outcome;
//! * stage attribution tiles an answered request's admit→answer window **exactly** (the
//!   five named stages sum to 100% of its end-to-end tick latency);
//! * tracing is free: responses serialize byte-identically with the recorder on or off.

use bnn_obs::{assemble_traces, NullRecorder, SpanNode, TraceRecorder};
use bnn_serve::{
    ArrivalProcess, BatchPolicy, Cluster, ClusterConfig, DegradeLadder, FaultEvent, FaultPlan,
    ModelSource, ModelSpec, RequestOutcome, RetryPolicy, RoutingPolicy, ServeMode, WorkloadSpec,
};
use proptest::prelude::*;

fn arrival_process(selector: u8) -> ArrivalProcess {
    match selector % 4 {
        0 => ArrivalProcess::Uniform,
        1 => ArrivalProcess::Bursty { mean_burst: 5 },
        2 => ArrivalProcess::Diurnal { cycle: 64 },
        _ => ArrivalProcess::Adversarial { spike: 12 },
    }
}

/// A random crash window + slow window + retry policy + degradation ladder, `knobs`-packed
/// like `admission_props::random_fault_plan` (proptest's tuple limit caps named inputs).
fn random_fault_plan(shards: usize, down_tick: u64, window: u64, knobs: u32) -> FaultPlan {
    let mut knobs = knobs as u64;
    let mut draw = |range: u64| {
        let v = knobs % range;
        knobs /= range;
        v
    };
    let crash_shard = draw(shards as u64) as usize;
    let slow_shard = draw(shards as u64) as usize;
    let multiplier = 1 + draw(3);
    let base_backoff = 1 + draw(60);
    let budget = draw(3) as u32;
    let reduce = 1 + draw(3) as usize;
    let moment_step = 1 + draw(3) as usize;
    let shed_step = 1 + draw(3) as usize;
    let up_tick = down_tick + window;
    FaultPlan::new(vec![
        FaultEvent::ShardDown { tick: down_tick, shard: crash_shard },
        FaultEvent::SlowShard {
            shard: slow_shard,
            from_tick: down_tick,
            until_tick: up_tick,
            multiplier,
        },
        FaultEvent::ShardUp { tick: up_tick, shard: crash_shard },
    ])
    .with_retry(RetryPolicy {
        base_backoff_ticks: base_backoff,
        max_backoff_ticks: base_backoff * 4,
        max_retries: budget,
    })
    .with_ladder(DegradeLadder {
        reduced_samples: 1,
        reduce_watermark: reduce,
        moment_watermark: reduce + moment_step,
        shed_watermark: reduce + moment_step + shed_step,
    })
}

fn cluster(shards: usize, queue_cap: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        source: ModelSource::Spec(ModelSpec::mlp(2021)),
        mode: ServeMode::MonteCarlo,
        shards,
        workers_per_shard: 1,
        batch: BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
        queue_cap,
        deadline_ticks: None,
        routing: RoutingPolicy::LeastLoaded,
        autoscale: None,
    })
}

/// Terminal (`answer` / `shed`) leaves in a span tree.
fn terminal_count(node: &SpanNode) -> usize {
    let own = usize::from(node.stage == "answer" || node.stage == "shed");
    own + node.children.iter().map(terminal_count).sum::<usize>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every admitted request's span tree is well-formed under random fault plans × all
    /// four arrival processes, terminal leaves match outcomes, answered attribution is
    /// exact, and tracing never perturbs the responses.
    #[test]
    fn span_trees_are_well_formed_under_random_faults(
        requests in 1usize..40,
        interarrival in 1u64..6,
        shards in 1usize..4,
        queue_cap in 1usize..8,
        selector in 0u8..4,
        down_tick in 0u64..200,
        window in 1u64..300,
        knobs in 0u32..u32::MAX,
    ) {
        let faults = random_fault_plan(shards, down_tick, window, knobs);
        let spec = ModelSpec::mlp(2021);
        let trace = WorkloadSpec::uniform(requests, interarrival, 2, 4242)
            .with_arrival(arrival_process(selector))
            .generate(&spec);
        let cluster = cluster(shards, queue_cap);

        let mut rec = TraceRecorder::new();
        let report = cluster.run_traced(&trace, &[], &faults, &mut rec);
        let untraced = cluster.run_traced(&trace, &[], &faults, &mut NullRecorder);
        prop_assert_eq!(
            untraced.responses_json(),
            report.responses_json(),
            "responses must be byte-identical tracing-on vs tracing-off"
        );

        let traces = assemble_traces(rec.events())
            .map_err(|e| TestCaseError::fail(format!("span assembly failed: {e}")))?;
        prop_assert_eq!(traces.len(), trace.len(), "one span tree per submitted request");

        for (t, request) in traces.iter().zip(&trace) {
            prop_assert_eq!(t.request, request.id);
            prop_assert!(
                t.root.well_formed().is_ok(),
                "request {}: malformed span tree: {:?}", t.request, t.root.well_formed()
            );
            prop_assert_eq!(
                terminal_count(&t.root), 1,
                "request {}: exactly one answer-or-shed leaf", t.request
            );
            let index = t.request as usize;
            match &report.outcomes[index] {
                RequestOutcome::Answered { end_tick, .. } => {
                    prop_assert!(t.breakdown.answered);
                    prop_assert_eq!(t.breakdown.end_tick, *end_tick);
                    prop_assert_eq!(
                        t.breakdown.coverage(), 1.0,
                        "request {}: attribution must tile the window exactly", t.request
                    );
                    prop_assert_eq!(t.breakdown.attributed(), t.breakdown.total());
                }
                RequestOutcome::Shed { tick, .. } => {
                    prop_assert!(!t.breakdown.answered);
                    prop_assert_eq!(t.breakdown.end_tick, *tick);
                }
            }
        }
    }
}
