//! Golden chaos scenario: the exact tick of every failover retry, every degradation-ladder
//! transition, the checkpoint-corruption cancellation, and the post-recovery drain of one
//! fixed adversarial fault schedule is hardcoded below — any change to the fault loop's
//! event ordering, the backoff arithmetic, the ladder thresholds, or the eviction boundary
//! trips it (the chaos analogue of `cluster_determinism`'s shed/escalation golden).
//!
//! The scenario packs every fault type into one run: a crash that evicts an open batch
//! (spawning retries), a slow window on the surviving shard (driving the ladder through
//! reduced-samples into moment mode), a corrupt checkpoint that cancels one of two
//! scheduled hot-swaps, and a recovery that drains the backlog back to normal.

use bnn_serve::{
    ArrivalProcess, BatchPolicy, Cluster, ClusterConfig, DegradeLadder, FaultEvent, FaultPlan,
    InferRequest, ModelSource, ModelSpec, RetryPolicy, RoutingPolicy, ServeMode, ShardSwap,
    VersionSwap, WorkloadSpec,
};

const WEIGHT_SEED: u64 = 2021;
const SWAP_SEED: u64 = 3031;

fn spec() -> ModelSpec {
    ModelSpec::mlp(WEIGHT_SEED)
}

/// The fixed chaos scenario the golden values below were captured from: 96 bursty requests
/// into a 2-shard least-loaded cluster; shard 0 crashes at tick 100 (evicting its open
/// batch into backoff retries) and recovers at tick 300; shard 1 runs 3× slow from tick
/// 200 to 900 (pushing cluster pressure through the ladder); a corrupt checkpoint at tick
/// 500 cancels shard 1's scheduled hot-swap while shard 0's swap at the same tick lands
/// after its recovery.
fn chaos_scenario() -> (Vec<InferRequest>, Cluster, Vec<ShardSwap>, FaultPlan) {
    let trace = WorkloadSpec::uniform(96, 6, 4, 909)
        .with_arrival(ArrivalProcess::Bursty { mean_burst: 6 })
        .generate(&spec());
    let cluster = Cluster::new(ClusterConfig {
        source: ModelSource::Spec(spec()),
        mode: ServeMode::MonteCarlo,
        shards: 2,
        workers_per_shard: 1,
        batch: BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
        queue_cap: 10,
        deadline_ticks: None,
        routing: RoutingPolicy::LeastLoaded,
        autoscale: None,
    });
    let swaps = vec![
        ShardSwap {
            shard: 0,
            swap: VersionSwap {
                at_tick: 500,
                source: ModelSource::Spec(ModelSpec::mlp(SWAP_SEED)),
            },
        },
        ShardSwap {
            shard: 1,
            swap: VersionSwap {
                at_tick: 500,
                source: ModelSource::Spec(ModelSpec::mlp(SWAP_SEED)),
            },
        },
    ];
    let faults = FaultPlan::new(vec![
        FaultEvent::ShardDown { tick: 100, shard: 0 },
        FaultEvent::SlowShard { shard: 1, from_tick: 200, until_tick: 900, multiplier: 3 },
        FaultEvent::ShardUp { tick: 300, shard: 0 },
        FaultEvent::CorruptCheckpoint { tick: 500, shard: 1 },
    ])
    .with_retry(RetryPolicy { base_backoff_ticks: 32, max_backoff_ticks: 128, max_retries: 2 })
    .with_ladder(DegradeLadder {
        reduced_samples: 1,
        reduce_watermark: 2,
        moment_watermark: 5,
        shed_watermark: 9,
    });
    (trace, cluster, swaps, faults)
}

/// `request@failed>retry:attempt(shard)`, space-separated, in schedule order. The crash at
/// tick 100 evicts request 16 from shard 0's open batch; it re-enters the router 32 ticks
/// later (first backoff step) on its first retry attempt.
const GOLDEN_RETRIES: &str = "16@100>132:1(0)";

/// `tick:from>to@backlog`, space-separated, in transition order. The opening burst already
/// trips the reduce watermark at tick 0; the crash (one live shard halves the thresholds)
/// and the 3x slow window push the ladder to moment and shed; the recovery at tick 300
/// doubles the live capacity and the ladder steps back up, oscillating with the bursts
/// until the backlog drains (the ladder is a pure per-submission threshold, no hysteresis).
const GOLDEN_DEGRADES: &str = "0:normal>reduced_samples@4 41:reduced_samples>moment@10 \
     97:moment>shed@18 132:shed>moment@6 149:moment>shed@9 263:shed>moment@5 \
     263:moment>shed@9 314:shed>reduced_samples@9 314:reduced_samples>moment@10 \
     341:moment>shed@18 459:shed>moment@13 459:moment>shed@18 553:shed>moment@14";

/// `tick>shard:cancelled`, space-separated: the corrupt checkpoint on shard 1 cancels its
/// one scheduled swap; shard 0's identical swap is untouched.
const GOLDEN_CHECKPOINT_FAULTS: &str = "500>1:1";

const GOLDEN_FAULT_EVENTS_DIGEST: &str = "55559b4910bd057a";
const GOLDEN_EVENTS_DIGEST: &str = "b0c776c988b37a41";
const GOLDEN_RESPONSES_DIGEST: &str = "43ba850c32cd9446";

#[test]
fn golden_chaos_events_land_on_pinned_ticks() {
    let (trace, cluster, swaps, faults) = chaos_scenario();
    let report = cluster.run_with_faults(&trace, &swaps, &faults);

    let retries = report
        .faults
        .retries
        .iter()
        .map(|r| {
            let shard = r.shard.map(|s| s.to_string()).unwrap_or_else(|| "none".to_string());
            format!("{}@{}>{}:{}({})", r.request, r.failed_tick, r.retry_tick, r.attempt, shard)
        })
        .collect::<Vec<_>>()
        .join(" ");
    let degrades = report
        .faults
        .degrades
        .iter()
        .map(|d| format!("{}:{}>{}@{}", d.tick, d.from.label(), d.to.label(), d.backlog))
        .collect::<Vec<_>>()
        .join(" ");
    let checkpoint_faults = report
        .faults
        .checkpoint_faults
        .iter()
        .map(|c| format!("{}>{}:{}", c.tick, c.shard, c.cancelled_swaps))
        .collect::<Vec<_>>()
        .join(" ");

    assert!(!report.faults.retries.is_empty(), "the crash must evict an open batch");
    assert!(!report.faults.degrades.is_empty(), "the slow window must move the ladder");
    assert_eq!(retries, GOLDEN_RETRIES, "retry schedule drifted");
    assert_eq!(degrades, GOLDEN_DEGRADES, "degradation schedule drifted");
    assert_eq!(checkpoint_faults, GOLDEN_CHECKPOINT_FAULTS, "corruption schedule drifted");
    assert_eq!(report.fault_events_digest(), GOLDEN_FAULT_EVENTS_DIGEST);
    assert_eq!(report.events_digest(), GOLDEN_EVENTS_DIGEST);
    assert_eq!(report.responses_digest(), GOLDEN_RESPONSES_DIGEST);

    // The cancelled swap never activates on shard 1; shard 0's swap (scheduled during its
    // downtime) lands once it recovers and serves again.
    assert!(report.shard_reports[1].batches.iter().all(|b| b.version == 0));
    assert!(report.shard_reports[0].batches.iter().any(|b| b.version == 1));
    // Conservation holds even here.
    assert_eq!(report.answered() + report.sheds.len(), report.submitted());
}

#[test]
fn golden_chaos_plan_matches_the_run_batch_for_batch() {
    let (trace, cluster, swaps, faults) = chaos_scenario();
    let plan = cluster.plan_with_faults(&trace, &swaps, &faults);
    let report = cluster.run_with_faults(&trace, &swaps, &faults);
    assert_eq!(plan.outcomes, report.outcomes);
    assert_eq!(plan.latencies, report.latencies);
    assert_eq!(plan.makespan_ticks, report.makespan_ticks);
    assert_eq!(plan.faults, report.faults);
    for (shard, (&planned, engine)) in
        plan.batches_per_shard.iter().zip(&report.shard_reports).enumerate()
    {
        assert_eq!(
            planned,
            engine.batches.len(),
            "shard {shard}: phase A and phase B must agree on batch count"
        );
    }
}

#[test]
fn golden_chaos_scenario_is_worker_and_rerun_invariant() {
    let (trace, cluster, swaps, faults) = chaos_scenario();
    let first = cluster.run_with_faults(&trace, &swaps, &faults);
    let mut pooled_cfg = cluster.config().clone();
    pooled_cfg.workers_per_shard = 3;
    let second = Cluster::new(pooled_cfg).run_with_faults(&trace, &swaps, &faults);
    assert_eq!(first.to_json().to_compact(), second.to_json().to_compact());
    assert_eq!(first.fault_events_digest(), second.fault_events_digest());
    assert_eq!(first.responses_digest(), second.responses_digest());
}
