//! Determinism contract of posterior **hot-swapping** ([`InferenceEngine::run_with_swaps`]):
//!
//! 1. no request is dropped — the swapped run answers the whole trace;
//! 2. the swap boundary is deterministic in the tick domain: every batch that starts service
//!    before the swap tick answers with the old posterior, every batch from the boundary
//!    onward with the new one — so each response is byte-identical to the corresponding
//!    single-version run's response for its side of the boundary;
//! 3. a mid-stream swap changes answers **only** from the boundary onward;
//! 4. all of the above is invariant across worker counts.

use bnn_serve::{
    BatchPolicy, CheckpointReplica, InferenceEngine, ModelSource, ModelSpec, VersionSwap,
    WorkloadSpec,
};

fn trace(spec: &ModelSpec, requests: usize) -> Vec<bnn_serve::InferRequest> {
    WorkloadSpec::uniform(requests, 4, 3, 404).generate(spec)
}

/// Two distinct posteriors of the same architecture (different weight seeds).
fn two_versions() -> (ModelSpec, ModelSource) {
    let v1 = ModelSpec::mlp(21);
    let v2 = ModelSpec::mlp(22);
    (v1, ModelSource::Spec(v2))
}

#[test]
fn swap_splits_the_trace_at_a_deterministic_tick_boundary() {
    let (v1, v2) = two_versions();
    let policy = BatchPolicy { max_batch: 4, max_wait_ticks: 8 };
    let requests = trace(&v1, 32);
    let engine = InferenceEngine::new(v1.clone(), policy, 2);
    let swap_tick = 60;
    let swapped =
        engine.run_with_swaps(&requests, &[VersionSwap { at_tick: swap_tick, source: v2.clone() }]);

    // Every request is answered, in order.
    assert_eq!(swapped.responses.len(), requests.len());
    for (request, response) in requests.iter().zip(&swapped.responses) {
        assert_eq!(request.id, response.id);
    }

    // The version sequence over batches is a single step 0 → 1 at the first batch whose
    // service started at or after the swap tick.
    let versions: Vec<usize> = swapped.batches.iter().map(|b| b.version).collect();
    assert_eq!(versions.first(), Some(&0), "the run must start on the old version");
    assert_eq!(versions.last(), Some(&1), "the swap must land within this trace");
    let boundary = versions.iter().position(|&v| v == 1).unwrap();
    for (i, batch) in swapped.batches.iter().enumerate() {
        assert_eq!(batch.version, usize::from(i >= boundary), "versions must not interleave");
        if batch.version == 1 {
            assert!(batch.start_tick >= swap_tick, "new version answered before the swap tick");
        } else {
            assert!(batch.start_tick < swap_tick, "old version answered after the swap tick");
        }
    }

    // Per-request responses match the corresponding single-version run on each side.
    let old_only = engine.run(&requests);
    let new_only = InferenceEngine::from_source(v2, policy, 2).run(&requests);
    for (i, response) in swapped.responses.iter().enumerate() {
        let expected = if swapped.batches[batch_index_of(&swapped, i)].version == 0 {
            &old_only
        } else {
            &new_only
        };
        assert_eq!(
            response, &expected.responses[i],
            "request {i} diverged from its version's single-version answer"
        );
    }

    // And the swap changed *only* the post-boundary answers.
    let first_new_request = swapped
        .responses
        .iter()
        .enumerate()
        .position(|(i, _)| swapped.batches[batch_index_of(&swapped, i)].version == 1)
        .unwrap();
    assert_eq!(swapped.responses[..first_new_request], old_only.responses[..first_new_request]);
    assert_ne!(
        swapped.responses[first_new_request..],
        old_only.responses[first_new_request..],
        "distinct posteriors must answer differently after the boundary"
    );
}

/// Index of the batch that served request `i` (batches partition the request indices in
/// arrival order, so a running size count locates the member batch).
fn batch_index_of(report: &bnn_serve::ServeRunReport, i: usize) -> usize {
    let mut running = 0usize;
    for (bi, batch) in report.batches.iter().enumerate() {
        if i < running + batch.size {
            return bi;
        }
        running += batch.size;
    }
    unreachable!("request {i} not covered by any batch")
}

#[test]
fn swapped_runs_are_worker_invariant() {
    let (v1, v2) = two_versions();
    let policy = BatchPolicy { max_batch: 3, max_wait_ticks: 10 };
    let requests = trace(&v1, 24);
    let swaps = vec![VersionSwap { at_tick: 50, source: v2 }];
    let baseline = InferenceEngine::new(v1.clone(), policy, 1).run_with_swaps(&requests, &swaps);
    for workers in [2, 3, 8] {
        let parallel =
            InferenceEngine::new(v1.clone(), policy, workers).run_with_swaps(&requests, &swaps);
        assert_eq!(
            baseline.responses_json(),
            parallel.responses_json(),
            "hot-swapped responses diverged at {workers} workers"
        );
        assert_eq!(baseline.batches, parallel.batches);
        assert_eq!(baseline.latencies, parallel.latencies);
    }
}

#[test]
fn swap_to_a_checkpoint_source_answers_with_the_loaded_posterior() {
    // The production shape of a hot-swap: v2 is a *checkpoint* (posterior snapshot), not a
    // seed proxy — and its answers must be byte-identical to the network it captured.
    let v1 = ModelSpec::mlp(31);
    let v2_spec = ModelSpec::mlp(32);
    let checkpoint = CheckpointReplica::new(
        "mlp@v2",
        v2_spec.build().snapshot(),
        v2_spec.input_shape().to_vec(),
    )
    .unwrap();
    let policy = BatchPolicy { max_batch: 4, max_wait_ticks: 6 };
    let requests = trace(&v1, 20);
    let swapped = InferenceEngine::new(v1, policy, 2).run_with_swaps(
        &requests,
        &[VersionSwap { at_tick: 40, source: ModelSource::Checkpoint(checkpoint) }],
    );
    let v2_only = InferenceEngine::new(v2_spec, policy, 2).run(&requests);
    for (i, batch_version) in
        (0..requests.len()).map(|i| (i, swapped.batches[batch_index_of(&swapped, i)].version))
    {
        if batch_version == 1 {
            assert_eq!(swapped.responses[i], v2_only.responses[i]);
        }
    }
    assert!(swapped.batches.iter().any(|b| b.version == 1), "swap landed");
}

#[test]
fn unsorted_swap_schedules_are_rejected() {
    let (v1, v2) = two_versions();
    let requests = trace(&v1, 4);
    let engine = InferenceEngine::new(v1.clone(), BatchPolicy::unbatched(), 1);
    let swaps = vec![
        VersionSwap { at_tick: 50, source: v2.clone() },
        VersionSwap { at_tick: 10, source: v2 },
    ];
    let result = std::panic::catch_unwind(|| engine.run_with_swaps(&requests, &swaps));
    assert!(result.is_err(), "unsorted swap schedule must panic");
}

#[test]
fn runs_without_swaps_are_unchanged_by_the_swap_machinery() {
    let (v1, _) = two_versions();
    let policy = BatchPolicy { max_batch: 5, max_wait_ticks: 12 };
    let requests = trace(&v1, 16);
    let engine = InferenceEngine::new(v1, policy, 2);
    let plain = engine.run(&requests);
    let empty_swaps = engine.run_with_swaps(&requests, &[]);
    assert_eq!(plain.responses_json(), empty_swaps.responses_json());
    assert_eq!(plain.batches, empty_swaps.batches);
    assert!(plain.batches.iter().all(|b| b.version == 0));
}
