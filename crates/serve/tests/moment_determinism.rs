//! Determinism contract of the analytic moment backend — `serve_determinism.rs`'s axes
//! replayed under `ServeMode::Moment`:
//!
//! 1. the same trace served by a 1-worker and an N-worker moment engine produces
//!    **byte-identical** `InferResponse`s;
//! 2. batch composition must not leak into moment responses (only into latency);
//! 3. repeated runs reproduce bit-for-bit;
//! 4. moment answers depend only on the request *input* — unlike Monte-Carlo, neither the
//!    ε seed nor the requested sample count can change an analytic response.

use bnn_serve::{BatchPolicy, InferenceEngine, ModelSource, ModelSpec, ServeMode, WorkloadSpec};

fn trace(spec: &ModelSpec, requests: usize, samples: usize) -> Vec<bnn_serve::InferRequest> {
    WorkloadSpec::uniform(requests, 3, samples, 2021).generate(spec)
}

fn moment_engine(spec: &ModelSpec, policy: BatchPolicy, workers: usize) -> InferenceEngine {
    InferenceEngine::from_source_with_mode(
        ModelSource::Spec(spec.clone()),
        ServeMode::Moment,
        policy,
        workers,
    )
}

#[test]
fn one_worker_and_many_workers_answer_byte_identically() {
    for spec in [ModelSpec::mlp(7), ModelSpec::lenet(7)] {
        let requests = trace(&spec, 24, 4);
        let policy = BatchPolicy { max_batch: 6, max_wait_ticks: 12 };
        let baseline = moment_engine(&spec, policy, 1).run(&requests);
        for workers in [2, 3, 8] {
            let parallel = moment_engine(&spec, policy, workers).run(&requests);
            assert_eq!(
                baseline.responses_json(),
                parallel.responses_json(),
                "{}: moment responses diverged at {workers} workers",
                spec.name()
            );
            assert_eq!(baseline.latencies, parallel.latencies);
            assert_eq!(baseline.batches, parallel.batches);
            assert_eq!(baseline.makespan_ticks, parallel.makespan_ticks);
        }
    }
}

#[test]
fn unbatched_and_coalesced_batches_answer_byte_identically() {
    let spec = ModelSpec::mlp(19);
    let requests = trace(&spec, 32, 3);
    let unbatched = moment_engine(&spec, BatchPolicy::unbatched(), 2).run(&requests);
    for policy in [
        BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
        BatchPolicy { max_batch: 32, max_wait_ticks: 256 },
    ] {
        let coalesced = moment_engine(&spec, policy, 2).run(&requests);
        assert_eq!(
            unbatched.responses_json(),
            coalesced.responses_json(),
            "batch composition leaked into moment responses under {}",
            policy.label()
        );
        assert!(coalesced.batches.len() < unbatched.batches.len());
        assert!(coalesced.makespan_ticks < unbatched.makespan_ticks);
    }
}

#[test]
fn repeated_runs_serialize_byte_identically() {
    let spec = ModelSpec::lenet(3);
    let requests = trace(&spec, 12, 2);
    let engine = moment_engine(&spec, BatchPolicy { max_batch: 5, max_wait_ticks: 20 }, 4);
    let first = engine.run(&requests).to_json().to_pretty();
    let second = engine.run(&requests).to_json().to_pretty();
    assert_eq!(first, second);
}

#[test]
fn moment_responses_ignore_seed_and_sample_count() {
    // The analytic pass draws no ε: reseeding a request or changing its requested S must not
    // move a single byte of its answer, and every response reports samples = 0.
    let spec = ModelSpec::mlp(5);
    let requests = trace(&spec, 8, 4);
    let engine = moment_engine(&spec, BatchPolicy { max_batch: 4, max_wait_ticks: 6 }, 2);
    let baseline = engine.run(&requests);
    assert!(baseline.responses.iter().all(|r| r.samples == 0), "analytic responses mark S = 0");

    let mut reseeded = requests.clone();
    for request in &mut reseeded {
        request.seed ^= 0xDEAD_BEEF;
    }
    assert_eq!(baseline.responses_json(), engine.run(&reseeded).responses_json());

    let mut resampled = requests.clone();
    for request in &mut resampled {
        request.samples = 1 + (request.id as usize % 16);
    }
    assert_eq!(baseline.responses_json(), engine.run(&resampled).responses_json());
}

#[test]
fn moment_batches_are_cheaper_than_monte_carlo() {
    // The tick cost model prices a moment request as two weight-wide passes, independent of
    // S: the same trace must finish strictly faster than S = 16 Monte-Carlo on both model
    // families, and a moment engine's per-request cost must not depend on S at all.
    for spec in [ModelSpec::mlp(11), ModelSpec::lenet(11)] {
        let requests = trace(&spec, 16, 16);
        let policy = BatchPolicy { max_batch: 8, max_wait_ticks: 16 };
        let mc = InferenceEngine::new(spec.clone(), policy, 2).run(&requests);
        let moment = moment_engine(&spec, policy, 2).run(&requests);
        assert!(
            moment.makespan_ticks < mc.makespan_ticks,
            "{}: moment makespan {} ≥ MC makespan {}",
            spec.name(),
            moment.makespan_ticks,
            mc.makespan_ticks
        );
        let engine = moment_engine(&spec, policy, 1);
        assert_eq!(engine.service_cost_ticks(1), engine.service_cost_ticks(1024));
    }
}
