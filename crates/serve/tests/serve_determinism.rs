//! Determinism contract of the serving engine — the mirror of the sweep engine's
//! `sweep_determinism.rs`, with one more axis:
//!
//! 1. the same request trace served by a 1-worker engine and an N-worker engine produces
//!    **byte-identical** `InferResponse`s (work stealing must not leak into results);
//! 2. the same trace served unbatched (batch-size-1) and coalesced produces byte-identical
//!    responses (batch composition must not leak into results — only into latency);
//! 3. repeated runs reproduce bit-for-bit (no hidden global state).
//!
//! Together these are what make the batcher's tick-domain latency numbers trustworthy: the
//! *answers* are invariant, so policies and worker counts can be compared on timing alone.

use bnn_serve::{BatchPolicy, InferenceEngine, ModelSpec, WorkloadSpec};

fn trace(spec: &ModelSpec, requests: usize, samples: usize) -> Vec<bnn_serve::InferRequest> {
    WorkloadSpec::uniform(requests, 3, samples, 2021).generate(spec)
}

#[test]
fn one_worker_and_many_workers_answer_byte_identically() {
    for spec in [ModelSpec::mlp(7), ModelSpec::lenet(7)] {
        let requests = trace(&spec, 24, 4);
        let policy = BatchPolicy { max_batch: 6, max_wait_ticks: 12 };
        let baseline = InferenceEngine::new(spec.clone(), policy, 1).run(&requests);
        for workers in [2, 3, 8] {
            let parallel = InferenceEngine::new(spec.clone(), policy, workers).run(&requests);
            assert_eq!(
                baseline.responses_json(),
                parallel.responses_json(),
                "{}: responses diverged at {workers} workers",
                spec.name()
            );
            // The whole report — timing included — is worker-invariant except the recorded
            // worker count itself.
            assert_eq!(baseline.latencies, parallel.latencies);
            assert_eq!(baseline.batches, parallel.batches);
            assert_eq!(baseline.makespan_ticks, parallel.makespan_ticks);
        }
    }
}

#[test]
fn unbatched_and_coalesced_batches_answer_byte_identically() {
    let spec = ModelSpec::mlp(19);
    let requests = trace(&spec, 32, 3);
    let unbatched = InferenceEngine::new(spec.clone(), BatchPolicy::unbatched(), 2).run(&requests);
    for policy in [
        BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
        BatchPolicy { max_batch: 32, max_wait_ticks: 256 },
    ] {
        let coalesced = InferenceEngine::new(spec.clone(), policy, 2).run(&requests);
        assert_eq!(
            unbatched.responses_json(),
            coalesced.responses_json(),
            "batch composition leaked into responses under {}",
            policy.label()
        );
        // Batching is allowed to change *timing* — indeed it must amortize overhead.
        assert!(coalesced.batches.len() < unbatched.batches.len());
        assert!(coalesced.makespan_ticks < unbatched.makespan_ticks);
    }
}

#[test]
fn repeated_runs_serialize_byte_identically() {
    let spec = ModelSpec::lenet(3);
    let requests = trace(&spec, 12, 2);
    let engine = InferenceEngine::new(spec, BatchPolicy { max_batch: 5, max_wait_ticks: 20 }, 4);
    let first = engine.run(&requests).to_json().to_pretty();
    let second = engine.run(&requests).to_json().to_pretty();
    assert_eq!(first, second);
}

#[test]
fn responses_depend_on_request_seeds_not_positions() {
    // Moving a request to a different arrival slot (different batch) must not change its
    // answer; changing its ε seed must.
    let spec = ModelSpec::mlp(5);
    let mut requests = trace(&spec, 8, 4);
    let engine =
        InferenceEngine::new(spec.clone(), BatchPolicy { max_batch: 4, max_wait_ticks: 6 }, 2);
    let baseline = engine.run(&requests);

    let mut shifted = requests.clone();
    for request in &mut shifted {
        request.arrival_tick *= 2; // same order, different batch boundaries
    }
    let moved = engine.run(&shifted);
    assert_eq!(baseline.responses_json(), moved.responses_json());

    requests[0].seed ^= 1;
    let reseeded = engine.run(&requests);
    assert_ne!(
        baseline.responses[0], reseeded.responses[0],
        "a different ε seed must sample a different ensemble"
    );
    assert_eq!(baseline.responses[1..], reseeded.responses[1..]);
}
