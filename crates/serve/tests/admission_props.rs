//! Admission-control invariants, property-tested across random cluster shapes and arrival
//! patterns. Everything here runs on [`Cluster::plan`] — the phase-A simulator that makes
//! every routing/admission decision without touching a network — so each case is cheap and
//! the sampled space can be wide.
//!
//! The invariants:
//!
//! * **conservation** — every submitted request is answered or shed, never both, never
//!   neither: `answered + shed == submitted`, id sets disjoint;
//! * **causality** — an admitted request completes no earlier than its arrival plus the
//!   batch overhead; a shed request is shed exactly at its arrival tick, at a shard that
//!   actually exists;
//! * **monotone shedding** — at a fixed queue cap, slowing the arrival process down (larger
//!   uniform interarrival gap) never sheds *more* requests.

use bnn_serve::engine::BATCH_OVERHEAD_TICKS;
use bnn_serve::{
    ArrivalProcess, BatchPolicy, Cluster, ClusterConfig, ClusterPlan, DegradeLadder, FaultEvent,
    FaultPlan, InferRequest, ModelSource, ModelSpec, RequestOutcome, RetryPolicy, RoutingPolicy,
    ServeMode, WorkloadSpec,
};
use proptest::prelude::*;

/// Plans (never executes) a least-loaded cluster over a uniform trace. Inputs use a 1-element
/// shape: phase A prices batches from ε volume and sample counts alone, so the tensor payload
/// is irrelevant and traces can be long.
fn plan_with_policy(
    requests: usize,
    interarrival: u64,
    shards: usize,
    queue_cap: usize,
    arrival: ArrivalProcess,
    batch: BatchPolicy,
) -> (Vec<InferRequest>, ClusterPlan) {
    let trace = WorkloadSpec::uniform(requests, interarrival, 2, 4242)
        .with_arrival(arrival)
        .generate_for_shape(&[1]);
    let cluster = Cluster::new(ClusterConfig {
        source: ModelSource::Spec(ModelSpec::mlp(2021)),
        mode: ServeMode::MonteCarlo,
        shards,
        workers_per_shard: 1,
        batch,
        queue_cap,
        deadline_ticks: None,
        routing: RoutingPolicy::LeastLoaded,
        autoscale: None,
    });
    let plan = cluster.plan(&trace);
    (trace, plan)
}

fn plan(
    requests: usize,
    interarrival: u64,
    shards: usize,
    queue_cap: usize,
    arrival: ArrivalProcess,
) -> (Vec<InferRequest>, ClusterPlan) {
    plan_with_policy(
        requests,
        interarrival,
        shards,
        queue_cap,
        arrival,
        BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
    )
}

fn arrival_process(selector: u8) -> ArrivalProcess {
    match selector % 4 {
        0 => ArrivalProcess::Uniform,
        1 => ArrivalProcess::Bursty { mean_burst: 5 },
        2 => ArrivalProcess::Diurnal { cycle: 64 },
        _ => ArrivalProcess::Adversarial { spike: 12 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `answered + shed == submitted`, and the answered/shed id sets partition the trace.
    #[test]
    fn conservation_holds_for_every_request(
        requests in 1usize..120,
        interarrival in 1u64..6,
        shards in 1usize..5,
        queue_cap in 1usize..8,
        selector in 0u8..4,
    ) {
        let (trace, plan) = plan(requests, interarrival, shards, queue_cap,
            arrival_process(selector));
        prop_assert_eq!(plan.outcomes.len(), trace.len());

        let shed_ids: Vec<u64> = plan.sheds.iter().map(|s| s.request).collect();
        let mut answered = 0usize;
        for (request, outcome) in trace.iter().zip(&plan.outcomes) {
            match outcome {
                RequestOutcome::Answered { .. } => {
                    answered += 1;
                    prop_assert!(
                        !shed_ids.contains(&request.id),
                        "request {} both answered and shed", request.id
                    );
                }
                RequestOutcome::Shed { .. } => {
                    prop_assert!(shed_ids.contains(&request.id));
                }
            }
        }
        prop_assert_eq!(answered + plan.sheds.len(), trace.len());
        prop_assert_eq!(plan.latencies.len(), answered);
    }

    /// An admitted request never completes before `arrival + BATCH_OVERHEAD_TICKS`; a shed
    /// request is dropped exactly at its arrival tick at an existing shard.
    #[test]
    fn outcomes_respect_the_tick_arrow(
        requests in 1usize..120,
        interarrival in 1u64..6,
        shards in 1usize..5,
        queue_cap in 1usize..8,
        selector in 0u8..4,
    ) {
        let (trace, plan) = plan(requests, interarrival, shards, queue_cap,
            arrival_process(selector));
        for (request, outcome) in trace.iter().zip(&plan.outcomes) {
            match outcome {
                RequestOutcome::Answered { end_tick, shard, .. } => {
                    prop_assert!(*shard < shards);
                    prop_assert!(
                        *end_tick >= request.arrival_tick + BATCH_OVERHEAD_TICKS,
                        "request {} finished at {} before arrival {} + overhead",
                        request.id, end_tick, request.arrival_tick
                    );
                }
                RequestOutcome::Shed { tick, shard, .. } => {
                    prop_assert!(*shard < shards);
                    prop_assert_eq!(*tick, request.arrival_tick);
                }
            }
        }
    }

    /// At a fixed queue cap, a slower uniform arrival process (larger interarrival gap, same
    /// request count) never sheds more — under the **unbatched** policy, where each request's
    /// service demand is a constant independent of arrivals. (Under dynamic batching, strict
    /// pointwise monotonicity is genuinely false: slowing arrivals past a batch-window
    /// boundary shrinks batches, each request pays more amortized overhead, and shed counts
    /// can tick *up* — e.g. gap 4 → 5 at `max_wait_ticks: 8` splits 3-request batches into
    /// 2-request ones. Fixing per-request cost isolates the queueing property the cap is
    /// supposed to enforce.)
    #[test]
    fn shed_count_is_monotone_in_arrival_rate(
        requests in 8usize..120,
        fast_gap in 1u64..5,
        slowdown in 1u64..6,
        shards in 1usize..4,
        queue_cap in 1usize..6,
    ) {
        let unbatched = BatchPolicy::unbatched();
        let (_, fast) = plan_with_policy(
            requests, fast_gap, shards, queue_cap, ArrivalProcess::Uniform, unbatched);
        let (_, slow) = plan_with_policy(
            requests, fast_gap + slowdown, shards, queue_cap, ArrivalProcess::Uniform, unbatched);
        prop_assert!(
            slow.sheds.len() <= fast.sheds.len(),
            "slowing arrivals from every {} to every {} ticks raised sheds {} -> {}",
            fast_gap, fast_gap + slowdown, fast.sheds.len(), slow.sheds.len()
        );
        prop_assert!(slow.shed_rate() <= fast.shed_rate());
    }

    /// The queue cap is a real bound: lowering it (same trace) never sheds less, and a cap
    /// at the trace length sheds nothing.
    #[test]
    fn shed_count_is_antitone_in_queue_cap(
        requests in 8usize..100,
        interarrival in 1u64..4,
        shards in 1usize..4,
        cap in 1usize..6,
        extra in 1usize..6,
    ) {
        let (_, tight) = plan(requests, interarrival, shards, cap, ArrivalProcess::Uniform);
        let (_, loose) =
            plan(requests, interarrival, shards, cap + extra, ArrivalProcess::Uniform);
        prop_assert!(loose.sheds.len() <= tight.sheds.len());
        let (_, unbounded) =
            plan(requests, interarrival, shards, requests, ArrivalProcess::Uniform);
        prop_assert_eq!(unbounded.sheds.len(), 0);
    }
}

/// Plans a least-loaded cluster over a shaped trace with a fault plan threaded through.
fn plan_with_faults(
    requests: usize,
    interarrival: u64,
    shards: usize,
    queue_cap: usize,
    arrival: ArrivalProcess,
    batch: BatchPolicy,
    faults: &FaultPlan,
) -> (Vec<InferRequest>, ClusterPlan) {
    let trace = WorkloadSpec::uniform(requests, interarrival, 2, 4242)
        .with_arrival(arrival)
        .generate_for_shape(&[1]);
    let cluster = Cluster::new(ClusterConfig {
        source: ModelSource::Spec(ModelSpec::mlp(2021)),
        mode: ServeMode::MonteCarlo,
        shards,
        workers_per_shard: 1,
        batch,
        queue_cap,
        deadline_ticks: None,
        routing: RoutingPolicy::LeastLoaded,
        autoscale: None,
    });
    let plan = cluster.plan_with_faults(&trace, &[], faults);
    (trace, plan)
}

/// A random single-shard crash window with a slow window alongside, a random retry policy,
/// and a random (strictly increasing) degradation ladder. `knobs` packs the small
/// parameters (shard choices, multiplier, backoff, budget, ladder watermarks) into one
/// proptest input — the proptest tuple limit caps how many named parameters a property can
/// take, and these knobs don't benefit from individual shrinking.
fn random_fault_plan(shards: usize, down_tick: u64, window: u64, knobs: u32) -> FaultPlan {
    let mut knobs = knobs as u64;
    let mut draw = |range: u64| {
        let v = knobs % range;
        knobs /= range;
        v
    };
    let crash_shard = draw(shards as u64) as usize;
    let slow_shard = draw(shards as u64) as usize;
    let multiplier = 1 + draw(3);
    let base_backoff = 1 + draw(60);
    let budget = draw(3) as u32;
    let reduce = 1 + draw(3) as usize;
    let moment_step = 1 + draw(3) as usize;
    let shed_step = 1 + draw(3) as usize;
    let up_tick = down_tick + window;
    FaultPlan::new(vec![
        FaultEvent::ShardDown { tick: down_tick, shard: crash_shard },
        FaultEvent::SlowShard {
            shard: slow_shard,
            from_tick: down_tick,
            until_tick: up_tick,
            multiplier,
        },
        FaultEvent::ShardUp { tick: up_tick, shard: crash_shard },
    ])
    .with_retry(RetryPolicy {
        base_backoff_ticks: base_backoff,
        max_backoff_ticks: base_backoff * 4,
        max_retries: budget,
    })
    .with_ladder(DegradeLadder {
        reduced_samples: 1,
        reduce_watermark: reduce,
        moment_watermark: reduce + moment_step,
        shed_watermark: reduce + moment_step + shed_step,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Conservation and the tick arrow survive arbitrary fault plans: every request is
    /// answered or shed exactly once; an answered request still completes no earlier than
    /// its arrival plus batch overhead; a shed request is shed at or after its arrival
    /// (failover retries legitimately move a shed past the arrival tick).
    #[test]
    fn conservation_holds_under_random_fault_plans(
        requests in 1usize..120,
        interarrival in 1u64..6,
        shards in 1usize..5,
        queue_cap in 1usize..8,
        selector in 0u8..4,
        down_tick in 0u64..400,
        window in 1u64..500,
        knobs in 0u32..u32::MAX,
    ) {
        let faults = random_fault_plan(shards, down_tick, window, knobs);
        let (trace, plan) = plan_with_faults(
            requests, interarrival, shards, queue_cap, arrival_process(selector),
            BatchPolicy { max_batch: 4, max_wait_ticks: 8 }, &faults,
        );
        prop_assert_eq!(plan.outcomes.len(), trace.len());
        let shed_ids: Vec<u64> = plan.sheds.iter().map(|s| s.request).collect();
        let mut answered = 0usize;
        for (request, outcome) in trace.iter().zip(&plan.outcomes) {
            match outcome {
                RequestOutcome::Answered { end_tick, shard, .. } => {
                    answered += 1;
                    prop_assert!(*shard < shards);
                    prop_assert!(!shed_ids.contains(&request.id));
                    prop_assert!(
                        *end_tick >= request.arrival_tick + BATCH_OVERHEAD_TICKS,
                        "request {} finished at {} before arrival {} + overhead",
                        request.id, end_tick, request.arrival_tick
                    );
                }
                RequestOutcome::Shed { tick, shard, .. } => {
                    prop_assert!(*shard < shards);
                    prop_assert!(shed_ids.contains(&request.id));
                    prop_assert!(
                        *tick >= request.arrival_tick,
                        "request {} shed at {} before its arrival {}",
                        request.id, tick, request.arrival_tick
                    );
                }
            }
        }
        prop_assert_eq!(answered + plan.sheds.len(), trace.len());
        prop_assert_eq!(plan.latencies.len(), answered);
    }

    /// Failover retries obey the backoff arithmetic exactly: every retry fires at
    /// `failed + backoff(attempt)`, and a retried request that ends up answered never
    /// completes before its last scheduled retry tick.
    #[test]
    fn retries_never_complete_before_their_backoff_tick(
        requests in 8usize..120,
        interarrival in 1u64..4,
        shards in 1usize..4,
        down_tick in 0u64..300,
        window in 50u64..600,
        crash_shard in 0usize..4,
        base_backoff in 1u64..64,
        budget in 1u32..4,
    ) {
        let crash_shard = crash_shard % shards;
        let retry = RetryPolicy {
            base_backoff_ticks: base_backoff,
            max_backoff_ticks: base_backoff * 4,
            max_retries: budget,
        };
        let faults = FaultPlan::new(vec![
            FaultEvent::ShardDown { tick: down_tick, shard: crash_shard },
            FaultEvent::ShardUp { tick: down_tick + window, shard: crash_shard },
        ])
        .with_retry(retry);
        let (trace, plan) = plan_with_faults(
            requests, interarrival, shards, 8, ArrivalProcess::Bursty { mean_burst: 5 },
            BatchPolicy { max_batch: 4, max_wait_ticks: 8 }, &faults,
        );
        for event in &plan.faults.retries {
            prop_assert_eq!(
                event.retry_tick,
                event.failed_tick + retry.backoff_ticks(event.attempt),
                "retry of {} must fire exactly one backoff after the failure", event.request
            );
            prop_assert!(event.attempt >= 1 && event.attempt <= budget);
            let index = trace.iter().position(|r| r.id == event.request).unwrap();
            if let RequestOutcome::Answered { end_tick, .. } = plan.outcomes[index] {
                prop_assert!(
                    end_tick >= event.retry_tick,
                    "request {} answered at {} before its retry at {}",
                    event.request, end_tick, event.retry_tick
                );
            }
        }
    }

    /// Availability is antitone in fault density: widening an all-shard blackout (a strict
    /// superset of downtime) never answers more. Run unbatched with an uncontended queue
    /// and no retries so downtime is the *only* thing that sheds — under contention a
    /// longer blackout could legitimately reshuffle queueing in either direction.
    #[test]
    fn availability_is_antitone_in_fault_density(
        requests in 8usize..120,
        interarrival in 1u64..6,
        shards in 1usize..4,
        start in 0u64..200,
        len in 1u64..300,
        extra in 1u64..300,
    ) {
        let blackout = |until: u64| {
            let mut events: Vec<FaultEvent> =
                (0..shards).map(|s| FaultEvent::ShardDown { tick: start, shard: s }).collect();
            events.extend((0..shards).map(|s| FaultEvent::ShardUp { tick: until, shard: s }));
            FaultPlan::new(events).with_retry(RetryPolicy {
                base_backoff_ticks: 16,
                max_backoff_ticks: 64,
                max_retries: 0,
            })
        };
        let (_, short) = plan_with_faults(
            requests, interarrival, shards, requests, ArrivalProcess::Uniform,
            BatchPolicy::unbatched(), &blackout(start + len),
        );
        let (_, long) = plan_with_faults(
            requests, interarrival, shards, requests, ArrivalProcess::Uniform,
            BatchPolicy::unbatched(), &blackout(start + len + extra),
        );
        prop_assert!(
            long.availability() <= short.availability(),
            "a longer blackout ({} -> {} ticks) raised availability {} -> {}",
            len, len + extra, short.availability(), long.availability()
        );
    }

    /// A retry budget only helps when nothing else competes: with an uncontended queue and
    /// no batching, every blackout-shed request is answered instead once retries can
    /// outlast the downtime.
    #[test]
    fn retries_only_improve_uncontended_availability(
        requests in 8usize..120,
        interarrival in 1u64..6,
        shards in 1usize..4,
        start in 0u64..200,
        len in 1u64..200,
    ) {
        let blackout = |budget: u32| {
            let mut events: Vec<FaultEvent> =
                (0..shards).map(|s| FaultEvent::ShardDown { tick: start, shard: s }).collect();
            events
                .extend((0..shards).map(|s| FaultEvent::ShardUp { tick: start + len, shard: s }));
            FaultPlan::new(events).with_retry(RetryPolicy {
                base_backoff_ticks: 16,
                max_backoff_ticks: 256,
                max_retries: budget,
            })
        };
        let (_, without) = plan_with_faults(
            requests, interarrival, shards, requests, ArrivalProcess::Uniform,
            BatchPolicy::unbatched(), &blackout(0),
        );
        let (_, with) = plan_with_faults(
            requests, interarrival, shards, requests, ArrivalProcess::Uniform,
            BatchPolicy::unbatched(), &blackout(5),
        );
        prop_assert!(
            with.availability() >= without.availability(),
            "granting retries lowered availability {} -> {}",
            without.availability(), with.availability()
        );
    }
}

/// The plan-side invariants above transfer to full runs: phase B asserts batch-for-batch
/// timing equality with phase A internally, and this control arm checks conservation on a
/// real executed report, escalations included.
#[test]
fn executed_two_tier_run_conserves_requests() {
    let spec = ModelSpec::mlp(2021);
    let trace = WorkloadSpec::uniform(30, 2, 2, 4242)
        .with_arrival(ArrivalProcess::Bursty { mean_burst: 5 })
        .generate(&spec);
    let cluster = Cluster::new(ClusterConfig {
        source: ModelSource::Spec(spec),
        mode: ServeMode::MonteCarlo,
        shards: 3,
        workers_per_shard: 2,
        batch: BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
        queue_cap: 4,
        deadline_ticks: Some(400),
        routing: RoutingPolicy::TwoTier { low_samples: 1, high_samples: 6, entropy_threshold: 1.0 },
        autoscale: None,
    });
    let report = cluster.run(&trace);
    assert_eq!(report.answered() + report.sheds.len(), report.submitted());
    for (i, outcome) in report.outcomes.iter().enumerate() {
        match outcome {
            RequestOutcome::Answered { .. } => assert!(report.responses[i].is_some()),
            RequestOutcome::Shed { .. } => assert!(report.responses[i].is_none()),
        }
    }
    // Escalation is an upgrade path, never a second outcome: escalated requests stay answered.
    for event in &report.escalations {
        assert!(matches!(
            report.outcomes[event.request as usize],
            RequestOutcome::Answered { escalated: true, .. }
        ));
    }
}
