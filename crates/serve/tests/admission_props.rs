//! Admission-control invariants, property-tested across random cluster shapes and arrival
//! patterns. Everything here runs on [`Cluster::plan`] — the phase-A simulator that makes
//! every routing/admission decision without touching a network — so each case is cheap and
//! the sampled space can be wide.
//!
//! The invariants:
//!
//! * **conservation** — every submitted request is answered or shed, never both, never
//!   neither: `answered + shed == submitted`, id sets disjoint;
//! * **causality** — an admitted request completes no earlier than its arrival plus the
//!   batch overhead; a shed request is shed exactly at its arrival tick, at a shard that
//!   actually exists;
//! * **monotone shedding** — at a fixed queue cap, slowing the arrival process down (larger
//!   uniform interarrival gap) never sheds *more* requests.

use bnn_serve::engine::BATCH_OVERHEAD_TICKS;
use bnn_serve::{
    ArrivalProcess, BatchPolicy, Cluster, ClusterConfig, ClusterPlan, InferRequest, ModelSource,
    ModelSpec, RequestOutcome, RoutingPolicy, ServeMode, WorkloadSpec,
};
use proptest::prelude::*;

/// Plans (never executes) a least-loaded cluster over a uniform trace. Inputs use a 1-element
/// shape: phase A prices batches from ε volume and sample counts alone, so the tensor payload
/// is irrelevant and traces can be long.
fn plan_with_policy(
    requests: usize,
    interarrival: u64,
    shards: usize,
    queue_cap: usize,
    arrival: ArrivalProcess,
    batch: BatchPolicy,
) -> (Vec<InferRequest>, ClusterPlan) {
    let trace = WorkloadSpec::uniform(requests, interarrival, 2, 4242)
        .with_arrival(arrival)
        .generate_for_shape(&[1]);
    let cluster = Cluster::new(ClusterConfig {
        source: ModelSource::Spec(ModelSpec::mlp(2021)),
        mode: ServeMode::MonteCarlo,
        shards,
        workers_per_shard: 1,
        batch,
        queue_cap,
        deadline_ticks: None,
        routing: RoutingPolicy::LeastLoaded,
        autoscale: None,
    });
    let plan = cluster.plan(&trace);
    (trace, plan)
}

fn plan(
    requests: usize,
    interarrival: u64,
    shards: usize,
    queue_cap: usize,
    arrival: ArrivalProcess,
) -> (Vec<InferRequest>, ClusterPlan) {
    plan_with_policy(
        requests,
        interarrival,
        shards,
        queue_cap,
        arrival,
        BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
    )
}

fn arrival_process(selector: u8) -> ArrivalProcess {
    match selector % 4 {
        0 => ArrivalProcess::Uniform,
        1 => ArrivalProcess::Bursty { mean_burst: 5 },
        2 => ArrivalProcess::Diurnal { cycle: 64 },
        _ => ArrivalProcess::Adversarial { spike: 12 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `answered + shed == submitted`, and the answered/shed id sets partition the trace.
    #[test]
    fn conservation_holds_for_every_request(
        requests in 1usize..120,
        interarrival in 1u64..6,
        shards in 1usize..5,
        queue_cap in 1usize..8,
        selector in 0u8..4,
    ) {
        let (trace, plan) = plan(requests, interarrival, shards, queue_cap,
            arrival_process(selector));
        prop_assert_eq!(plan.outcomes.len(), trace.len());

        let shed_ids: Vec<u64> = plan.sheds.iter().map(|s| s.request).collect();
        let mut answered = 0usize;
        for (request, outcome) in trace.iter().zip(&plan.outcomes) {
            match outcome {
                RequestOutcome::Answered { .. } => {
                    answered += 1;
                    prop_assert!(
                        !shed_ids.contains(&request.id),
                        "request {} both answered and shed", request.id
                    );
                }
                RequestOutcome::Shed { .. } => {
                    prop_assert!(shed_ids.contains(&request.id));
                }
            }
        }
        prop_assert_eq!(answered + plan.sheds.len(), trace.len());
        prop_assert_eq!(plan.latencies.len(), answered);
    }

    /// An admitted request never completes before `arrival + BATCH_OVERHEAD_TICKS`; a shed
    /// request is dropped exactly at its arrival tick at an existing shard.
    #[test]
    fn outcomes_respect_the_tick_arrow(
        requests in 1usize..120,
        interarrival in 1u64..6,
        shards in 1usize..5,
        queue_cap in 1usize..8,
        selector in 0u8..4,
    ) {
        let (trace, plan) = plan(requests, interarrival, shards, queue_cap,
            arrival_process(selector));
        for (request, outcome) in trace.iter().zip(&plan.outcomes) {
            match outcome {
                RequestOutcome::Answered { end_tick, shard, .. } => {
                    prop_assert!(*shard < shards);
                    prop_assert!(
                        *end_tick >= request.arrival_tick + BATCH_OVERHEAD_TICKS,
                        "request {} finished at {} before arrival {} + overhead",
                        request.id, end_tick, request.arrival_tick
                    );
                }
                RequestOutcome::Shed { tick, shard, .. } => {
                    prop_assert!(*shard < shards);
                    prop_assert_eq!(*tick, request.arrival_tick);
                }
            }
        }
    }

    /// At a fixed queue cap, a slower uniform arrival process (larger interarrival gap, same
    /// request count) never sheds more — under the **unbatched** policy, where each request's
    /// service demand is a constant independent of arrivals. (Under dynamic batching, strict
    /// pointwise monotonicity is genuinely false: slowing arrivals past a batch-window
    /// boundary shrinks batches, each request pays more amortized overhead, and shed counts
    /// can tick *up* — e.g. gap 4 → 5 at `max_wait_ticks: 8` splits 3-request batches into
    /// 2-request ones. Fixing per-request cost isolates the queueing property the cap is
    /// supposed to enforce.)
    #[test]
    fn shed_count_is_monotone_in_arrival_rate(
        requests in 8usize..120,
        fast_gap in 1u64..5,
        slowdown in 1u64..6,
        shards in 1usize..4,
        queue_cap in 1usize..6,
    ) {
        let unbatched = BatchPolicy::unbatched();
        let (_, fast) = plan_with_policy(
            requests, fast_gap, shards, queue_cap, ArrivalProcess::Uniform, unbatched);
        let (_, slow) = plan_with_policy(
            requests, fast_gap + slowdown, shards, queue_cap, ArrivalProcess::Uniform, unbatched);
        prop_assert!(
            slow.sheds.len() <= fast.sheds.len(),
            "slowing arrivals from every {} to every {} ticks raised sheds {} -> {}",
            fast_gap, fast_gap + slowdown, fast.sheds.len(), slow.sheds.len()
        );
        prop_assert!(slow.shed_rate() <= fast.shed_rate());
    }

    /// The queue cap is a real bound: lowering it (same trace) never sheds less, and a cap
    /// at the trace length sheds nothing.
    #[test]
    fn shed_count_is_antitone_in_queue_cap(
        requests in 8usize..100,
        interarrival in 1u64..4,
        shards in 1usize..4,
        cap in 1usize..6,
        extra in 1usize..6,
    ) {
        let (_, tight) = plan(requests, interarrival, shards, cap, ArrivalProcess::Uniform);
        let (_, loose) =
            plan(requests, interarrival, shards, cap + extra, ArrivalProcess::Uniform);
        prop_assert!(loose.sheds.len() <= tight.sheds.len());
        let (_, unbounded) =
            plan(requests, interarrival, shards, requests, ArrivalProcess::Uniform);
        prop_assert_eq!(unbounded.sheds.len(), 0);
    }
}

/// The plan-side invariants above transfer to full runs: phase B asserts batch-for-batch
/// timing equality with phase A internally, and this control arm checks conservation on a
/// real executed report, escalations included.
#[test]
fn executed_two_tier_run_conserves_requests() {
    let spec = ModelSpec::mlp(2021);
    let trace = WorkloadSpec::uniform(30, 2, 2, 4242)
        .with_arrival(ArrivalProcess::Bursty { mean_burst: 5 })
        .generate(&spec);
    let cluster = Cluster::new(ClusterConfig {
        source: ModelSource::Spec(spec),
        mode: ServeMode::MonteCarlo,
        shards: 3,
        workers_per_shard: 2,
        batch: BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
        queue_cap: 4,
        deadline_ticks: Some(400),
        routing: RoutingPolicy::TwoTier { low_samples: 1, high_samples: 6, entropy_threshold: 1.0 },
        autoscale: None,
    });
    let report = cluster.run(&trace);
    assert_eq!(report.answered() + report.sheds.len(), report.submitted());
    for (i, outcome) in report.outcomes.iter().enumerate() {
        match outcome {
            RequestOutcome::Answered { .. } => assert!(report.responses[i].is_some()),
            RequestOutcome::Shed { .. } => assert!(report.responses[i].is_none()),
        }
    }
    // Escalation is an upgrade path, never a second outcome: escalated requests stay answered.
    for event in &report.escalations {
        assert!(matches!(
            report.outcomes[event.request as usize],
            RequestOutcome::Answered { escalated: true, .. }
        ));
    }
}
