//! Accuracy contract of the analytic moment backend, validated against large-S Monte-Carlo
//! ground truth:
//!
//! 1. on **every** zoo proxy, the analytic predictive mean / entropy tracks an S = 1024
//!    Monte-Carlo run within pinned tolerances, and the analytic per-class variance stays on
//!    the same (tiny) scale the tight `softplus(−4)` posterior induces;
//! 2. the *ranking* of inputs by predictive entropy — what a two-tier router keys on — is
//!    preserved between the two backends;
//! 3. property: the mean agreement is not an artifact of the five committed geometries — it
//!    holds across random small MLP posteriors.

use bnn_models::ModelKind;
use bnn_serve::{ModelSource, ModelSpec, WorkloadSpec};
use bnn_tensor::Tensor;
use bnn_train::epsilon::{EpsilonSource, LfsrForward};
use bnn_train::network::{Network, Predictive};
use bnn_train::variational::BayesConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WEIGHT_SEED: u64 = 77;
const MC_SAMPLES: usize = 1024;

fn mc_sources(count: usize, base: u64) -> Vec<Box<dyn EpsilonSource>> {
    (0..count)
        .map(|i| Box::new(LfsrForward::new(base + i as u64).unwrap()) as Box<dyn EpsilonSource>)
        .collect()
}

fn mc_predictive(spec: &ModelSpec, input: &Tensor, base: u64) -> Predictive {
    let mut network = spec.build();
    let mut sources = mc_sources(MC_SAMPLES, base);
    network.predictive(input, &mut sources).unwrap()
}

/// A deterministic, non-constant input for the spec — the first request of a workload trace.
fn probe_inputs(spec: &ModelSpec, count: usize) -> Vec<Tensor> {
    WorkloadSpec::uniform(count, 1, 1, 4096)
        .generate(spec)
        .into_iter()
        .map(|request| request.input)
        .collect()
}

#[test]
fn moment_tracks_s1024_monte_carlo_on_every_zoo_model() {
    // The analytic backend propagates the independent-ε mean-field posterior. Two structural
    // effects separate it from LFSR Monte-Carlo (see the `bnn_train::moment` module docs):
    // the serial GRNG's one-shift-per-ε stream correlates consecutive weight draws, and —
    // conv only — one MC sample reuses the same weight draw at every spatial patch, so conv
    // activations are spatially correlated where the analytic rules assume independence.
    // Hence tight gates for the MLP proxy, looser pinned gates for the conv families, and a
    // scale *window* (not tight agreement) for the per-class variance everywhere. Measured
    // at these seeds: MLP mean dev 1.2e-2 / entropy dev 5.2e-3 / ratio 5.1–10.5; conv mean
    // dev 6.6e-2 / entropy dev 1.1e-1 / ratio 15.4–38.5.
    const VARIANCE_RATIO_MIN: f64 = 2.0;
    const VARIANCE_RATIO_MAX: f64 = 128.0;
    const VARIANCE_FLOOR: f64 = 1e-5;

    for kind in ModelKind::all() {
        let spec = ModelSpec::for_kind(kind, WEIGHT_SEED);
        let (mean_tol, entropy_tol) = if spec.proxy.conv { (0.1, 0.15) } else { (0.02, 0.03) };
        let mut moment = ModelSource::Spec(spec.clone()).build_moment();
        let input = probe_inputs(&spec, 1).pop().unwrap();
        let analytic = moment.predictive(&input).unwrap();
        let mc = mc_predictive(&spec, &input, 0xB00C + WEIGHT_SEED);

        let mean_dev = analytic
            .mean
            .data()
            .iter()
            .zip(mc.mean.data())
            .map(|(a, m)| (*a as f64 - *m as f64).abs())
            .fold(0.0f64, f64::max);
        let ratios: Vec<f64> = analytic
            .variance
            .data()
            .iter()
            .zip(mc.variance.data())
            .filter(|(_, m)| **m as f64 > VARIANCE_FLOOR)
            .map(|(a, m)| *m as f64 / (*a as f64).max(f64::MIN_POSITIVE))
            .collect();
        eprintln!(
            "{}: mean dev {mean_dev:.2e}, entropy dev {:.2e}, variance ratios {ratios:.1?}",
            kind.paper_name(),
            (analytic.entropy as f64 - mc.entropy as f64).abs()
        );

        for (class, (a, m)) in analytic.mean.data().iter().zip(mc.mean.data()).enumerate() {
            assert!(
                (*a as f64 - *m as f64).abs() < mean_tol,
                "{}: class {class} analytic mean {a} vs S={MC_SAMPLES} MC mean {m}",
                kind.paper_name()
            );
        }
        assert!(
            (analytic.entropy as f64 - mc.entropy as f64).abs() < entropy_tol,
            "{}: analytic entropy {} vs MC entropy {}",
            kind.paper_name(),
            analytic.entropy,
            mc.entropy
        );
        assert!(!ratios.is_empty(), "{}: MC variance never cleared the floor", kind.paper_name());
        for ratio in &ratios {
            assert!(
                (VARIANCE_RATIO_MIN..VARIANCE_RATIO_MAX).contains(ratio),
                "{}: MC/analytic variance ratio {ratio} outside the pinned window",
                kind.paper_name()
            );
        }
    }
}

#[test]
fn entropy_ranking_of_inputs_survives_the_backend_swap() {
    // A two-tier router escalates by predictive entropy; the analytic backend must agree
    // with Monte-Carlo about which requests are the uncertain ones. Only pairs that *both*
    // backends separate by more than the floor are compared — a pair either backend calls a
    // near-tie has no meaningful order (MC sampling noise on one side, the independence
    // approximation on the other) — and the contract is rank *concordance* (measured at
    // these seeds: 60/60 on B-MLP, 54/55 on B-LeNet), pinned per family below.
    const NOISE_FLOOR: f64 = 0.01;

    for kind in [ModelKind::Mlp, ModelKind::LeNet] {
        let spec = ModelSpec::for_kind(kind, WEIGHT_SEED);
        let mut moment = ModelSource::Spec(spec.clone()).build_moment();
        let inputs = probe_inputs(&spec, 12);
        let pairs: Vec<(f64, f64)> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let analytic = moment.predictive(input).unwrap().entropy;
                let mc = mc_predictive(&spec, input, 0xC0DE + i as u64).entropy;
                (analytic as f64, mc as f64)
            })
            .collect();
        let mut comparable = 0usize;
        let mut concordant = 0usize;
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                let (a_i, mc_i) = pairs[i];
                let (a_j, mc_j) = pairs[j];
                if (mc_i - mc_j).abs() < NOISE_FLOOR || (a_i - a_j).abs() < NOISE_FLOOR {
                    continue;
                }
                comparable += 1;
                concordant += usize::from((a_i > a_j) == (mc_i > mc_j));
            }
        }
        let concordance = concordant as f64 / comparable.max(1) as f64;
        eprintln!("{}: {concordant}/{comparable} separable pairs concordant", kind.paper_name());
        assert!(comparable >= 10, "{}: too few separable pairs", kind.paper_name());
        let required = if spec.proxy.conv { 0.75 } else { 0.95 };
        assert!(
            concordance >= required,
            "{}: entropy rank concordance {concordance:.2} below {required}",
            kind.paper_name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random small MLP posteriors: the analytic mean stays within MC sampling error of an
    /// S = 1024 run — the agreement is a property of the propagation rules, not of the five
    /// committed zoo geometries.
    #[test]
    fn moment_mean_tracks_monte_carlo_on_random_mlps(
        input_dim in 2usize..8,
        hidden_a in 2usize..10,
        hidden_b in 2usize..8,
        classes in 2usize..5,
        weight_seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(weight_seed);
        let mut network =
            Network::bayes_mlp(input_dim, &[hidden_a, hidden_b], classes, BayesConfig::default(),
                &mut rng);
        let mut moment = bnn_train::MomentNetwork::from_network(&network).unwrap();
        let input = Tensor::filled(&[input_dim], 0.25);
        let analytic = moment.predictive(&input).unwrap();
        let mut sources = mc_sources(MC_SAMPLES, 0xF00D + weight_seed);
        let mc = network.predictive(&input, &mut sources).unwrap();
        for (a, m) in analytic.mean.data().iter().zip(mc.mean.data()) {
            prop_assert!(
                (*a as f64 - *m as f64).abs() < 0.02,
                "analytic mean {} vs MC mean {}", a, m
            );
        }
        prop_assert!((analytic.entropy - mc.entropy).abs() < 0.05);
    }
}
