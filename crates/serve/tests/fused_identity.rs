//! PR 8 serving-side identity contracts:
//!
//! 1. **Fused sampling is a pure speed switch.** A replica answering with
//!    `Network::predictive_fused_into` (all `S` sampled passes batched into one stacked
//!    walk) produces byte-identical responses to the historical per-sample path, on both
//!    architecture families and across `S` ∈ {1, 2, 8, 16}.
//! 2. **The `EngineSpec` builder is a refactor, not a behavior change.** Engines built via
//!    [`InferenceEngine::build`] serialize identically to the deprecated constructor ladder.
//! 3. **Bit-exact kernel tiers cannot change a response.** Forcing any tier in
//!    [`bnn_tensor::KernelTier::BIT_EXACT`] (or any GEMM worker count) on a replica leaves
//!    every response byte equal to the reference tier's.

use bnn_serve::{
    BatchPolicy, ClusterConfig, EngineSpec, InferRequest, InferResponse, InferenceEngine,
    ModelSpec, RoutingPolicy, ServeMode, ServeReplica, WorkloadSpec,
};
use bnn_tensor::KernelTier;

fn trace(spec: &ModelSpec, requests: usize, samples: usize) -> Vec<InferRequest> {
    WorkloadSpec::uniform(requests, 3, samples, 2021).generate(spec)
}

fn empty_response() -> InferResponse {
    InferResponse { id: 0, samples: 0, mean: Vec::new(), variance: Vec::new(), entropy: 0.0 }
}

fn answers(replica: &mut ServeReplica, requests: &[InferRequest]) -> Vec<InferResponse> {
    let mut response = empty_response();
    requests
        .iter()
        .map(|request| {
            replica.answer_into(request, &mut response);
            response.clone()
        })
        .collect()
}

#[test]
fn fused_and_per_sample_replicas_answer_byte_identically() {
    for spec in [ModelSpec::mlp(11), ModelSpec::lenet(11)] {
        for samples in [1usize, 2, 8, 16] {
            let requests = trace(&spec, 6, samples);
            let mut fused = ServeReplica::build(&EngineSpec::new(spec.clone()));
            let mut per_sample =
                ServeReplica::build(&EngineSpec::new(spec.clone()).fused_sampling(false));
            assert_eq!(
                answers(&mut fused, &requests),
                answers(&mut per_sample, &requests),
                "{}: fused sampling changed responses at S={samples}",
                spec.name()
            );
        }
    }
}

#[test]
fn fused_and_per_sample_engines_serialize_identically() {
    let spec = ModelSpec::lenet(23);
    let requests = trace(&spec, 20, 5);
    let base = EngineSpec::new(spec).policy(BatchPolicy { max_batch: 4, max_wait_ticks: 8 });
    let fused = InferenceEngine::build(base.clone()).run(&requests);
    let per_sample = InferenceEngine::build(base.fused_sampling(false)).run(&requests);
    assert_eq!(fused.to_json().to_pretty(), per_sample.to_json().to_pretty());
}

#[test]
fn engine_spec_reproduces_the_deprecated_constructor_ladder() {
    let spec = ModelSpec::mlp(37);
    let requests = trace(&spec, 16, 4);
    let policy = BatchPolicy { max_batch: 5, max_wait_ticks: 10 };
    let ladder = InferenceEngine::new(spec.clone(), policy, 2).run(&requests);
    let built = InferenceEngine::build(EngineSpec::new(spec.clone()).policy(policy).workers(2))
        .run(&requests);
    assert_eq!(ladder.to_json().to_pretty(), built.to_json().to_pretty());

    // Same for the mode-explicit rung: a Moment engine from the ladder equals a Moment spec.
    let source = bnn_serve::ModelSource::Spec(spec.clone());
    let ladder =
        InferenceEngine::from_source_with_mode(source, ServeMode::Moment, policy, 2).run(&requests);
    let built = InferenceEngine::build(
        EngineSpec::new(spec).mode(ServeMode::Moment).policy(policy).workers(2),
    )
    .run(&requests);
    assert_eq!(ladder.to_json().to_pretty(), built.to_json().to_pretty());
}

#[test]
fn bit_exact_kernel_tiers_leave_responses_unchanged() {
    for spec in [ModelSpec::mlp(5), ModelSpec::lenet(5)] {
        let requests = trace(&spec, 4, 8);
        let mut reference =
            ServeReplica::build(&EngineSpec::new(spec.clone()).kernel_tier(KernelTier::Reference));
        let baseline = answers(&mut reference, &requests);
        for tier in KernelTier::BIT_EXACT {
            for gemm_workers in [1usize, 3] {
                let mut replica = ServeReplica::build(
                    &EngineSpec::new(spec.clone()).kernel_tier(tier).gemm_workers(gemm_workers),
                );
                assert_eq!(
                    answers(&mut replica, &requests),
                    baseline,
                    "{}: tier {} × {gemm_workers} GEMM workers changed responses",
                    spec.name(),
                    tier.label()
                );
            }
        }
    }
}

#[test]
fn moment_replicas_ignore_the_fused_switch() {
    let spec = ModelSpec::mlp(13);
    let requests = trace(&spec, 5, 6);
    let base = EngineSpec::new(spec).mode(ServeMode::Moment);
    let mut on = ServeReplica::build(&base.clone());
    let mut off = ServeReplica::build(&base.fused_sampling(false));
    assert_eq!(answers(&mut on, &requests), answers(&mut off, &requests));
}

#[test]
fn cluster_config_mirrors_an_engine_spec() {
    let spec = EngineSpec::new(ModelSpec::lenet(9))
        .mode(ServeMode::Moment)
        .policy(BatchPolicy { max_batch: 3, max_wait_ticks: 6 })
        .workers(2);
    let config = ClusterConfig::from_engine_spec(&spec, 4, 32);
    assert_eq!(config.mode, ServeMode::Moment);
    assert_eq!(config.shards, 4);
    assert_eq!(config.workers_per_shard, 2);
    assert_eq!(config.batch, BatchPolicy { max_batch: 3, max_wait_ticks: 6 });
    assert_eq!(config.queue_cap, 32);
    assert_eq!(config.deadline_ticks, None);
    assert_eq!(config.routing, RoutingPolicy::RoundRobin);
    assert!(config.autoscale.is_none());
    assert_eq!(config.source.epsilon_count(), spec.source_ref().epsilon_count());
}
