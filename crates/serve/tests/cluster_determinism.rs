//! Cluster-level determinism: the report of an N-shard × M-worker cluster run is a pure
//! function of (trace, config, swap schedule) — never of the parallelism it ran with.
//!
//! Three contracts, each pinned exactly:
//!
//! 1. **Worker invariance** — 1 worker per shard and N workers per shard serialize
//!    byte-identical reports, for every routing policy and arrival shape.
//! 2. **Shard-split equivalence** — each shard of an N-shard run behaves exactly like a
//!    standalone single-shard cluster (and like a bare [`InferenceEngine`]) driven with the
//!    sub-trace the router handed it: sharding relocates requests, it never changes answers
//!    or per-shard timing.
//! 3. **Golden events** — the exact tick of every shed and every escalation of a fixed
//!    adversarial scenario is hardcoded below; any change to routing, admission or batching
//!    arithmetic trips it.

use bnn_serve::{
    ArrivalProcess, BatchPolicy, Cluster, ClusterConfig, InferRequest, InferenceEngine,
    ModelSource, ModelSpec, RequestOutcome, RoutingPolicy, ServeMode, WorkloadSpec,
};

const WEIGHT_SEED: u64 = 2021;

fn spec() -> ModelSpec {
    ModelSpec::mlp(WEIGHT_SEED)
}

fn config(shards: usize, routing: RoutingPolicy) -> ClusterConfig {
    ClusterConfig {
        source: ModelSource::Spec(spec()),
        mode: ServeMode::MonteCarlo,
        shards,
        workers_per_shard: 1,
        batch: BatchPolicy { max_batch: 4, max_wait_ticks: 6 },
        queue_cap: 3,
        deadline_ticks: None,
        routing,
        autoscale: None,
    }
}

fn bursty_trace(requests: usize) -> Vec<InferRequest> {
    WorkloadSpec::uniform(requests, 2, 2, 909)
        .with_arrival(ArrivalProcess::Bursty { mean_burst: 6 })
        .generate(&spec())
}

// ---------------------------------------------------------------------------------------------
// 1. Worker invariance
// ---------------------------------------------------------------------------------------------

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let trace = bursty_trace(36);
    let policies = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::TwoTier { low_samples: 1, high_samples: 6, entropy_threshold: 1.0 },
    ];
    for routing in policies {
        let mut single = config(3, routing);
        single.workers_per_shard = 1;
        let mut pooled = config(3, routing);
        pooled.workers_per_shard = 4;
        let a = Cluster::new(single).run(&trace);
        let b = Cluster::new(pooled).run(&trace);
        assert_eq!(
            a.to_json().to_pretty(),
            b.to_json().to_pretty(),
            "{}: worker count leaked into the serialized report",
            routing.label()
        );
        assert_eq!(a.responses_digest(), b.responses_digest());
        assert_eq!(a.events_digest(), b.events_digest());
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let trace = bursty_trace(24);
    let cluster = Cluster::new(config(2, RoutingPolicy::LeastLoaded));
    let a = cluster.run(&trace);
    let b = cluster.run(&trace);
    assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
}

// ---------------------------------------------------------------------------------------------
// 2. Shard-split equivalence
// ---------------------------------------------------------------------------------------------

/// The sub-trace the router admitted to `shard`, in arrival order.
fn admitted_sub_trace(
    trace: &[InferRequest],
    outcomes: &[RequestOutcome],
    shard: usize,
) -> Vec<InferRequest> {
    trace
        .iter()
        .zip(outcomes)
        .filter_map(|(request, outcome)| match outcome {
            RequestOutcome::Answered { shard: s, .. } if *s == shard => Some(request.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn each_shard_equals_a_standalone_engine_on_its_sub_trace() {
    let cfg = config(3, RoutingPolicy::LeastLoaded);
    let trace = bursty_trace(42);
    let report = Cluster::new(cfg.clone()).run(&trace);
    assert!(report.answered() > 0);

    for shard in 0..cfg.shards {
        let sub_trace = admitted_sub_trace(&trace, &report.outcomes, shard);
        // A bare engine over the routed sub-trace reproduces the shard's slice of the
        // cluster report exactly — answers, latencies, batch timing, everything.
        let engine = InferenceEngine::from_source(cfg.source.clone(), cfg.batch, 2);
        let solo = engine.run(&sub_trace);
        assert_eq!(
            solo.to_json().to_pretty(),
            report.shard_reports[shard].to_json().to_pretty(),
            "shard {shard} diverged from a standalone engine on its own sub-trace"
        );
    }
}

#[test]
fn each_shard_equals_a_standalone_single_shard_cluster() {
    let cfg = config(4, RoutingPolicy::RoundRobin);
    let trace = bursty_trace(40);
    let report = Cluster::new(cfg.clone()).run(&trace);

    for shard in 0..cfg.shards {
        let sub_trace = admitted_sub_trace(&trace, &report.outcomes, shard);
        // The sub-trace holds only what the shard admitted, so a standalone single-shard
        // cluster over it sheds nothing and reproduces the same answers and ticks.
        let mut solo_cfg = cfg.clone();
        solo_cfg.shards = 1;
        let solo = Cluster::new(solo_cfg).run(&sub_trace);
        assert!(solo.sheds.is_empty(), "shard {shard}: replaying admitted requests cannot shed");
        assert_eq!(
            solo.shard_reports[0].to_json().to_pretty(),
            report.shard_reports[shard].to_json().to_pretty(),
            "shard {shard} diverged from a standalone single-shard cluster"
        );
    }
}

#[test]
fn single_shard_cluster_equals_the_bare_engine() {
    let cfg = ClusterConfig { queue_cap: 1_000, ..config(1, RoutingPolicy::LeastLoaded) };
    let trace = bursty_trace(30);
    let report = Cluster::new(cfg.clone()).run(&trace);
    assert!(report.sheds.is_empty(), "an unbounded single shard admits everything");
    let engine = InferenceEngine::from_source(cfg.source, cfg.batch, 3);
    let solo = engine.run(&trace);
    assert_eq!(solo.to_json().to_pretty(), report.shard_reports[0].to_json().to_pretty());
    assert_eq!(solo.latencies, report.latencies);
    assert_eq!(solo.makespan_ticks, report.makespan_ticks);
}

// ---------------------------------------------------------------------------------------------
// 3. Golden events: every shed and escalation pinned to its exact tick
// ---------------------------------------------------------------------------------------------

/// The fixed adversarial scenario the golden values below were captured from: two 20-request
/// spikes into a 3-shard two-tier cluster (2 low shards + 1 high shard) with cap-3 queues.
fn golden_scenario() -> (Vec<InferRequest>, Cluster) {
    let trace = WorkloadSpec::uniform(40, 5, 2, 909)
        .with_arrival(ArrivalProcess::Adversarial { spike: 20 })
        .generate(&spec());
    let routing =
        RoutingPolicy::TwoTier { low_samples: 1, high_samples: 6, entropy_threshold: 1.0 };
    (trace, Cluster::new(config(3, routing)))
}

/// `request@tick>shard:reason`, space-separated, in decision order. Each spike of 20 lands on
/// one tick; with cap-3 queues the two low shards admit 3 requests each and shed the other 14
/// at the spike tick itself.
const GOLDEN_SHEDS: &str = "6@0>0:queue_full 7@0>0:queue_full 8@0>0:queue_full \
     9@0>0:queue_full 10@0>0:queue_full 11@0>0:queue_full 12@0>0:queue_full 13@0>0:queue_full \
     14@0>0:queue_full 15@0>0:queue_full 16@0>0:queue_full 17@0>0:queue_full 18@0>0:queue_full \
     19@0>0:queue_full 26@100>0:queue_full 27@100>0:queue_full 28@100>0:queue_full \
     29@100>0:queue_full 30@100>0:queue_full 31@100>0:queue_full 32@100>0:queue_full \
     33@100>0:queue_full 34@100>0:queue_full 35@100>0:queue_full 36@100>0:queue_full \
     37@100>0:queue_full 38@100>0:queue_full 39@100>0:queue_full";

/// `request@tick:admitted`, space-separated, in decision order. Every low-pass answer of each
/// spike completes on one tick (both low shards' batches end together), every answer crosses
/// the 1-nat threshold, and the cap-3 high shard admits the first 3 — the second wave arrives
/// at tick 188 while the first wave's high batch still runs (ends at 248), so it is shed and
/// falls back to its low-tier answers.
const GOLDEN_ESCALATIONS: &str = "0@88:true 1@88:true 2@88:true 3@88:false 4@88:false \
     5@88:false 20@188:false 21@188:false 22@188:false 23@188:false 24@188:false 25@188:false";

const GOLDEN_EVENTS_DIGEST: &str = "49373f27cdfa2eb3";
const GOLDEN_RESPONSES_DIGEST: &str = "e6cffdb989d73aba";

#[test]
fn golden_sheds_and_escalations_land_on_pinned_ticks() {
    let (trace, cluster) = golden_scenario();
    let report = cluster.run(&trace);

    let sheds = report
        .sheds
        .iter()
        .map(|s| format!("{}@{}>{}:{}", s.request, s.tick, s.shard, s.reason.label()))
        .collect::<Vec<_>>()
        .join(" ");
    let escalations = report
        .escalations
        .iter()
        .map(|e| format!("{}@{}:{}", e.request, e.tick, e.admitted))
        .collect::<Vec<_>>()
        .join(" ");

    assert!(!report.sheds.is_empty(), "the spikes must shed");
    assert!(!report.escalations.is_empty(), "the threshold must escalate");
    assert_eq!(sheds, GOLDEN_SHEDS, "shed schedule drifted");
    assert_eq!(escalations, GOLDEN_ESCALATIONS, "escalation schedule drifted");
    assert_eq!(report.events_digest(), GOLDEN_EVENTS_DIGEST);
    assert_eq!(report.responses_digest(), GOLDEN_RESPONSES_DIGEST);
}

#[test]
fn golden_scenario_is_worker_and_rerun_invariant() {
    let (trace, cluster) = golden_scenario();
    let first = cluster.run(&trace);
    let mut pooled_cfg = cluster.config().clone();
    pooled_cfg.workers_per_shard = 3;
    let second = Cluster::new(pooled_cfg).run(&trace);
    assert_eq!(first.events_digest(), second.events_digest());
    assert_eq!(first.responses_digest(), second.responses_digest());
}
