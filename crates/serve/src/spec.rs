//! Frozen-posterior model sources.
//!
//! A serving engine must be able to *replicate* its model: every pool worker holds a private
//! copy of the frozen posterior (layer state is `&mut` during a forward pass, so replicas
//! cannot be shared). Two ways to materialize a replica exist, unified by [`ModelSource`]:
//!
//! * a [`ModelSpec`] describes how to **rebuild** it deterministically from a seed — the same
//!   geometry and the same weight seed produce bit-identical `(μ, ρ)` parameters on every
//!   worker, the replica-side analogue of regenerating ε from a seed instead of shipping it.
//!   This is the synthetic-posterior path the benchmarks use;
//! * a [`CheckpointReplica`] materializes it from a **loaded posterior**
//!   ([`NetworkSnapshot`]) — the production path: a model *trained* somewhere, persisted by
//!   the `bnn-store` checkpoint format, published to a registry and served (and hot-swapped)
//!   from there. The snapshot is behind an [`Arc`], so N workers share one loaded parameter
//!   set and each materializes a private bit-identical replica from it.

use bnn_models::zoo::TrainableProxy;
use bnn_models::ModelKind;
use bnn_train::moment::MomentNetwork;
use bnn_train::snapshot::NetworkSnapshot;
use bnn_train::variational::BayesConfig;
use bnn_train::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// How a replica turns a frozen posterior into a predictive summary: the serving backend.
///
/// The axis is orthogonal to [`ModelSource`] — any posterior (seed-rebuilt or
/// checkpoint-loaded) serves under either backend, and responses are shape-compatible
/// between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// `S` sampled forward passes per request (`w = μ + ε∘σ`), aggregated into predictive
    /// mean / variance / entropy. The default, and the backend every pre-existing committed
    /// baseline was produced under.
    #[default]
    MonteCarlo,
    /// One analytic pass propagating `(mean, variance)` through every layer
    /// ([`MomentNetwork`]). No ε is drawn — a request's `samples` field does not change the
    /// answer — and responses report `samples = 0` to mark themselves analytic.
    Moment,
}

impl ServeMode {
    /// Stable short label for report keys and bench summaries (`"mc"` / `"moment"`).
    pub fn label(&self) -> &'static str {
        match self {
            ServeMode::MonteCarlo => "mc",
            ServeMode::Moment => "moment",
        }
    }
}

/// A deterministic recipe for one frozen posterior: a scaled-down family proxy plus the seed
/// its variational parameters were initialized from.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// The family proxy geometry (shared with the Table 1 study via `bnn-models`).
    pub proxy: TrainableProxy,
    /// Seed of the `(μ, ρ)` initialization; replicas built from the same seed are identical.
    pub weight_seed: u64,
    /// Bayesian hyper-parameters of the posterior.
    pub config: BayesConfig,
}

impl ModelSpec {
    /// The B-MLP serving proxy.
    pub fn mlp(weight_seed: u64) -> ModelSpec {
        ModelSpec::for_kind(ModelKind::Mlp, weight_seed)
    }

    /// The B-LeNet serving proxy.
    pub fn lenet(weight_seed: u64) -> ModelSpec {
        ModelSpec::for_kind(ModelKind::LeNet, weight_seed)
    }

    /// The serving proxy of any paper family.
    pub fn for_kind(kind: ModelKind, weight_seed: u64) -> ModelSpec {
        ModelSpec { proxy: kind.trainable_proxy(), weight_seed, config: BayesConfig::default() }
    }

    /// The paper name of the family this spec serves (e.g. `"B-LeNet"`).
    pub fn name(&self) -> &'static str {
        self.proxy.kind.paper_name()
    }

    /// The input shape a request's tensor must have.
    pub fn input_shape(&self) -> &[usize] {
        &self.proxy.input
    }

    /// ε values one Monte-Carlo sample draws (one per Bayesian weight), computed from the
    /// proxy geometry alone — no network is materialized. Must mirror the layer stacks of
    /// [`Network::bayes_mlp`] / [`Network::bayes_lenet`] that [`ModelSpec::build`] constructs
    /// (pinned against `build().epsilon_count()` by a test for every family).
    pub fn epsilon_count(&self) -> usize {
        if self.proxy.conv {
            let [c, h, w] = [self.proxy.input[0], self.proxy.input[1], self.proxy.input[2]];
            let conv1 = 6 * c * 3 * 3;
            let conv2 = 16 * 6 * 3 * 3;
            let flat = 16 * (h / 4) * (w / 4);
            conv1 + conv2 + flat * 64 + 64 * self.proxy.classes
        } else {
            let dims = std::iter::once(self.proxy.input[0])
                .chain(self.proxy.hidden.iter().copied())
                .chain(std::iter::once(self.proxy.classes));
            dims.clone().zip(dims.skip(1)).map(|(a, b)| a * b).sum()
        }
    }

    /// Builds one frozen-posterior replica. Pure in `(proxy, weight_seed, config)`: every
    /// call, on every thread, yields bit-identical parameters.
    pub fn build(&self) -> Network {
        let mut rng = StdRng::seed_from_u64(self.weight_seed);
        if self.proxy.conv {
            let shape = [self.proxy.input[0], self.proxy.input[1], self.proxy.input[2]];
            Network::bayes_lenet(&shape, self.proxy.classes, self.config, &mut rng)
        } else {
            Network::bayes_mlp(
                self.proxy.input[0],
                &self.proxy.hidden,
                self.proxy.classes,
                self.config,
                &mut rng,
            )
        }
    }
}

/// A posterior loaded from a checkpoint, ready to materialize serving replicas.
///
/// Construction validates the snapshot once ([`NetworkSnapshot::validate`] — shape checks
/// only, no throwaway network is built), so [`ModelSource::build`] on the hot path cannot
/// fail.
#[derive(Debug, Clone)]
pub struct CheckpointReplica {
    label: String,
    snapshot: Arc<NetworkSnapshot>,
    input_shape: Vec<usize>,
}

impl CheckpointReplica {
    /// Wraps a loaded posterior. `label` names the model in reports (e.g.
    /// `"blenet@v3"`), `input_shape` is the shape requests must carry (a posterior alone
    /// does not determine the spatial input size of a convolutional network).
    ///
    /// # Errors
    ///
    /// Returns the shape error of [`NetworkSnapshot::validate`] when the snapshot is
    /// internally inconsistent (possible only for hand-built snapshots — decoded checkpoints
    /// are validated by the store).
    pub fn new(
        label: impl Into<String>,
        snapshot: NetworkSnapshot,
        input_shape: Vec<usize>,
    ) -> Result<CheckpointReplica, bnn_tensor::TensorError> {
        snapshot.validate()?;
        Ok(CheckpointReplica { label: label.into(), snapshot: Arc::new(snapshot), input_shape })
    }

    /// The model label used in reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The loaded posterior.
    pub fn snapshot(&self) -> &NetworkSnapshot {
        &self.snapshot
    }
}

/// Where a serving replica's frozen posterior comes from: rebuilt from a seed proxy
/// ([`ModelSpec`]) or materialized from a loaded checkpoint ([`CheckpointReplica`]).
///
/// Every variant is a *pure recipe*: building twice — on any worker — yields bit-identical
/// replicas, which is what keeps N-worker serving byte-deterministic.
#[derive(Debug, Clone)]
pub enum ModelSource {
    /// Rebuild deterministically from `(proxy geometry, weight seed)`.
    Spec(ModelSpec),
    /// Materialize from a loaded posterior snapshot.
    Checkpoint(CheckpointReplica),
}

impl ModelSource {
    /// The name of the served model for reports.
    pub fn name(&self) -> String {
        match self {
            ModelSource::Spec(spec) => spec.name().to_string(),
            ModelSource::Checkpoint(replica) => replica.label.clone(),
        }
    }

    /// The input shape a request's tensor must have.
    pub fn input_shape(&self) -> &[usize] {
        match self {
            ModelSource::Spec(spec) => spec.input_shape(),
            ModelSource::Checkpoint(replica) => &replica.input_shape,
        }
    }

    /// ε values one Monte-Carlo sample draws (one per Bayesian weight) — drives the engine's
    /// tick cost model without materializing a network.
    pub fn epsilon_count(&self) -> usize {
        match self {
            ModelSource::Spec(spec) => spec.epsilon_count(),
            ModelSource::Checkpoint(replica) => replica.snapshot.epsilon_count(),
        }
    }

    /// Builds one frozen-posterior replica (bit-identical on every call and every thread).
    pub fn build(&self) -> Network {
        match self {
            ModelSource::Spec(spec) => spec.build(),
            ModelSource::Checkpoint(replica) => {
                replica.snapshot.build().expect("snapshot validated at construction")
            }
        }
    }

    /// Compiles the same frozen posterior for the analytic [`ServeMode::Moment`] backend
    /// (bit-identical on every call and every thread — the compilation is a pure function of
    /// the posterior).
    pub fn build_moment(&self) -> MomentNetwork {
        match self {
            ModelSource::Spec(spec) => MomentNetwork::from_network(&spec.build())
                .expect("a built network snapshots consistently"),
            ModelSource::Checkpoint(replica) => MomentNetwork::from_snapshot(&replica.snapshot)
                .expect("snapshot validated at construction"),
        }
    }
}

impl From<ModelSpec> for ModelSource {
    fn from(spec: ModelSpec) -> ModelSource {
        ModelSource::Spec(spec)
    }
}

impl From<CheckpointReplica> for ModelSource {
    fn from(replica: CheckpointReplica) -> ModelSource {
        ModelSource::Checkpoint(replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_tensor::Tensor;
    use bnn_train::{EpsilonSource, LfsrForward};

    #[test]
    fn replicas_built_from_the_same_spec_are_bit_identical() {
        for spec in [ModelSpec::mlp(11), ModelSpec::lenet(11)] {
            let mut a = spec.build();
            let mut b = spec.build();
            let input = Tensor::filled(spec.input_shape(), 0.4);
            let run = |net: &mut Network| {
                let mut src: Vec<Box<dyn EpsilonSource>> =
                    vec![Box::new(LfsrForward::new(5).unwrap())];
                net.predictive(&input, &mut src).unwrap()
            };
            assert_eq!(run(&mut a), run(&mut b), "{} replicas diverged", spec.name());
        }
    }

    #[test]
    fn specs_cover_all_five_families() {
        for kind in ModelKind::all() {
            let spec = ModelSpec::for_kind(kind, 3);
            let net = spec.build();
            assert!(net.epsilon_count() > 0, "{} has no Bayesian weights", spec.name());
            assert_eq!(spec.name(), kind.paper_name());
        }
    }

    #[test]
    fn geometric_epsilon_count_matches_the_built_network_for_every_family() {
        // The cheap geometry-derived count must track the layer stacks `build()` constructs;
        // this pin is what lets the engine's tick cost model skip the throwaway build.
        for kind in ModelKind::all() {
            let spec = ModelSpec::for_kind(kind, 1);
            assert_eq!(
                spec.epsilon_count(),
                spec.build().epsilon_count(),
                "{}: geometric ε count drifted from the built network",
                spec.name()
            );
        }
    }

    #[test]
    fn checkpoint_source_replicates_the_captured_posterior_bit_exactly() {
        let spec = ModelSpec::lenet(23);
        let network = spec.build();
        let snapshot = network.snapshot();
        let source = ModelSource::from(
            CheckpointReplica::new("lenet@v1", snapshot, spec.input_shape().to_vec()).unwrap(),
        );
        assert_eq!(source.name(), "lenet@v1");
        assert_eq!(source.input_shape(), spec.input_shape());
        assert_eq!(source.epsilon_count(), network.epsilon_count());
        // A replica materialized from the checkpoint answers exactly like the seed-rebuilt
        // network it was captured from.
        let input = Tensor::filled(spec.input_shape(), 0.3);
        let run = |net: &mut Network| {
            let mut src: Vec<Box<dyn EpsilonSource>> = vec![Box::new(LfsrForward::new(9).unwrap())];
            net.predictive(&input, &mut src).unwrap()
        };
        let mut from_checkpoint = source.build();
        let mut from_seed = spec.build();
        assert_eq!(run(&mut from_checkpoint), run(&mut from_seed));
    }

    #[test]
    fn checkpoint_replica_rejects_inconsistent_snapshots() {
        use bnn_train::snapshot::{LayerSnapshot, NetworkSnapshot};
        use bnn_train::variational::VariationalParams;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let weights = VariationalParams::init(&[2, 2], &BayesConfig::default(), &mut rng);
        let snapshot = NetworkSnapshot {
            config: BayesConfig::default(),
            layers: vec![LayerSnapshot::Linear {
                in_features: 5,
                out_features: 2,
                weights,
                bias: Tensor::zeros(&[2]),
                grad_bias: Tensor::zeros(&[2]),
            }],
        };
        assert!(CheckpointReplica::new("broken", snapshot, vec![5]).is_err());
    }
}
