//! Frozen-posterior model specifications.
//!
//! A serving engine must be able to *replicate* its model: every pool worker holds a private
//! copy of the frozen posterior (layer state is `&mut` during a forward pass, so replicas
//! cannot be shared). Rather than cloning a trained network across threads, a [`ModelSpec`]
//! describes how to **rebuild** it deterministically — the same geometry and the same weight
//! seed produce bit-identical `(μ, ρ)` parameters on every worker, the replica-side analogue
//! of regenerating ε from a seed instead of shipping it.

use bnn_models::zoo::TrainableProxy;
use bnn_models::ModelKind;
use bnn_train::variational::BayesConfig;
use bnn_train::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic recipe for one frozen posterior: a scaled-down family proxy plus the seed
/// its variational parameters were initialized from.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// The family proxy geometry (shared with the Table 1 study via `bnn-models`).
    pub proxy: TrainableProxy,
    /// Seed of the `(μ, ρ)` initialization; replicas built from the same seed are identical.
    pub weight_seed: u64,
    /// Bayesian hyper-parameters of the posterior.
    pub config: BayesConfig,
}

impl ModelSpec {
    /// The B-MLP serving proxy.
    pub fn mlp(weight_seed: u64) -> ModelSpec {
        ModelSpec::for_kind(ModelKind::Mlp, weight_seed)
    }

    /// The B-LeNet serving proxy.
    pub fn lenet(weight_seed: u64) -> ModelSpec {
        ModelSpec::for_kind(ModelKind::LeNet, weight_seed)
    }

    /// The serving proxy of any paper family.
    pub fn for_kind(kind: ModelKind, weight_seed: u64) -> ModelSpec {
        ModelSpec { proxy: kind.trainable_proxy(), weight_seed, config: BayesConfig::default() }
    }

    /// The paper name of the family this spec serves (e.g. `"B-LeNet"`).
    pub fn name(&self) -> &'static str {
        self.proxy.kind.paper_name()
    }

    /// The input shape a request's tensor must have.
    pub fn input_shape(&self) -> &[usize] {
        &self.proxy.input
    }

    /// Builds one frozen-posterior replica. Pure in `(proxy, weight_seed, config)`: every
    /// call, on every thread, yields bit-identical parameters.
    pub fn build(&self) -> Network {
        let mut rng = StdRng::seed_from_u64(self.weight_seed);
        if self.proxy.conv {
            let shape = [self.proxy.input[0], self.proxy.input[1], self.proxy.input[2]];
            Network::bayes_lenet(&shape, self.proxy.classes, self.config, &mut rng)
        } else {
            Network::bayes_mlp(
                self.proxy.input[0],
                &self.proxy.hidden,
                self.proxy.classes,
                self.config,
                &mut rng,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_tensor::Tensor;
    use bnn_train::{EpsilonSource, LfsrForward};

    #[test]
    fn replicas_built_from_the_same_spec_are_bit_identical() {
        for spec in [ModelSpec::mlp(11), ModelSpec::lenet(11)] {
            let mut a = spec.build();
            let mut b = spec.build();
            let input = Tensor::filled(spec.input_shape(), 0.4);
            let run = |net: &mut Network| {
                let mut src: Vec<Box<dyn EpsilonSource>> =
                    vec![Box::new(LfsrForward::new(5).unwrap())];
                net.predictive(&input, &mut src).unwrap()
            };
            assert_eq!(run(&mut a), run(&mut b), "{} replicas diverged", spec.name());
        }
    }

    #[test]
    fn specs_cover_all_five_families() {
        for kind in ModelKind::all() {
            let spec = ModelSpec::for_kind(kind, 3);
            let net = spec.build();
            assert!(net.epsilon_count() > 0, "{} has no Bayesian weights", spec.name());
            assert_eq!(spec.name(), kind.paper_name());
        }
    }
}
