//! Seeded synthetic open-loop request traces.
//!
//! An *open-loop* workload fixes the arrival process independently of service speed (arrivals
//! do not wait for responses), which is how production traffic behaves and what makes latency
//! percentiles meaningful — a closed loop would self-throttle exactly when the engine is
//! slowest. Inputs and per-request ε seeds derive deterministically from the workload seed, so
//! the same spec always produces the same trace.
//!
//! Arrival *timing* is pluggable through [`ArrivalProcess`]: the default
//! [`Uniform`](ArrivalProcess::Uniform) cadence the single-engine benchmarks were committed
//! with, plus
//! the cluster-scale processes — [`Bursty`](ArrivalProcess::Bursty) (seeded random burst
//! trains), [`Diurnal`](ArrivalProcess::Diurnal) (a deterministic slow/fast/slow rate wave)
//! and [`Adversarial`](ArrivalProcess::Adversarial) (synchronized spikes crafted to overflow
//! bounded queues). Two invariants hold for every process:
//!
//! * arrival ticks are non-decreasing (the batcher's ordering contract), with a long-run mean
//!   rate of about one request per `interarrival_ticks`;
//! * inputs and ε seeds depend only on `(seed, request index)` — **never** on the arrival
//!   process — so switching processes re-times the same requests rather than inventing new
//!   ones, and answers stay comparable across arrival shapes.

use crate::request::{mix_seed, InferRequest};
use crate::spec::ModelSpec;
use bnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seed-stream tag separating arrival-gap randomness from the input-value randomness, so the
/// arrival process can never perturb input bytes.
const ARRIVAL_STREAM: u64 = 0xA221_7A1C_5EED_0001;

/// How request arrival ticks are laid out over the trace.
///
/// Every variant is a pure function of `(WorkloadSpec, request index)` — no wall clock, no
/// global state — so a given spec always reproduces the same trace bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// One arrival every `interarrival_ticks` — request `r` arrives at
    /// `r × interarrival_ticks`. The original (and default) process; all committed
    /// single-engine baselines use it.
    Uniform,
    /// Seeded random bursts: runs of `1..2×mean_burst` requests share one arrival tick, with
    /// a randomized gap (of roughly matching total duration) before the next burst, so the
    /// long-run rate stays near `1/interarrival_ticks` while short windows far exceed it.
    Bursty {
        /// Mean burst length (must be ≥ 1); bursts are uniform on `1..2×mean_burst`.
        mean_burst: usize,
    },
    /// A deterministic load wave: the inter-arrival gap triangles between
    /// `interarrival_ticks/2` (peak traffic) and `3×interarrival_ticks/2` (trough) over a
    /// cycle of `cycle` requests — the tick-domain analogue of diurnal traffic.
    Diurnal {
        /// Requests per full slow→fast→slow cycle (must be ≥ 2).
        cycle: usize,
    },
    /// The worst case for bounded queues: `spike` requests arrive *simultaneously* at the
    /// start of each window of `spike × interarrival_ticks` ticks, then nothing until the
    /// next window. Mean rate is unchanged; instantaneous rate is unbounded.
    Adversarial {
        /// Simultaneous arrivals per spike (must be ≥ 1).
        spike: usize,
    },
}

impl ArrivalProcess {
    /// A short machine-readable label, e.g. `"uniform"`, `"bursty8"`, `"diurnal64"`,
    /// `"adversarial32"`.
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Uniform => "uniform".to_string(),
            ArrivalProcess::Bursty { mean_burst } => format!("bursty{mean_burst}"),
            ArrivalProcess::Diurnal { cycle } => format!("diurnal{cycle}"),
            ArrivalProcess::Adversarial { spike } => format!("adversarial{spike}"),
        }
    }

    /// The arrival tick of every request in a `requests`-long trace at base cadence
    /// `interarrival_ticks`, seeded by `seed`. Non-decreasing by construction.
    fn arrival_ticks(&self, requests: usize, interarrival_ticks: u64, seed: u64) -> Vec<u64> {
        let delta = interarrival_ticks;
        match *self {
            ArrivalProcess::Uniform => (0..requests).map(|r| r as u64 * delta).collect(),
            ArrivalProcess::Bursty { mean_burst } => {
                assert!(mean_burst >= 1, "mean_burst must be at least 1");
                let mut rng = StdRng::seed_from_u64(mix_seed(seed, ARRIVAL_STREAM));
                let mut ticks = Vec::with_capacity(requests);
                let mut t = 0u64;
                while ticks.len() < requests {
                    let burst = rng.gen_range(1..2 * mean_burst);
                    for _ in 0..burst.min(requests - ticks.len()) {
                        ticks.push(t);
                    }
                    // A burst of b requests is followed by a gap of b×Δ ± ⌊Δ/2⌋ ticks, so the
                    // long-run rate stays near 1/Δ whatever the burst sizes drawn. The jitter
                    // is drawn from the *even-width* range 0..=2⌊Δ/2⌋ and re-centered by
                    // ⌊Δ/2⌋, which keeps its mean exactly zero for every Δ (an asymmetric
                    // 0..=Δ draw would bias odd Δ — and Δ = 1 — upward by half a tick); for
                    // even Δ the range equals 0..=Δ, so pre-existing even-Δ traces (all
                    // committed baselines) are bit-identical.
                    let half = delta.max(1) / 2;
                    let nominal = burst as u64 * delta;
                    let jitter = rng.gen_range(0..2 * half + 1);
                    t += (nominal + jitter).saturating_sub(half).max(1);
                }
                ticks
            }
            ArrivalProcess::Diurnal { cycle } => {
                assert!(cycle >= 2, "cycle must be at least 2");
                let half = (cycle / 2).max(1) as u64;
                let mut ticks = Vec::with_capacity(requests);
                let mut t = 0u64;
                for r in 0..requests {
                    ticks.push(t);
                    let phase = (r % cycle) as u64;
                    // The descending edge is clamped to `half`: for an odd cycle the first
                    // post-peak phase has `cycle − phase = half + 1`, which would push the
                    // gap to Δ/2 + Δ·(half+1)/half — outside the documented envelope — and
                    // drift the long-run rate. Even cycles satisfy `cycle − phase ≤ half`
                    // for every phase ≥ half, so their traces are bit-identical.
                    let tri = if phase < half { phase } else { (cycle as u64 - phase).min(half) };
                    // Gap triangles over [Δ/2, Δ/2 + Δ×tri/half] ⊆ [Δ/2, 3Δ/2]: fast at the
                    // cycle start, slow at its middle, fast again at its end.
                    t += (delta / 2 + delta * tri / half).max(1);
                }
                ticks
            }
            ArrivalProcess::Adversarial { spike } => {
                assert!(spike >= 1, "spike must be at least 1");
                (0..requests).map(|r| (r / spike) as u64 * spike as u64 * delta).collect()
            }
        }
    }
}

/// Parameters of a synthetic open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of requests.
    pub requests: usize,
    /// Base ticks between consecutive arrivals (1 = every tick; the offered-load knob). The
    /// arrival process shapes timing *around* this mean rate.
    pub interarrival_ticks: u64,
    /// Monte-Carlo sample count `S` every request asks for.
    pub samples: usize,
    /// Base seed: inputs, per-request ε seeds and any arrival randomness derive from it.
    pub seed: u64,
    /// The arrival process laying out request timing (defaults to
    /// [`ArrivalProcess::Uniform`] via [`WorkloadSpec::uniform`]).
    pub arrival: ArrivalProcess,
}

impl WorkloadSpec {
    /// The backward-compatible constructor: a uniform-cadence trace, bit-identical to the
    /// traces this type produced before arrival processes existed (request `r` arrives at
    /// `r × interarrival_ticks`). All committed serve/store baselines are pinned to it.
    pub fn uniform(
        requests: usize,
        interarrival_ticks: u64,
        samples: usize,
        seed: u64,
    ) -> WorkloadSpec {
        WorkloadSpec {
            requests,
            interarrival_ticks,
            samples,
            seed,
            arrival: ArrivalProcess::Uniform,
        }
    }

    /// Returns the spec with its arrival process replaced (builder style).
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> WorkloadSpec {
        self.arrival = arrival;
        self
    }

    /// Generates the trace for `model`: request `r` carries a pseudo-random input of the
    /// model's shape and ε seed [`mix_seed`]`(seed, r)`, timed by the arrival process.
    pub fn generate(&self, model: &ModelSpec) -> Vec<InferRequest> {
        self.generate_for_shape(model.input_shape())
    }

    /// Generates the trace for any input shape — the form checkpoint-served engines use,
    /// where the served model is a loaded posterior rather than a [`ModelSpec`]. Identical
    /// shapes yield identical traces whichever entry point produced them.
    pub fn generate_for_shape(&self, shape: &[usize]) -> Vec<InferRequest> {
        let len: usize = shape.iter().product();
        let arrivals =
            self.arrival.arrival_ticks(self.requests, self.interarrival_ticks, self.seed);
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.requests)
            .map(|r| {
                let values: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                InferRequest {
                    id: r as u64,
                    arrival_tick: arrivals[r],
                    input: Tensor::from_vec(shape.to_vec(), values)
                        .expect("shape and value count agree"),
                    samples: self.samples,
                    seed: mix_seed(self.seed, r as u64),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_open_loop() {
        let spec = ModelSpec::mlp(1);
        let workload = WorkloadSpec::uniform(9, 5, 2, 3);
        let a = workload.generate(&spec);
        let b = workload.generate(&spec);
        assert_eq!(a, b, "same spec must yield the same trace");
        for (r, request) in a.iter().enumerate() {
            assert_eq!(request.arrival_tick, r as u64 * 5);
            assert_eq!(request.input.shape(), spec.input_shape());
            assert_eq!(request.samples, 2);
        }
        // Distinct inputs and seeds per request.
        assert_ne!(a[0].input, a[1].input);
        assert_ne!(a[0].seed, a[1].seed);
    }

    #[test]
    fn different_workload_seeds_change_inputs() {
        let spec = ModelSpec::lenet(1);
        let a = WorkloadSpec::uniform(2, 1, 1, 10).generate(&spec);
        let b = WorkloadSpec::uniform(2, 1, 1, 11).generate(&spec);
        assert_ne!(a[0].input, b[0].input);
        assert_ne!(a[0].seed, b[0].seed);
    }

    #[test]
    fn every_arrival_process_is_sorted_rate_matched_and_input_invariant() {
        let spec = ModelSpec::mlp(1);
        let base = WorkloadSpec::uniform(256, 4, 1, 77);
        let uniform = base.generate(&spec);
        for arrival in [
            ArrivalProcess::Bursty { mean_burst: 8 },
            ArrivalProcess::Diurnal { cycle: 32 },
            ArrivalProcess::Adversarial { spike: 16 },
        ] {
            let trace = base.with_arrival(arrival).generate(&spec);
            assert_eq!(trace.len(), 256, "{}", arrival.label());
            for pair in trace.windows(2) {
                assert!(
                    pair[0].arrival_tick <= pair[1].arrival_tick,
                    "{}: arrivals must be non-decreasing",
                    arrival.label()
                );
            }
            // The long-run rate stays within 2x of the uniform cadence in either direction.
            let span = trace.last().unwrap().arrival_tick.max(1);
            let uniform_span = uniform.last().unwrap().arrival_tick;
            assert!(
                span >= uniform_span / 2 && span <= uniform_span * 2,
                "{}: span {span} strays too far from uniform {uniform_span}",
                arrival.label()
            );
            // Re-timing must not touch inputs or epsilon seeds.
            for (a, b) in uniform.iter().zip(&trace) {
                assert_eq!(a.input, b.input, "{}", arrival.label());
                assert_eq!(a.seed, b.seed, "{}", arrival.label());
                assert_eq!(a.samples, b.samples);
            }
        }
    }

    #[test]
    fn adversarial_spikes_are_simultaneous_and_windowed() {
        let trace = WorkloadSpec::uniform(20, 3, 1, 5)
            .with_arrival(ArrivalProcess::Adversarial { spike: 5 })
            .generate_for_shape(&[2]);
        for (r, request) in trace.iter().enumerate() {
            assert_eq!(request.arrival_tick, (r / 5) as u64 * 15);
        }
    }

    #[test]
    fn bursty_traces_coalesce_arrivals() {
        let trace = WorkloadSpec::uniform(64, 4, 1, 9)
            .with_arrival(ArrivalProcess::Bursty { mean_burst: 6 })
            .generate_for_shape(&[2]);
        let simultaneous =
            trace.windows(2).filter(|p| p[0].arrival_tick == p[1].arrival_tick).count();
        assert!(simultaneous > 10, "bursty traces must share arrival ticks ({simultaneous})");
    }

    #[test]
    fn diurnal_odd_cycles_respect_the_documented_gap_envelope() {
        // Regression: with an odd cycle the first post-peak phase used to produce
        // `tri = half + 1`, a gap of Δ/2 + Δ·(half+1)/half > 3Δ/2, and a long-run rate
        // drifting well below 1/Δ.
        for (cycle, delta) in [(3usize, 8u64), (5, 8), (7, 12), (33, 10)] {
            let trace = WorkloadSpec::uniform(16 * cycle, delta, 1, 21)
                .with_arrival(ArrivalProcess::Diurnal { cycle })
                .generate_for_shape(&[2]);
            for (label, pair) in trace.windows(2).enumerate() {
                let gap = pair[1].arrival_tick - pair[0].arrival_tick;
                assert!(
                    gap >= (delta / 2).max(1) && gap <= delta / 2 + delta,
                    "cycle {cycle}: gap {gap} at index {label} outside [Δ/2, 3Δ/2] for Δ={delta}"
                );
            }
            // Long-run rate: the mean gap of a full triangle wave is about Δ, so the span of
            // n requests stays within ±25% of the uniform n×Δ span.
            let span = trace.last().unwrap().arrival_tick;
            let uniform_span = (trace.len() as u64 - 1) * delta;
            assert!(
                4 * span >= 3 * uniform_span && 4 * span <= 5 * uniform_span,
                "cycle {cycle}: span {span} drifted from uniform {uniform_span}"
            );
        }
    }

    #[test]
    fn diurnal_even_cycle_traces_are_unchanged_by_the_odd_cycle_clamp() {
        // The committed cluster baselines pin even-cycle diurnal traces; the clamp must be a
        // no-op there. This re-derives the pre-clamp arithmetic inline and compares exactly.
        for (cycle, delta) in [(32usize, 4u64), (64, 24), (512, 24)] {
            let trace = WorkloadSpec::uniform(3 * cycle, delta, 1, 9)
                .with_arrival(ArrivalProcess::Diurnal { cycle })
                .generate_for_shape(&[2]);
            let half = (cycle / 2) as u64;
            let mut t = 0u64;
            for (r, request) in trace.iter().enumerate() {
                assert_eq!(request.arrival_tick, t, "cycle {cycle}: request {r} moved");
                let phase = (r % cycle) as u64;
                let tri = if phase < half { phase } else { cycle as u64 - phase };
                t += (delta / 2 + delta * tri / half).max(1);
            }
        }
    }

    #[test]
    fn bursty_gaps_are_centered_for_every_interarrival() {
        // Regression: the jitter used to be drawn from 0..=Δ and re-centered by ⌊Δ/2⌋,
        // biasing odd Δ (and Δ = 1, which got no re-centering at all) upward. The gap after
        // a burst of b requests must stay inside b×Δ ± ⌊Δ/2⌋ and average out to ≈ b×Δ.
        for delta in [1u64, 2, 5, 24] {
            let trace = WorkloadSpec::uniform(4096, delta, 1, 17)
                .with_arrival(ArrivalProcess::Bursty { mean_burst: 6 })
                .generate_for_shape(&[2]);
            let mut i = 0;
            let mut gaps = 0u64;
            let mut total_gap = 0u64;
            let mut burst_requests = 0u64;
            while i < trace.len() {
                let tick = trace[i].arrival_tick;
                let mut j = i;
                while j < trace.len() && trace[j].arrival_tick == tick {
                    j += 1;
                }
                let burst = (j - i) as u64;
                if j < trace.len() {
                    let gap = trace[j].arrival_tick - tick;
                    assert!(
                        gap >= (burst * delta).saturating_sub(delta / 2).max(1)
                            && gap <= burst * delta + delta / 2,
                        "Δ={delta}: gap {gap} after a burst of {burst} outside b×Δ ± ⌊Δ/2⌋"
                    );
                    gaps += 1;
                    total_gap += gap;
                    burst_requests += burst;
                }
                i = j;
            }
            assert!(gaps > 100, "Δ={delta}: trace too short to measure centering");
            // Zero-mean jitter: the average gap per burst request stays within 5% of Δ.
            let mean_x100 = 100 * total_gap / burst_requests;
            assert!(
                mean_x100 >= 95 * delta && mean_x100 <= 105 * delta,
                "Δ={delta}: mean gap per request {mean_x100}/100 is off-center"
            );
        }
    }

    #[test]
    fn bursty_even_interarrival_traces_are_unchanged_by_the_centering_fix() {
        // For even Δ the re-centered jitter range 0..=2⌊Δ/2⌋ equals the old 0..=Δ draw,
        // so the committed bursty baselines (Δ = 24 cluster, Δ = 4 serve tests) must not
        // move. This replays the pre-fix arithmetic verbatim on the same RNG stream.
        for (delta, mean_burst) in [(4u64, 6usize), (24, 6)] {
            let trace = WorkloadSpec::uniform(512, delta, 1, 9)
                .with_arrival(ArrivalProcess::Bursty { mean_burst })
                .generate_for_shape(&[2]);
            let mut rng = StdRng::seed_from_u64(mix_seed(9, ARRIVAL_STREAM));
            let mut expected = Vec::with_capacity(trace.len());
            let mut t = 0u64;
            while expected.len() < trace.len() {
                let burst = rng.gen_range(1..2 * mean_burst);
                for _ in 0..burst.min(trace.len() - expected.len()) {
                    expected.push(t);
                }
                let nominal = burst as u64 * delta;
                let jitter = rng.gen_range(0..delta.max(1) + 1);
                t += (nominal + jitter).saturating_sub(delta.max(1) / 2).max(1);
            }
            let ticks: Vec<u64> = trace.iter().map(|r| r.arrival_tick).collect();
            assert_eq!(ticks, expected, "Δ={delta}: even-Δ trace perturbed by the fix");
        }
    }

    #[test]
    fn arrival_labels_are_stable() {
        assert_eq!(ArrivalProcess::Uniform.label(), "uniform");
        assert_eq!(ArrivalProcess::Bursty { mean_burst: 8 }.label(), "bursty8");
        assert_eq!(ArrivalProcess::Diurnal { cycle: 64 }.label(), "diurnal64");
        assert_eq!(ArrivalProcess::Adversarial { spike: 32 }.label(), "adversarial32");
    }
}
