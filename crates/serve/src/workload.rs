//! Seeded synthetic open-loop request traces.
//!
//! An *open-loop* workload fixes the arrival process independently of service speed (arrivals
//! do not wait for responses), which is how production traffic behaves and what makes latency
//! percentiles meaningful — a closed loop would self-throttle exactly when the engine is
//! slowest. Arrivals land on a fixed tick cadence; inputs and per-request ε seeds derive
//! deterministically from the workload seed, so the same spec always produces the same trace.

use crate::request::{mix_seed, InferRequest};
use crate::spec::ModelSpec;
use bnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of requests.
    pub requests: usize,
    /// Ticks between consecutive arrivals (1 = every tick; the offered-load knob).
    pub interarrival_ticks: u64,
    /// Monte-Carlo sample count `S` every request asks for.
    pub samples: usize,
    /// Base seed: inputs and per-request ε seeds all derive from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generates the trace for `model`: request `r` arrives at tick `r × interarrival_ticks`
    /// with a pseudo-random input of the model's shape and ε seed [`mix_seed`]`(seed, r)`.
    pub fn generate(&self, model: &ModelSpec) -> Vec<InferRequest> {
        self.generate_for_shape(model.input_shape())
    }

    /// Generates the trace for any input shape — the form checkpoint-served engines use,
    /// where the served model is a loaded posterior rather than a [`ModelSpec`]. Identical
    /// shapes yield identical traces whichever entry point produced them.
    pub fn generate_for_shape(&self, shape: &[usize]) -> Vec<InferRequest> {
        let len: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.requests)
            .map(|r| {
                let values: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                InferRequest {
                    id: r as u64,
                    arrival_tick: r as u64 * self.interarrival_ticks,
                    input: Tensor::from_vec(shape.to_vec(), values)
                        .expect("shape and value count agree"),
                    samples: self.samples,
                    seed: mix_seed(self.seed, r as u64),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_open_loop() {
        let spec = ModelSpec::mlp(1);
        let workload = WorkloadSpec { requests: 9, interarrival_ticks: 5, samples: 2, seed: 3 };
        let a = workload.generate(&spec);
        let b = workload.generate(&spec);
        assert_eq!(a, b, "same spec must yield the same trace");
        for (r, request) in a.iter().enumerate() {
            assert_eq!(request.arrival_tick, r as u64 * 5);
            assert_eq!(request.input.shape(), spec.input_shape());
            assert_eq!(request.samples, 2);
        }
        // Distinct inputs and seeds per request.
        assert_ne!(a[0].input, a[1].input);
        assert_ne!(a[0].seed, a[1].seed);
    }

    #[test]
    fn different_workload_seeds_change_inputs() {
        let spec = ModelSpec::lenet(1);
        let a = WorkloadSpec { requests: 2, interarrival_ticks: 1, samples: 1, seed: 10 }
            .generate(&spec);
        let b = WorkloadSpec { requests: 2, interarrival_ticks: 1, samples: 1, seed: 11 }
            .generate(&spec);
        assert_ne!(a[0].input, b[0].input);
        assert_ne!(a[0].seed, b[0].seed);
    }
}
