//! Shared latency statistics.
//!
//! One nearest-rank percentile implementation serves both the single-engine
//! [`ServeRunReport`](crate::ServeRunReport) and the cluster-scale
//! [`ClusterRunReport`](crate::ClusterRunReport) — they used to carry identical private
//! copies, which is exactly how the two would eventually drift apart.

/// Nearest-rank percentile over a latency set.
///
/// `q` must lie in `0.0..=1.0` (NaN is rejected by the range check). The nearest-rank
/// definition picks element `⌈q·n⌉` (1-indexed) of the sorted set, with the rank clamped to
/// at least 1 — so **`q = 0.0` is defined to return the minimum**, `q = 1.0` the maximum,
/// and `q = 0.5` the conventional median-by-rank. This is the contract every committed
/// serve/cluster baseline was produced under.
///
/// # Panics
///
/// Panics on an empty set, or if `q` is outside `0.0..=1.0`.
pub fn latency_percentile(latencies: &[u64], q: f64) -> u64 {
    assert!((0.0..=1.0).contains(&q), "percentile q={q} outside 0.0..=1.0");
    assert!(!latencies.is_empty(), "no latencies to rank");
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_percentile_is_the_minimum_and_one_is_the_maximum() {
        let latencies = [7u64, 3, 99, 12];
        assert_eq!(latency_percentile(&latencies, 0.0), 3);
        assert_eq!(latency_percentile(&latencies, 1.0), 99);
        assert_eq!(latency_percentile(&[42], 0.0), 42);
        assert_eq!(latency_percentile(&[42], 1.0), 42);
    }

    #[test]
    fn nearest_rank_matches_the_committed_definition() {
        // 10 elements: p50 is rank ⌈5⌉ = 5th smallest, p90 rank 9, p99 rank ⌈9.9⌉ = 10.
        let latencies: Vec<u64> = (1..=10).collect();
        assert_eq!(latency_percentile(&latencies, 0.5), 5);
        assert_eq!(latency_percentile(&latencies, 0.9), 9);
        assert_eq!(latency_percentile(&latencies, 0.99), 10);
    }

    #[test]
    #[should_panic(expected = "outside 0.0..=1.0")]
    fn out_of_range_q_is_rejected() {
        latency_percentile(&[1, 2, 3], 1.5);
    }

    #[test]
    #[should_panic(expected = "outside 0.0..=1.0")]
    fn nan_q_is_rejected() {
        latency_percentile(&[1, 2, 3], f64::NAN);
    }

    #[test]
    #[should_panic(expected = "no latencies")]
    fn empty_set_is_rejected() {
        latency_percentile(&[], 0.5);
    }
}
