//! The inference engine: batched Monte-Carlo execution on the shared work-stealing pool.
//!
//! Two clocks run through an engine, deliberately kept apart:
//!
//! * the **tick clock** is simulated. Batch formation ([`crate::batcher`]), service cost and
//!   every latency statistic live here, modelled after the Shift-BNN accelerator (a batch pays
//!   a fixed dispatch/weight-load overhead of [`BATCH_OVERHEAD_TICKS`], then each request pays
//!   one tick per [`EPSILON_LANES`] ε drawn — the paper's 16 SPUs × 64 GRNG lanes). Nothing on
//!   this path reads a wall clock, so reports are bit-reproducible;
//! * the **wall clock** exists only outside the engine: `serve_bench` times whole runs to
//!   measure real software throughput, and those numbers are explicitly excluded from the
//!   committed regression baselines.
//!
//! Execution itself fans the requests out over [`shift_bnn::pool::run_indexed_with`]: each
//! worker builds one frozen-posterior replica ([`ModelSpec::build`]) and serves whatever
//! requests it steals. A response depends only on the request (input, `S`, seed) and the
//! frozen posterior — never on the worker, the batch it rode in, or the completion order — so
//! 1-worker and N-worker runs, and batch-size-1 and coalesced runs, produce byte-identical
//! responses. `tests/serve_determinism.rs` pins all three equalities.

use crate::batcher::{plan_batches, BatchPolicy};
use crate::request::{mix_seed, InferRequest, InferResponse};
use crate::spec::ModelSpec;
use bnn_tensor::Tensor;
use bnn_train::network::Predictive;
use bnn_train::{EpsilonSource, LfsrForward, Network};
use shift_bnn::pool;
use shift_bnn::sweep::json::Json;

/// Ticks a batch pays once, regardless of size: dispatch plus streaming the `(μ, σ)` weights
/// into the SPU array. Amortizing this over coalesced requests is what batching buys.
pub const BATCH_OVERHEAD_TICKS: u64 = 64;

/// ε values generated per tick: 16 Sample Processing Units × 64 GRNG lanes each.
pub const EPSILON_LANES: u64 = 1024;

/// Timing of one executed batch in the simulated tick domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchStat {
    /// Tick the batcher closed the batch at.
    pub close_tick: u64,
    /// Tick service began (the device serializes batches: `max(close, previous end)`).
    pub start_tick: u64,
    /// Tick the batch completed; every member request's response is ready here.
    pub end_tick: u64,
    /// Number of coalesced requests.
    pub size: usize,
}

/// The result of one engine run over a request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRunReport {
    /// Name of the served model family.
    pub model: String,
    /// The batching policy the run used.
    pub policy: BatchPolicy,
    /// Worker threads the responses were computed on (does not affect any value in here).
    pub workers: usize,
    /// One response per request, in request order.
    pub responses: Vec<InferResponse>,
    /// Per-request latency in ticks (batch end − arrival), in request order.
    pub latencies: Vec<u64>,
    /// Per-batch timing, in execution order.
    pub batches: Vec<BatchStat>,
    /// Tick the last batch completed at (0 for an empty trace).
    pub makespan_ticks: u64,
}

impl ServeRunReport {
    /// Nearest-rank latency percentile in ticks (`q` in `0.0..=1.0`).
    ///
    /// # Panics
    ///
    /// Panics on an empty report.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        assert!(!self.latencies.is_empty(), "no requests were served");
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Requests completed per thousand simulated ticks.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan_ticks == 0 {
            return 0.0;
        }
        self.responses.len() as f64 * 1000.0 / self.makespan_ticks as f64
    }

    /// Mean coalesced batch size.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.responses.len() as f64 / self.batches.len() as f64
    }

    /// The canonical response bytes: what the determinism contract compares across worker
    /// counts and batch policies.
    pub fn responses_json(&self) -> String {
        Json::array_of(self.responses.iter()).to_compact()
    }

    /// FNV-1a digest of [`responses_json`](Self::responses_json), as 16 hex characters — the
    /// compact fingerprint the committed serve baseline pins the numerical outputs with.
    pub fn responses_digest(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.responses_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// Serializes the full run report. Every field is tick-domain or response data — a pure
    /// function of (trace, model spec, policy) — so two runs of the same inputs serialize
    /// byte-identically whatever the worker count. An empty run serializes the latency
    /// percentiles as `null`.
    pub fn to_json(&self) -> Json {
        let percentile = |q| {
            if self.latencies.is_empty() {
                Json::Null
            } else {
                Json::UInt(self.latency_percentile(q))
            }
        };
        Json::obj([
            ("model", Json::Str(self.model.clone())),
            (
                "policy",
                Json::obj([
                    ("label", Json::Str(self.policy.label())),
                    ("max_batch", Json::UInt(self.policy.max_batch as u64)),
                    ("max_wait_ticks", Json::UInt(self.policy.max_wait_ticks)),
                ]),
            ),
            ("requests", Json::UInt(self.responses.len() as u64)),
            ("batches", Json::UInt(self.batches.len() as u64)),
            ("mean_batch_size", Json::Float(self.mean_batch_size())),
            ("makespan_ticks", Json::UInt(self.makespan_ticks)),
            ("throughput_per_kilotick", Json::Float(self.throughput_per_kilotick())),
            (
                "latency_ticks",
                Json::obj([
                    ("p50", percentile(0.50)),
                    ("p95", percentile(0.95)),
                    ("p99", percentile(0.99)),
                ]),
            ),
            ("responses", Json::array_of(self.responses.iter())),
        ])
    }
}

/// A batched Monte-Carlo inference engine over one frozen posterior.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    spec: ModelSpec,
    policy: BatchPolicy,
    workers: usize,
    epsilon_per_sample: usize,
}

impl InferenceEngine {
    /// Creates an engine serving `spec` under `policy` on `workers` pool threads.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or the policy's `max_batch` is zero.
    pub fn new(spec: ModelSpec, policy: BatchPolicy, workers: usize) -> InferenceEngine {
        assert!(workers >= 1, "an engine needs at least one worker");
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        // One throwaway replica up front: its ε-per-sample count drives the tick cost model.
        let epsilon_per_sample = spec.build().epsilon_count();
        InferenceEngine { spec, policy, workers, epsilon_per_sample }
    }

    /// The served model's spec.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The engine's batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The engine's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// ε values one Monte-Carlo sample draws (one per Bayesian weight).
    pub fn epsilon_per_sample(&self) -> usize {
        self.epsilon_per_sample
    }

    /// Simulated service cost of one request: one setup tick plus the GRNG-bound ε
    /// generation time of its `S` sampled forward passes.
    pub fn service_cost_ticks(&self, samples: usize) -> u64 {
        1 + (samples as u64 * self.epsilon_per_sample as u64).div_ceil(EPSILON_LANES)
    }

    /// Serves a request trace: plans batches, computes tick-domain timing, and executes every
    /// request's `S` sampled forward passes on the pool (one posterior replica per worker).
    ///
    /// # Panics
    ///
    /// Panics when the trace is not sorted by arrival tick, a request's input shape does not
    /// match the model, or a request asks for zero samples.
    pub fn run(&self, requests: &[InferRequest]) -> ServeRunReport {
        let plans = plan_batches(requests, self.policy);

        // Tick-domain timing: the simulated device serves batches in close order, one at a
        // time — queueing delay emerges when arrivals outpace service.
        let mut batches = Vec::with_capacity(plans.len());
        let mut latencies = vec![0u64; requests.len()];
        let mut device_free: u64 = 0;
        for plan in &plans {
            let service: u64 = BATCH_OVERHEAD_TICKS
                + plan
                    .requests
                    .iter()
                    .map(|&i| self.service_cost_ticks(requests[i].samples))
                    .sum::<u64>();
            let start_tick = plan.close_tick.max(device_free);
            let end_tick = start_tick + service;
            device_free = end_tick;
            for &i in &plan.requests {
                latencies[i] = end_tick - requests[i].arrival_tick;
            }
            batches.push(BatchStat {
                close_tick: plan.close_tick,
                start_tick,
                end_tick,
                size: plan.requests.len(),
            });
        }

        // Execution: requests fan out over the pool; worker replicas are built once each and
        // results merge by request index (completion order cannot leak into the report).
        // Materializing the owned per-request responses necessarily allocates their vectors;
        // the zero-allocation contract covers the compute path (`answer_into`) itself.
        let spec = &self.spec;
        let responses = pool::run_indexed_with(
            requests.len(),
            self.workers,
            |_worker| ServeReplica::new(spec),
            |replica, i| {
                let mut response = InferResponse {
                    id: 0,
                    samples: 0,
                    mean: Vec::new(),
                    variance: Vec::new(),
                    entropy: 0.0,
                };
                replica.answer_into(&requests[i], &mut response);
                response
            },
        );

        ServeRunReport {
            model: self.spec.name().to_string(),
            policy: self.policy,
            workers: self.workers,
            responses,
            latencies,
            batches,
            makespan_ticks: device_free,
        }
    }
}

/// One worker's serving state: a frozen-posterior network replica plus the reusable ε sources
/// and predictive buffer that let the steady-state request path run without heap allocation —
/// sources are *reseeded* per request instead of rebuilt, mirroring how the accelerator's
/// GRNGs are re-loaded rather than re-fabricated.
pub struct ServeReplica {
    network: Network,
    /// One forward-only source per Monte-Carlo sample, grown to the largest `S` seen and
    /// reseeded in place for every request.
    sources: Vec<Box<dyn EpsilonSource>>,
    predictive: Predictive,
}

impl std::fmt::Debug for ServeReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeReplica")
            .field("network", &self.network)
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl ServeReplica {
    /// Builds a replica for `spec` (deterministic in the spec, like [`ModelSpec::build`]).
    pub fn new(spec: &ModelSpec) -> ServeReplica {
        ServeReplica {
            network: spec.build(),
            sources: Vec::new(),
            predictive: Predictive {
                mean: Tensor::zeros(&[0]),
                variance: Tensor::zeros(&[0]),
                entropy: 0.0,
                samples: 0,
            },
        }
    }

    /// Computes one response into `response`, reusing its buffers: `S` forward passes with
    /// seed-regenerated ε, aggregated into mean / variance / entropy. Pure in (replica
    /// parameters, request) — bit-identical on every worker, whatever was served before.
    /// After the replica has warmed up (largest `S` seen, buffer shapes), this performs zero
    /// heap allocations per request (asserted by `crates/bench`'s allocation test).
    ///
    /// # Panics
    ///
    /// Panics if the request asks for zero samples or its input shape mismatches the model.
    pub fn answer_into(&mut self, request: &InferRequest, response: &mut InferResponse) {
        assert!(request.samples >= 1, "request {} asks for zero samples", request.id);
        while self.sources.len() < request.samples {
            self.sources.push(Box::new(
                LfsrForward::new(0).expect("Shift-BNN default GRNG construction cannot fail"),
            ));
        }
        let sources = &mut self.sources[..request.samples];
        for (s, source) in sources.iter_mut().enumerate() {
            source.reseed(mix_seed(request.seed, s as u64));
        }
        self.network
            .predictive_into(&request.input, sources, &mut self.predictive)
            .expect("request input shape matches the served model");
        response.id = request.id;
        response.samples = request.samples;
        response.mean.clear();
        response.mean.extend_from_slice(self.predictive.mean.data());
        response.variance.clear();
        response.variance.extend_from_slice(self.predictive.variance.data());
        response.entropy = self.predictive.entropy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn small_trace(spec: &ModelSpec) -> Vec<InferRequest> {
        WorkloadSpec { requests: 10, interarrival_ticks: 2, samples: 3, seed: 99 }.generate(spec)
    }

    #[test]
    fn run_produces_one_response_per_request_in_order() {
        let spec = ModelSpec::mlp(5);
        let engine = InferenceEngine::new(spec.clone(), BatchPolicy::unbatched(), 1);
        let trace = small_trace(&spec);
        let report = engine.run(&trace);
        assert_eq!(report.responses.len(), trace.len());
        for (request, response) in trace.iter().zip(&report.responses) {
            assert_eq!(request.id, response.id);
            assert_eq!(request.samples, response.samples);
            let total: f32 = response.mean.iter().sum();
            assert!((total - 1.0).abs() < 1e-5, "mean must be a distribution");
        }
    }

    #[test]
    fn tick_model_amortizes_batch_overhead() {
        let spec = ModelSpec::mlp(5);
        let trace = small_trace(&spec);
        let unbatched = InferenceEngine::new(spec.clone(), BatchPolicy::unbatched(), 1);
        let coalesced = InferenceEngine::new(
            spec.clone(),
            BatchPolicy { max_batch: 10, max_wait_ticks: 64 },
            1,
        );
        let a = unbatched.run(&trace);
        let b = coalesced.run(&trace);
        // Same total work, fewer overhead payments: the coalesced makespan must be smaller.
        assert!(b.makespan_ticks < a.makespan_ticks);
        assert!(b.throughput_per_kilotick() > a.throughput_per_kilotick());
        assert!(b.mean_batch_size() > a.mean_batch_size());
    }

    #[test]
    fn batch_timing_respects_device_serialization() {
        let spec = ModelSpec::mlp(5);
        let engine =
            InferenceEngine::new(spec.clone(), BatchPolicy { max_batch: 2, max_wait_ticks: 4 }, 1);
        let report = engine.run(&small_trace(&spec));
        for pair in report.batches.windows(2) {
            assert!(pair[1].start_tick >= pair[0].end_tick, "batches overlap on the device");
            assert!(pair[1].start_tick >= pair[1].close_tick, "service before close");
        }
        assert_eq!(report.makespan_ticks, report.batches.last().unwrap().end_tick);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let spec = ModelSpec::mlp(5);
        let engine =
            InferenceEngine::new(spec.clone(), BatchPolicy { max_batch: 4, max_wait_ticks: 8 }, 2);
        let report = engine.run(&small_trace(&spec));
        let (p50, p95, p99) = (
            report.latency_percentile(0.50),
            report.latency_percentile(0.95),
            report.latency_percentile(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 > 0, "every latency includes at least the service time");
    }

    #[test]
    fn service_cost_scales_with_samples() {
        let engine = InferenceEngine::new(ModelSpec::lenet(5), BatchPolicy::unbatched(), 1);
        assert!(engine.epsilon_per_sample() > 0);
        let one = engine.service_cost_ticks(1);
        let many = engine.service_cost_ticks(64);
        assert!(many > one);
    }

    #[test]
    fn responses_digest_tracks_response_content() {
        let spec = ModelSpec::mlp(5);
        let engine = InferenceEngine::new(spec.clone(), BatchPolicy::unbatched(), 1);
        let trace_a = small_trace(&spec);
        let a = engine.run(&trace_a);
        assert_eq!(a.responses_digest().len(), 16);
        assert_eq!(a.responses_digest(), engine.run(&trace_a).responses_digest());
        let mut trace_b = trace_a.clone();
        trace_b[0].seed ^= 1;
        assert_ne!(a.responses_digest(), engine.run(&trace_b).responses_digest());
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let engine = InferenceEngine::new(ModelSpec::mlp(5), BatchPolicy::unbatched(), 2);
        let report = engine.run(&[]);
        assert!(report.responses.is_empty());
        assert_eq!(report.makespan_ticks, 0);
        assert_eq!(report.throughput_per_kilotick(), 0.0);
        assert_eq!(report.mean_batch_size(), 0.0);
        // Serialization must not trip the percentile assert on an empty run.
        let json = report.to_json().to_compact();
        assert!(json.contains("\"p50\":null"));
    }
}
