//! The inference engine: batched Monte-Carlo execution on the shared work-stealing pool.
//!
//! Two clocks run through an engine, deliberately kept apart:
//!
//! * the **tick clock** is simulated. Batch formation ([`crate::batcher`]), service cost and
//!   every latency statistic live here, modelled after the Shift-BNN accelerator (a batch pays
//!   a fixed dispatch/weight-load overhead of [`BATCH_OVERHEAD_TICKS`], then each request pays
//!   one tick per [`EPSILON_LANES`] ε drawn — the paper's 16 SPUs × 64 GRNG lanes). Nothing on
//!   this path reads a wall clock, so reports are bit-reproducible;
//! * the **wall clock** exists only outside the engine: `serve_bench` times whole runs to
//!   measure real software throughput, and those numbers are explicitly excluded from the
//!   committed regression baselines.
//!
//! Execution itself fans the requests out over [`shift_bnn::pool::run_indexed_with`]: each
//! worker materializes one frozen-posterior replica per model version it serves
//! ([`ModelSource::build`] — seed-rebuilt or checkpoint-loaded) and answers whatever requests
//! it steals. A response depends only on the request (input, `S`, seed) and the frozen
//! posterior of the version that answered it — never on the worker, the batch it rode in, or
//! the completion order — so 1-worker and N-worker runs, and batch-size-1 and coalesced runs,
//! produce byte-identical responses. `tests/serve_determinism.rs` pins those equalities and
//! `tests/hot_swap.rs` extends them across scheduled version swaps
//! ([`InferenceEngine::run_with_swaps`]): versions change only at deterministic tick
//! boundaries, old versions drain, and no request is ever dropped.

use crate::batcher::{plan_batches, BatchPolicy};
use crate::builder::EngineSpec;
use crate::request::{mix_seed, InferRequest, InferResponse};
use crate::spec::{ModelSource, ModelSpec, ServeMode};
use bnn_obs::{Event, NullRecorder, Recorder};
use bnn_tensor::{KernelConfig, Tensor};
use bnn_train::moment::MomentNetwork;
use bnn_train::network::Predictive;
use bnn_train::{EpsilonSource, LfsrForward, Network};
use shift_bnn::pool;
use shift_bnn::sweep::json::Json;

/// Ticks a batch pays once, regardless of size: dispatch plus streaming the `(μ, σ)` weights
/// into the SPU array. Amortizing this over coalesced requests is what batching buys.
pub const BATCH_OVERHEAD_TICKS: u64 = 64;

/// ε values generated per tick: 16 Sample Processing Units × 64 GRNG lanes each.
pub const EPSILON_LANES: u64 = 1024;

/// Timing of one executed batch in the simulated tick domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchStat {
    /// Tick the batcher closed the batch at.
    pub close_tick: u64,
    /// Tick service began (the device serializes batches: `max(close, previous end)`).
    pub start_tick: u64,
    /// Tick the batch completed; every member request's response is ready here.
    pub end_tick: u64,
    /// Number of coalesced requests.
    pub size: usize,
    /// Index of the model version that answered this batch: 0 is the engine's initial
    /// source, `i ≥ 1` is the `i`-th scheduled [`VersionSwap`]. Always 0 without swaps.
    pub version: usize,
}

/// A scheduled hot-swap: from (simulated) tick `at_tick` onward, batches are answered by
/// `source` instead of whatever version was active before.
///
/// The swap is **deterministic in the tick domain**: a batch is answered by the newest
/// version whose `at_tick` is at or before the batch's *service start* tick. Batches that
/// started service earlier drain on the old version — no request is ever dropped or
/// re-answered — and every batch from the boundary onward answers with the new posterior.
/// Because batch timing is a pure function of (trace, policy), the boundary is too: the same
/// swap schedule splits the same trace at the same request on every machine and worker count.
#[derive(Debug, Clone)]
pub struct VersionSwap {
    /// First tick at which the new version may begin answering.
    pub at_tick: u64,
    /// The replacement posterior source.
    pub source: ModelSource,
}

/// A fault-injected slow window on the simulated device: a batch whose service *starts*
/// inside `[from_tick, until_tick)` takes `multiplier ×` its normal service time. The
/// multiplier is sampled once, at the start tick — a batch starting just before the window
/// ends runs slow end to end, mirroring how a thermal-throttled device finishes the work it
/// started. Windows come from [`crate::faults::FaultEvent::SlowShard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slowdown {
    /// First tick of the slow window (inclusive).
    pub from_tick: u64,
    /// End of the slow window (exclusive).
    pub until_tick: u64,
    /// Service-time multiplier (≥ 1).
    pub multiplier: u64,
}

/// The service-time multiplier in effect for a batch starting at `start_tick`: the maximum
/// over every slow window containing it, `1` outside all windows (overlapping faults don't
/// stack multiplicatively — the worst one dominates, keeping grid scenarios composable).
pub(crate) fn slow_multiplier(slowdowns: &[Slowdown], start_tick: u64) -> u64 {
    slowdowns
        .iter()
        .filter(|s| s.from_tick <= start_tick && start_tick < s.until_tick)
        .map(|s| s.multiplier)
        .max()
        .unwrap_or(1)
}

/// The result of one engine run over a request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRunReport {
    /// Name of the served model family.
    pub model: String,
    /// The batching policy the run used.
    pub policy: BatchPolicy,
    /// Worker threads the responses were computed on (does not affect any value in here).
    pub workers: usize,
    /// One response per request, in request order.
    pub responses: Vec<InferResponse>,
    /// Per-request latency in ticks (batch end − arrival), in request order.
    pub latencies: Vec<u64>,
    /// Per-batch timing, in execution order.
    pub batches: Vec<BatchStat>,
    /// Tick the last batch completed at (0 for an empty trace).
    pub makespan_ticks: u64,
}

impl ServeRunReport {
    /// Nearest-rank latency percentile in ticks (`q` in `0.0..=1.0`); see
    /// [`crate::stats::latency_percentile`] for the rank contract (`q = 0.0` → minimum).
    ///
    /// # Panics
    ///
    /// Panics on an empty report or `q` outside `0.0..=1.0`.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        assert!(!self.latencies.is_empty(), "no requests were served");
        crate::stats::latency_percentile(&self.latencies, q)
    }

    /// Requests completed per thousand simulated ticks.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan_ticks == 0 {
            return 0.0;
        }
        self.responses.len() as f64 * 1000.0 / self.makespan_ticks as f64
    }

    /// Mean coalesced batch size.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.responses.len() as f64 / self.batches.len() as f64
    }

    /// The canonical response bytes: what the determinism contract compares across worker
    /// counts and batch policies.
    pub fn responses_json(&self) -> String {
        Json::array_of(self.responses.iter()).to_compact()
    }

    /// FNV-1a digest of [`responses_json`](Self::responses_json), as 16 hex characters — the
    /// compact fingerprint the committed serve baseline pins the numerical outputs with.
    pub fn responses_digest(&self) -> String {
        shift_bnn::sweep::json::fnv1a_hex(self.responses_json().bytes())
    }

    /// Serializes the full run report. Every field is tick-domain or response data — a pure
    /// function of (trace, model spec, policy) — so two runs of the same inputs serialize
    /// byte-identically whatever the worker count. An empty run serializes the latency
    /// percentiles as `null`.
    pub fn to_json(&self) -> Json {
        let percentile = |q| {
            if self.latencies.is_empty() {
                Json::Null
            } else {
                Json::UInt(self.latency_percentile(q))
            }
        };
        Json::obj([
            ("model", Json::Str(self.model.clone())),
            (
                "policy",
                Json::obj([
                    ("label", Json::Str(self.policy.label())),
                    ("max_batch", Json::UInt(self.policy.max_batch as u64)),
                    ("max_wait_ticks", Json::UInt(self.policy.max_wait_ticks)),
                ]),
            ),
            ("requests", Json::UInt(self.responses.len() as u64)),
            ("batches", Json::UInt(self.batches.len() as u64)),
            ("mean_batch_size", Json::Float(self.mean_batch_size())),
            ("makespan_ticks", Json::UInt(self.makespan_ticks)),
            ("throughput_per_kilotick", Json::Float(self.throughput_per_kilotick())),
            (
                "latency_ticks",
                Json::obj([
                    ("p50", percentile(0.50)),
                    ("p95", percentile(0.95)),
                    ("p99", percentile(0.99)),
                ]),
            ),
            ("responses", Json::array_of(self.responses.iter())),
        ])
    }
}

/// A batched inference engine over one frozen posterior (with optional scheduled hot-swaps
/// to newer posterior versions — see [`InferenceEngine::run_with_swaps`]), serving under
/// either backend of the [`ServeMode`] axis: `S`-sample Monte-Carlo or single-pass analytic
/// moment propagation.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    source: ModelSource,
    mode: ServeMode,
    policy: BatchPolicy,
    workers: usize,
    kernel: KernelConfig,
    fused_sampling: bool,
    epsilon_per_sample: usize,
}

impl InferenceEngine {
    /// Builds an engine from a declarative [`EngineSpec`] — the single construction surface
    /// since PR 8 (the historical constructors below are thin shims over default specs).
    ///
    /// # Panics
    ///
    /// Panics when the spec's `workers` is zero or its policy's `max_batch` is zero.
    pub fn build(spec: EngineSpec) -> InferenceEngine {
        assert!(spec.workers >= 1, "an engine needs at least one worker");
        assert!(spec.policy.max_batch >= 1, "max_batch must be at least 1");
        // The source's ε-per-sample count drives the tick cost model (as the weight count in
        // moment mode — both backends stream the same weight volume).
        let epsilon_per_sample = spec.source.epsilon_count();
        InferenceEngine {
            source: spec.source,
            mode: spec.mode,
            policy: spec.policy,
            workers: spec.workers,
            kernel: spec.kernel,
            fused_sampling: spec.fused_sampling,
            epsilon_per_sample,
        }
    }

    /// Creates an engine serving the seed-rebuilt `spec` under `policy` on `workers` pool
    /// threads (the synthetic-posterior path). Deprecated shim: prefer
    /// [`InferenceEngine::build`] with an [`EngineSpec`].
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or the policy's `max_batch` is zero.
    pub fn new(spec: ModelSpec, policy: BatchPolicy, workers: usize) -> InferenceEngine {
        InferenceEngine::build(EngineSpec::new(spec).policy(policy).workers(workers))
    }

    /// Creates an engine serving any [`ModelSource`] — the checkpoint path: sources loaded
    /// from a `bnn-store` registry serve (and hot-swap) trained posteriors rather than
    /// seed-synthesized ones. Deprecated shim: prefer [`InferenceEngine::build`] with an
    /// [`EngineSpec`].
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or the policy's `max_batch` is zero.
    pub fn from_source(
        source: ModelSource,
        policy: BatchPolicy,
        workers: usize,
    ) -> InferenceEngine {
        InferenceEngine::build(EngineSpec::new(source).policy(policy).workers(workers))
    }

    /// Creates an engine serving any [`ModelSource`] under an explicit [`ServeMode`]. The
    /// mode is engine-wide: hot-swaps replace the *posterior*, never the backend.
    /// Deprecated shim: prefer [`InferenceEngine::build`] with an [`EngineSpec`].
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or the policy's `max_batch` is zero.
    pub fn from_source_with_mode(
        source: ModelSource,
        mode: ServeMode,
        policy: BatchPolicy,
        workers: usize,
    ) -> InferenceEngine {
        InferenceEngine::build(EngineSpec::new(source).mode(mode).policy(policy).workers(workers))
    }

    /// The served model's source (version 0; swaps are per-run, not engine state).
    pub fn source(&self) -> &ModelSource {
        &self.source
    }

    /// The engine's serving backend.
    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// The engine's batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The engine's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// ε values one Monte-Carlo sample draws (one per Bayesian weight).
    pub fn epsilon_per_sample(&self) -> usize {
        self.epsilon_per_sample
    }

    /// Simulated service cost of one request on the engine's initial source: one setup tick
    /// plus the GRNG-bound ε generation time of its `S` sampled forward passes (Monte-Carlo),
    /// or the two weight-wide moment passes (analytic).
    pub fn service_cost_ticks(&self, samples: usize) -> u64 {
        service_cost(self.mode, self.epsilon_per_sample, samples)
    }

    /// Serves a request trace: plans batches, computes tick-domain timing, and executes every
    /// request's `S` sampled forward passes on the pool (one posterior replica per worker).
    ///
    /// # Panics
    ///
    /// Panics when the trace is not sorted by arrival tick, a request's input shape does not
    /// match the model, or a request asks for zero samples.
    pub fn run(&self, requests: &[InferRequest]) -> ServeRunReport {
        self.run_with_swaps(requests, &[])
    }

    /// Serves a request trace with scheduled **hot-swaps**: batches that start service at or
    /// after a swap's `at_tick` are answered by the swapped-in posterior; earlier batches
    /// drain on the prior version. No request is dropped at a swap — the trace is answered
    /// end to end, and the version boundary is a deterministic function of (trace, policy,
    /// swap schedule), never of worker count or wall clock.
    ///
    /// Every worker materializes a private replica of each version it actually serves
    /// (lazily, at most once per version per worker), so responses stay byte-identical
    /// across worker counts with any swap schedule.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`InferenceEngine::run`], or when `swaps` is not
    /// sorted by `at_tick`.
    pub fn run_with_swaps(
        &self,
        requests: &[InferRequest],
        swaps: &[VersionSwap],
    ) -> ServeRunReport {
        self.run_with_slowdowns(requests, swaps, &[])
    }

    /// [`InferenceEngine::run_with_swaps`] under fault-injected [`Slowdown`] windows:
    /// batches whose service starts inside a window take `multiplier ×` their normal service
    /// time (the multiplier is decided at the start tick; overlapping windows take the max).
    /// Responses are untouched — a slow device answers late, not differently — so only batch
    /// timing, latencies and the makespan move. With empty `slowdowns` this *is*
    /// `run_with_swaps`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`InferenceEngine::run_with_swaps`].
    pub fn run_with_slowdowns(
        &self,
        requests: &[InferRequest],
        swaps: &[VersionSwap],
        slowdowns: &[Slowdown],
    ) -> ServeRunReport {
        self.run_recorded(requests, swaps, slowdowns, 0, &mut NullRecorder)
    }

    /// [`InferenceEngine::run`] with structured tracing: each batch's close, dispatch and
    /// completion are recorded as tick-stamped [`Event`]s keyed by the member requests' ids,
    /// plus one [`Event::BatchSeal`] per batch for occupancy metrics. The recorder observes
    /// the exact same timing the report carries — it never influences it — so responses,
    /// latencies and batch stats are byte-identical to an untraced run (the obs benchmark
    /// asserts this equivalence on every run).
    pub fn run_traced<R: Recorder>(
        &self,
        requests: &[InferRequest],
        swaps: &[VersionSwap],
        rec: &mut R,
    ) -> ServeRunReport {
        self.run_recorded(requests, swaps, &[], 0, rec)
    }

    /// The one serving body every `run*` entry point delegates to, generic over the
    /// [`Recorder`]. `shard` is stamped into emitted events (single-engine callers pass 0);
    /// recording happens in the sequential timing loop on the calling thread, never on pool
    /// workers, so recorded streams are identical at any worker count.
    pub(crate) fn run_recorded<R: Recorder>(
        &self,
        requests: &[InferRequest],
        swaps: &[VersionSwap],
        slowdowns: &[Slowdown],
        shard: usize,
        rec: &mut R,
    ) -> ServeRunReport {
        for pair in swaps.windows(2) {
            assert!(pair[0].at_tick <= pair[1].at_tick, "swap schedule must be sorted by at_tick");
        }
        // Version table: index 0 is the engine's own source, i ≥ 1 the (i−1)-th swap.
        let sources: Vec<&ModelSource> =
            std::iter::once(&self.source).chain(swaps.iter().map(|s| &s.source)).collect();
        let epsilon_counts: Vec<usize> = std::iter::once(self.epsilon_per_sample)
            .chain(swaps.iter().map(|s| s.source.epsilon_count()))
            .collect();

        let plans = plan_batches(requests, self.policy);

        // Tick-domain timing: the simulated device serves batches in close order, one at a
        // time — queueing delay emerges when arrivals outpace service. The active version of
        // a batch is decided at its service start tick (swap deterministically "lands"
        // between batches), and its ε volume prices the batch's service time.
        let mut batches = Vec::with_capacity(plans.len());
        let mut latencies = vec![0u64; requests.len()];
        let mut version_of = vec![0usize; requests.len()];
        let mut device_free: u64 = 0;
        for plan in &plans {
            let start_tick = plan.close_tick.max(device_free);
            let version = swaps.iter().take_while(|s| s.at_tick <= start_tick).count();
            let service: u64 = BATCH_OVERHEAD_TICKS
                + plan
                    .requests
                    .iter()
                    .map(|&i| {
                        request_service_cost(
                            self.mode,
                            epsilon_counts[version],
                            requests[i].samples,
                        )
                    })
                    .sum::<u64>();
            let end_tick = start_tick + slow_multiplier(slowdowns, start_tick) * service;
            device_free = end_tick;
            if R::ENABLED {
                rec.record(Event::BatchSeal {
                    shard,
                    close_tick: plan.close_tick,
                    members: plan.requests.len(),
                    version,
                });
            }
            for &i in &plan.requests {
                latencies[i] = end_tick - requests[i].arrival_tick;
                version_of[i] = version;
                if R::ENABLED {
                    let request = requests[i].id;
                    rec.record(Event::BatchClose { request, shard, tick: plan.close_tick });
                    rec.record(Event::Dispatch { request, shard, tick: start_tick });
                    rec.record(Event::ComputeDone { request, shard, tick: end_tick });
                }
            }
            batches.push(BatchStat {
                close_tick: plan.close_tick,
                start_tick,
                end_tick,
                size: plan.requests.len(),
                version,
            });
        }

        // Execution: requests fan out over the pool; each worker materializes one replica
        // per version it serves (built once, lazily) and results merge by request index
        // (completion order cannot leak into the report). Materializing the owned
        // per-request responses necessarily allocates their vectors; the zero-allocation
        // contract covers the compute path (`answer_into`) itself.
        let sources = &sources;
        let version_of = &version_of;
        let mode = self.mode;
        let kernel = self.kernel;
        let fused = self.fused_sampling;
        let responses = pool::run_indexed_with(
            requests.len(),
            self.workers,
            |_worker| -> Vec<Option<ServeReplica>> { (0..sources.len()).map(|_| None).collect() },
            |replicas, i| {
                let version = version_of[i];
                let replica = replicas[version].get_or_insert_with(|| {
                    ServeReplica::with_options(sources[version], mode, kernel, fused)
                });
                let mut response = InferResponse {
                    id: 0,
                    samples: 0,
                    mean: Vec::new(),
                    variance: Vec::new(),
                    entropy: 0.0,
                };
                replica.answer_into(&requests[i], &mut response);
                response
            },
        );

        ServeRunReport {
            model: self.source.name(),
            policy: self.policy,
            workers: self.workers,
            responses,
            latencies,
            batches,
            makespan_ticks: device_free,
        }
    }
}

/// Simulated per-request service cost (shared with the cluster simulator, whose shard timing
/// must mirror the engine's batch pricing exactly):
///
/// * **Monte-Carlo** — one setup tick plus the GRNG-bound ε generation time of `samples`
///   forward passes drawing `epsilon_per_sample` values each;
/// * **Moment** — one setup tick plus **two** weight-wide streaming passes (mean + variance
///   GEMM traffic over the same `epsilon_per_sample` weights), independent of the request's
///   `samples` and with no GRNG serialization at all. A moment shard therefore consumes no
///   ε budget.
pub(crate) fn service_cost(mode: ServeMode, epsilon_per_sample: usize, samples: usize) -> u64 {
    match mode {
        ServeMode::MonteCarlo => {
            1 + (samples as u64 * epsilon_per_sample as u64).div_ceil(EPSILON_LANES)
        }
        ServeMode::Moment => 1 + (2 * epsilon_per_sample as u64).div_ceil(EPSILON_LANES),
    }
}

/// [`service_cost`] with the graceful-degradation sentinel: in a Monte-Carlo engine,
/// `samples == 0` marks a request the degradation ladder downgraded to the single-pass
/// analytic backend, so it is priced (and executed — see [`ServeReplica::answer_into`]) at
/// moment cost. Every other `(mode, samples)` pair prices exactly as before.
pub(crate) fn request_service_cost(
    mode: ServeMode,
    epsilon_per_sample: usize,
    samples: usize,
) -> u64 {
    if mode == ServeMode::MonteCarlo && samples == 0 {
        service_cost(ServeMode::Moment, epsilon_per_sample, 0)
    } else {
        service_cost(mode, epsilon_per_sample, samples)
    }
}

/// One worker's serving backend state, per [`ServeMode`]: a sampled-forward network replica
/// with its reusable ε sources, or a compiled analytic moment network (which needs none).
enum ReplicaBackend {
    /// `S` sampled forward passes per request; sources are *reseeded* per request instead of
    /// rebuilt, mirroring how the accelerator's GRNGs are re-loaded rather than
    /// re-fabricated.
    MonteCarlo {
        network: Network,
        /// One forward-only source per Monte-Carlo sample, grown to the largest `S` seen and
        /// reseeded in place for every request.
        sources: Vec<Box<dyn EpsilonSource>>,
        /// The analytic twin of `network`, compiled lazily the first time a
        /// graceful-degradation request (`samples == 0`) reaches this replica. Deterministic
        /// in the posterior, so laziness cannot leak into response bytes.
        moment: Option<MomentNetwork>,
    },
    /// One analytic `(mean, variance)` pass per request; no ε, no RNG.
    Moment { network: MomentNetwork },
}

/// One worker's serving state: a frozen-posterior backend replica plus the reusable
/// predictive buffer that lets the steady-state request path run without heap allocation.
pub struct ServeReplica {
    backend: ReplicaBackend,
    predictive: Predictive,
    /// Whether Monte-Carlo requests run fused ([`Network::predictive_fused_into`]) — a pure
    /// speed switch, bit-identical either way (ignored by the moment backend).
    fused_sampling: bool,
}

impl std::fmt::Debug for ServeReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("ServeReplica");
        match &self.backend {
            ReplicaBackend::MonteCarlo { network, sources, moment } => s
                .field("mode", &"mc")
                .field("network", network)
                .field("sources", &sources.len())
                .field("moment_compiled", &moment.is_some()),
            ReplicaBackend::Moment { network } => {
                s.field("mode", &"moment").field("network", network)
            }
        }
        .finish()
    }
}

impl ServeReplica {
    /// Builds a replica from a declarative [`EngineSpec`] — the single construction surface
    /// since PR 8; the spec's policy/worker fields are engine-level and ignored here.
    pub fn build(spec: &EngineSpec) -> ServeReplica {
        ServeReplica::with_options(&spec.source, spec.mode, spec.kernel, spec.fused_sampling)
    }

    /// Builds a Monte-Carlo replica for `spec` (deterministic in the spec, like
    /// [`ModelSpec::build`]). Deprecated shim: prefer [`ServeReplica::build`] with an
    /// [`EngineSpec`].
    pub fn new(spec: &ModelSpec) -> ServeReplica {
        ServeReplica::from_source(&ModelSource::Spec(spec.clone()))
    }

    /// Builds a Monte-Carlo replica for any [`ModelSource`] — seed-rebuilt or
    /// checkpoint-materialized (deterministic in the source either way). Deprecated shim:
    /// prefer [`ServeReplica::build`] with an [`EngineSpec`].
    pub fn from_source(source: &ModelSource) -> ServeReplica {
        ServeReplica::from_source_with_mode(source, ServeMode::MonteCarlo)
    }

    /// Builds a replica for any [`ModelSource`] under an explicit [`ServeMode`]
    /// (deterministic in `(source, mode)`). Deprecated shim: prefer [`ServeReplica::build`]
    /// with an [`EngineSpec`].
    pub fn from_source_with_mode(source: &ModelSource, mode: ServeMode) -> ServeReplica {
        ServeReplica::with_options(source, mode, KernelConfig::default(), true)
    }

    /// The full-option constructor every other constructor funnels into: posterior source,
    /// backend, kernel configuration for the replica's layer stack, and the fused-sampling
    /// switch. Deterministic in `(source, mode)` alone — `kernel` (bit-exact tiers) and
    /// `fused` change speed, never bytes.
    pub(crate) fn with_options(
        source: &ModelSource,
        mode: ServeMode,
        kernel: KernelConfig,
        fused_sampling: bool,
    ) -> ServeReplica {
        let backend = match mode {
            ServeMode::MonteCarlo => {
                let mut network = source.build();
                network.set_kernel(kernel);
                ReplicaBackend::MonteCarlo { network, sources: Vec::new(), moment: None }
            }
            ServeMode::Moment => ReplicaBackend::Moment { network: source.build_moment() },
        };
        ServeReplica {
            backend,
            predictive: Predictive {
                mean: Tensor::zeros(&[0]),
                variance: Tensor::zeros(&[0]),
                entropy: 0.0,
                samples: 0,
            },
            fused_sampling,
        }
    }

    /// The replica's serving backend.
    pub fn mode(&self) -> ServeMode {
        match &self.backend {
            ReplicaBackend::MonteCarlo { .. } => ServeMode::MonteCarlo,
            ReplicaBackend::Moment { .. } => ServeMode::Moment,
        }
    }

    /// Computes one response into `response`, reusing its buffers. Monte-Carlo: `S` forward
    /// passes with seed-regenerated ε, aggregated into mean / variance / entropy. Moment:
    /// one analytic pass — the request's `samples` and ε seed are ignored and the response
    /// reports `samples = 0` to mark itself analytic. A Monte-Carlo replica given a
    /// `samples == 0` request — the graceful-degradation sentinel set by the cluster's
    /// [`DegradeLadder`](crate::faults::DegradeLadder) — answers analytically too, from a
    /// moment network compiled lazily (once per replica) off the same frozen posterior.
    /// Pure in (replica parameters, request) — bit-identical on every worker, whatever was
    /// served before. After the replica has warmed up (largest `S` seen, buffer shapes,
    /// moment compilation if exercised), this performs zero heap allocations per request
    /// (asserted by `crates/bench`'s allocation test).
    ///
    /// # Panics
    ///
    /// Panics if the request's input shape mismatches the model.
    pub fn answer_into(&mut self, request: &InferRequest, response: &mut InferResponse) {
        match &mut self.backend {
            ReplicaBackend::MonteCarlo { network, sources, moment } => {
                if request.samples == 0 {
                    let moment = moment.get_or_insert_with(|| {
                        MomentNetwork::from_network(network)
                            .expect("a servable posterior always compiles to a moment network")
                    });
                    moment
                        .predictive_into(&request.input, &mut self.predictive)
                        .expect("request input shape matches the served model");
                    finish_response(&self.predictive, request, response);
                    return;
                }
                while sources.len() < request.samples {
                    sources.push(Box::new(
                        LfsrForward::new(0)
                            .expect("Shift-BNN default GRNG construction cannot fail"),
                    ));
                }
                let sources = &mut sources[..request.samples];
                for (s, source) in sources.iter_mut().enumerate() {
                    source.reseed(mix_seed(request.seed, s as u64));
                }
                if self.fused_sampling {
                    network
                        .predictive_fused_into(&request.input, sources, &mut self.predictive)
                        .expect("request input shape matches the served model");
                } else {
                    network
                        .predictive_into(&request.input, sources, &mut self.predictive)
                        .expect("request input shape matches the served model");
                }
            }
            ReplicaBackend::Moment { network } => {
                network
                    .predictive_into(&request.input, &mut self.predictive)
                    .expect("request input shape matches the served model");
            }
        }
        finish_response(&self.predictive, request, response);
    }

    /// [`ServeReplica::answer_into`] bracketed by the hot-path profiling counters: returns
    /// what answering this request cost in per-tier GEMM calls/MACs, emitted ε values and
    /// scratch high-water `f32` slots. The counters are thread-local, so the profile is
    /// exact when the replica runs on the calling thread (the deterministic replay mode the
    /// obs benchmark commits) and the response is bit-identical to an unprofiled answer.
    pub fn answer_profiled(
        &mut self,
        request: &InferRequest,
        response: &mut InferResponse,
    ) -> bnn_obs::ProfileSnapshot {
        let before = profile_snapshot();
        bnn_tensor::profile::reset_scratch_high_water();
        self.answer_into(request, response);
        profile_snapshot().delta_since(&before)
    }
}

/// A point-in-time copy of this thread's hot-path counters in the obs presentation type.
fn profile_snapshot() -> bnn_obs::ProfileSnapshot {
    bnn_obs::ProfileSnapshot {
        gemm_calls: bnn_tensor::profile::gemm_calls(),
        gemm_macs: bnn_tensor::profile::gemm_macs(),
        epsilon_values: bnn_lfsr::profile::epsilon_values(),
        scratch_high_water: bnn_tensor::profile::scratch_high_water(),
    }
}

/// Copies a computed predictive into the response's reused buffers.
fn finish_response(predictive: &Predictive, request: &InferRequest, response: &mut InferResponse) {
    response.id = request.id;
    response.samples = predictive.samples;
    response.mean.clear();
    response.mean.extend_from_slice(predictive.mean.data());
    response.variance.clear();
    response.variance.extend_from_slice(predictive.variance.data());
    response.entropy = predictive.entropy;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn small_trace(spec: &ModelSpec) -> Vec<InferRequest> {
        WorkloadSpec::uniform(10, 2, 3, 99).generate(spec)
    }

    #[test]
    fn run_produces_one_response_per_request_in_order() {
        let spec = ModelSpec::mlp(5);
        let engine = InferenceEngine::new(spec.clone(), BatchPolicy::unbatched(), 1);
        let trace = small_trace(&spec);
        let report = engine.run(&trace);
        assert_eq!(report.responses.len(), trace.len());
        for (request, response) in trace.iter().zip(&report.responses) {
            assert_eq!(request.id, response.id);
            assert_eq!(request.samples, response.samples);
            let total: f32 = response.mean.iter().sum();
            assert!((total - 1.0).abs() < 1e-5, "mean must be a distribution");
        }
    }

    #[test]
    fn tick_model_amortizes_batch_overhead() {
        let spec = ModelSpec::mlp(5);
        let trace = small_trace(&spec);
        let unbatched = InferenceEngine::new(spec.clone(), BatchPolicy::unbatched(), 1);
        let coalesced = InferenceEngine::new(
            spec.clone(),
            BatchPolicy { max_batch: 10, max_wait_ticks: 64 },
            1,
        );
        let a = unbatched.run(&trace);
        let b = coalesced.run(&trace);
        // Same total work, fewer overhead payments: the coalesced makespan must be smaller.
        assert!(b.makespan_ticks < a.makespan_ticks);
        assert!(b.throughput_per_kilotick() > a.throughput_per_kilotick());
        assert!(b.mean_batch_size() > a.mean_batch_size());
    }

    #[test]
    fn batch_timing_respects_device_serialization() {
        let spec = ModelSpec::mlp(5);
        let engine =
            InferenceEngine::new(spec.clone(), BatchPolicy { max_batch: 2, max_wait_ticks: 4 }, 1);
        let report = engine.run(&small_trace(&spec));
        for pair in report.batches.windows(2) {
            assert!(pair[1].start_tick >= pair[0].end_tick, "batches overlap on the device");
            assert!(pair[1].start_tick >= pair[1].close_tick, "service before close");
        }
        assert_eq!(report.makespan_ticks, report.batches.last().unwrap().end_tick);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let spec = ModelSpec::mlp(5);
        let engine =
            InferenceEngine::new(spec.clone(), BatchPolicy { max_batch: 4, max_wait_ticks: 8 }, 2);
        let report = engine.run(&small_trace(&spec));
        let (p50, p95, p99) = (
            report.latency_percentile(0.50),
            report.latency_percentile(0.95),
            report.latency_percentile(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 > 0, "every latency includes at least the service time");
    }

    #[test]
    fn service_cost_scales_with_samples() {
        let engine = InferenceEngine::new(ModelSpec::lenet(5), BatchPolicy::unbatched(), 1);
        assert!(engine.epsilon_per_sample() > 0);
        let one = engine.service_cost_ticks(1);
        let many = engine.service_cost_ticks(64);
        assert!(many > one);
    }

    #[test]
    fn responses_digest_tracks_response_content() {
        let spec = ModelSpec::mlp(5);
        let engine = InferenceEngine::new(spec.clone(), BatchPolicy::unbatched(), 1);
        let trace_a = small_trace(&spec);
        let a = engine.run(&trace_a);
        assert_eq!(a.responses_digest().len(), 16);
        assert_eq!(a.responses_digest(), engine.run(&trace_a).responses_digest());
        let mut trace_b = trace_a.clone();
        trace_b[0].seed ^= 1;
        assert_ne!(a.responses_digest(), engine.run(&trace_b).responses_digest());
    }

    #[test]
    fn slow_multiplier_takes_the_max_overlapping_window() {
        let windows = [
            Slowdown { from_tick: 10, until_tick: 20, multiplier: 2 },
            Slowdown { from_tick: 15, until_tick: 30, multiplier: 5 },
        ];
        assert_eq!(slow_multiplier(&windows, 9), 1, "before every window");
        assert_eq!(slow_multiplier(&windows, 10), 2, "from_tick is inclusive");
        assert_eq!(slow_multiplier(&windows, 17), 5, "overlap takes the max");
        assert_eq!(slow_multiplier(&windows, 20), 5, "until_tick is exclusive");
        assert_eq!(slow_multiplier(&windows, 30), 1, "after every window");
    }

    #[test]
    fn slowdown_windows_stretch_timing_but_not_bytes() {
        let spec = ModelSpec::mlp(5);
        let engine =
            InferenceEngine::new(spec.clone(), BatchPolicy { max_batch: 2, max_wait_ticks: 4 }, 1);
        let trace = small_trace(&spec);
        let healthy = engine.run(&trace);
        let slow = engine.run_with_slowdowns(
            &trace,
            &[],
            &[Slowdown { from_tick: 0, until_tick: u64::MAX, multiplier: 3 }],
        );
        assert!(slow.makespan_ticks > healthy.makespan_ticks);
        for (batch, healthy_batch) in slow.batches.iter().zip(&healthy.batches) {
            assert_eq!(
                batch.end_tick - batch.start_tick,
                3 * (healthy_batch.end_tick - healthy_batch.start_tick),
                "every batch starts inside the window, so service stretches exactly 3x"
            );
        }
        assert_eq!(slow.responses_digest(), healthy.responses_digest(), "late, not different");
    }

    #[test]
    fn zero_sample_requests_answer_analytically_in_a_monte_carlo_replica() {
        let spec = ModelSpec::mlp(5);
        let source = ModelSource::Spec(spec.clone());
        let mut mc = ServeReplica::from_source(&source);
        let mut moment = ServeReplica::from_source_with_mode(&source, ServeMode::Moment);
        let mut request = small_trace(&spec).remove(0);
        request.samples = 0;
        let mut degraded = InferResponse {
            id: 0,
            samples: 9,
            mean: Vec::new(),
            variance: Vec::new(),
            entropy: 0.0,
        };
        let mut analytic = degraded.clone();
        mc.answer_into(&request, &mut degraded);
        moment.answer_into(&request, &mut analytic);
        assert_eq!(degraded, analytic, "the sentinel routes to the same analytic pass");
        assert_eq!(degraded.samples, 0, "the answer is marked analytic");
        // Degraded pricing matches the moment backend's two weight-wide passes.
        assert_eq!(
            request_service_cost(ServeMode::MonteCarlo, 5088, 0),
            service_cost(ServeMode::Moment, 5088, 0),
        );
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let engine = InferenceEngine::new(ModelSpec::mlp(5), BatchPolicy::unbatched(), 2);
        let report = engine.run(&[]);
        assert!(report.responses.is_empty());
        assert_eq!(report.makespan_ticks, 0);
        assert_eq!(report.throughput_per_kilotick(), 0.0);
        assert_eq!(report.mean_batch_size(), 0.0);
        // Serialization must not trip the percentile assert on an empty run.
        let json = report.to_json().to_compact();
        assert!(json.contains("\"p50\":null"));
    }
}
