//! **bnn-cluster** — a deterministic tick-domain cluster simulator above the single-engine
//! serving path: a router fanning [`InferRequest`]s across N replica shards, each an
//! [`InferenceEngine`] with its own pool and a bounded per-shard queue.
//!
//! This is the "millions of users" layer: it adds the three mechanisms a single engine does
//! not have —
//!
//! * **admission control and load shedding**: every shard bounds its *backlog* (requests
//!   admitted but not yet completed) at [`ClusterConfig::queue_cap`]; a request routed to a
//!   full shard is shed at its arrival tick. An optional relative deadline
//!   ([`ClusterConfig::deadline_ticks`]) sheds requests whose estimated completion already
//!   misses it at admission time, so nothing hopeless occupies queue space;
//! * **routing policies** ([`RoutingPolicy`]): deterministic round-robin, deterministic
//!   least-loaded (min backlog, lowest index on ties), and the uncertainty-aware **two-tier**
//!   policy — a cheap low-`S` first pass on the low tier whose predictive entropy above a
//!   threshold *escalates* the request to a reserved high-`S` shard. Escalation is the
//!   serving-side payoff of the paper's ε regeneration: re-sampling the same request at
//!   higher `S` needs only its 64-bit seed, nothing stored;
//! * **queue-depth-driven autoscaling** ([`AutoscalePolicy`]): at deterministic epoch ticks,
//!   shards activate when the mean backlog crosses a high watermark and drain (stop receiving,
//!   finish their queue) when it falls below a low one.
//!
//! # The determinism argument
//!
//! Everything above runs in the simulated tick domain established by PR 2–5: arrival ticks
//! come from the trace, batch formation follows [`crate::batcher::plan_batches`] semantics,
//! and per-shard service timing replays [`InferenceEngine::run_with_swaps`]'s device
//! serialization **exactly** (same `BATCH_OVERHEAD_TICKS` + ε-volume pricing, same
//! version-at-service-start swap rule). Routing, shedding, escalation and scaling decisions
//! are pure functions of (trace, config, swap schedule); responses are pure functions of
//! (request, posterior, `S`). No wall clock is read anywhere on the result path, so an
//! N-shard × M-worker cluster run serializes **byte-identically** on every machine, at every
//! worker count — and each shard's slice of the run equals a standalone single-shard run over
//! the sub-trace the router handed it (`tests/cluster_determinism.rs` pins both).
//!
//! Internally a run has two phases. Phase A (the *plan*) walks arrivals in trace order
//! through incremental per-shard simulators and makes every decision; it never touches a
//! network, so it scales to million-request traces ([`Cluster::plan`] exposes it directly).
//! Phase B hands each shard's admitted sub-trace to that shard's own [`InferenceEngine`] and
//! computes real responses on its pool; the engine's batch timing is asserted equal to the
//! plan's batch for batch, so the report's timing and its answers can never drift apart.

use crate::batcher::BatchPolicy;
use crate::builder::EngineSpec;
use crate::engine::BATCH_OVERHEAD_TICKS;
use crate::engine::{
    request_service_cost, slow_multiplier, InferenceEngine, ServeRunReport, Slowdown, VersionSwap,
};
use crate::faults::{DegradeEvent, DegradeLevel, FaultPlan, FaultTimeline, FaultTrace, RetryEvent};
use crate::request::{InferRequest, InferResponse};
use crate::spec::{ModelSource, ServeMode};
use bnn_obs::{export, Event, NullRecorder, Recorder};
use shift_bnn::sweep::json::{fnv1a_hex, Json, ToJson};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How the router picks a shard for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingPolicy {
    /// Cycle through the active shards in arrival order — the baseline that ignores load.
    RoundRobin,
    /// Route to the active shard with the smallest backlog (admitted-but-incomplete
    /// requests); ties break to the lowest shard index. Deterministic because backlog is a
    /// pure tick-domain function of prior decisions.
    LeastLoaded,
    /// Uncertainty-aware two-tier serving: the low tier (all shards but the last) answers a
    /// cheap `low_samples`-sample first pass, routed least-loaded; any answer whose
    /// predictive entropy exceeds `entropy_threshold` is *escalated* — re-submitted, at its
    /// low-pass completion tick, to the reserved high-`S` shard (the last one) for a
    /// `high_samples`-sample answer. Escalations pass the same admission control; one that
    /// is shed keeps its low-tier answer.
    TwoTier {
        /// Monte-Carlo samples of the cheap first pass (≥ 1).
        low_samples: usize,
        /// Monte-Carlo samples of the escalated pass (≥ 1).
        high_samples: usize,
        /// Predictive-entropy escalation threshold in nats.
        entropy_threshold: f64,
    },
}

impl RoutingPolicy {
    /// A short machine-readable label: `"round_robin"`, `"least_loaded"` or `"two_tier"`.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round_robin",
            RoutingPolicy::LeastLoaded => "least_loaded",
            RoutingPolicy::TwoTier { .. } => "two_tier",
        }
    }
}

/// Queue-depth-driven autoscaling, evaluated at deterministic epoch ticks
/// (`interval_ticks`, `2 × interval_ticks`, …): when the summed backlog of the active shards
/// exceeds `high_watermark` per active shard, the next inactive shard activates; when it
/// falls below `low_watermark` per active shard, the highest-numbered active shard *drains* —
/// it stops receiving new requests but completes everything already admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalePolicy {
    /// Ticks between scaling decisions (≥ 1).
    pub interval_ticks: u64,
    /// Mean backlog per active shard above which a shard activates.
    pub high_watermark: usize,
    /// Mean backlog per active shard below which a shard drains (must be < high).
    pub low_watermark: usize,
    /// Active shards never drop below this (≥ 1).
    pub min_active: usize,
}

/// Configuration of a cluster: N replica shards of one posterior source, a shared batching
/// policy and queue bound, a routing policy and optional autoscaling.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The frozen posterior every shard replicates (hot-swaps can replace it per shard).
    pub source: ModelSource,
    /// The serving backend every shard runs ([`ServeMode::MonteCarlo`] by default). A
    /// [`ServeMode::Moment`] cluster prices batches by two weight-wide passes instead of
    /// `S·ε` GRNG draws and consumes no ε budget at all.
    pub mode: ServeMode,
    /// Total replica shards. Under [`RoutingPolicy::TwoTier`] the *last* shard is reserved
    /// as the high-`S` escalation tier and the rest form the low tier.
    pub shards: usize,
    /// Pool workers each shard's engine executes on (affects wall clock only, never bytes).
    pub workers_per_shard: usize,
    /// The per-shard dynamic-batching policy.
    pub batch: BatchPolicy,
    /// Per-shard backlog bound: a request routed to a shard holding this many
    /// admitted-but-incomplete requests is shed.
    pub queue_cap: usize,
    /// Optional relative deadline: a request whose estimated completion (service start on an
    /// idle-or-busy device plus batch overhead and its own ε volume) exceeds
    /// `arrival + deadline_ticks` is shed at admission rather than queued hopelessly.
    pub deadline_ticks: Option<u64>,
    /// How the router picks shards.
    pub routing: RoutingPolicy,
    /// Optional queue-depth-driven autoscaling over the routable shards.
    pub autoscale: Option<AutoscalePolicy>,
}

impl ClusterConfig {
    /// Mirrors an [`EngineSpec`] into a cluster configuration: every shard replicates the
    /// spec's posterior source and runs the spec's backend, batching policy and worker count.
    /// Cluster-only knobs start at their neutral values — no deadline, round-robin routing,
    /// no autoscaling — and remain plain public fields for struct-update customization.
    ///
    /// ```
    /// use bnn_serve::{ClusterConfig, EngineSpec, ModelSpec, RoutingPolicy};
    ///
    /// let spec = EngineSpec::new(ModelSpec::mlp(7)).workers(2);
    /// let config = ClusterConfig {
    ///     routing: RoutingPolicy::LeastLoaded,
    ///     ..ClusterConfig::from_engine_spec(&spec, 3, 64)
    /// };
    /// assert_eq!(config.shards, 3);
    /// assert_eq!(config.workers_per_shard, 2);
    /// ```
    pub fn from_engine_spec(spec: &EngineSpec, shards: usize, queue_cap: usize) -> ClusterConfig {
        ClusterConfig {
            source: spec.source.clone(),
            mode: spec.mode,
            shards,
            workers_per_shard: spec.workers,
            batch: spec.policy,
            queue_cap,
            deadline_ticks: None,
            routing: RoutingPolicy::RoundRobin,
            autoscale: None,
        }
    }
}

/// A scheduled hot-swap on one shard of the cluster (the cluster form of [`VersionSwap`]).
#[derive(Debug, Clone)]
pub struct ShardSwap {
    /// Which shard swaps.
    pub shard: usize,
    /// The swap itself (tick + replacement source).
    pub swap: VersionSwap,
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The routed shard's backlog was at `queue_cap`.
    QueueFull,
    /// The admission-time completion estimate already missed the request's deadline.
    Deadline,
    /// The request was evicted by a [`crate::faults::FaultEvent::ShardDown`] crash (possibly
    /// more than once) and its [`crate::faults::RetryPolicy`] budget ran out. The event's
    /// shard is the one whose crash spent the final attempt.
    RetryBudgetExhausted,
    /// Every routable shard was down when the request (or its final retry) submitted. The
    /// event's shard is recorded as `0` by convention — there was no shard to cite.
    ShardUnavailable,
    /// The degradation ladder's top rung ([`crate::faults::DegradeLevel::Shed`]) was active
    /// at submission: cluster-wide backlog pressure left no capacity at any quality level.
    Overload,
}

impl ShedReason {
    /// A short machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Deadline => "deadline",
            ShedReason::RetryBudgetExhausted => "retry_budget_exhausted",
            ShedReason::ShardUnavailable => "shard_unavailable",
            ShedReason::Overload => "overload",
        }
    }
}

/// One load-shedding decision: which request, the exact tick, where and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedEvent {
    /// The shed request's id.
    pub request: u64,
    /// The tick the decision was made at (the request's arrival tick).
    pub tick: u64,
    /// The shard the router had chosen.
    pub shard: usize,
    /// Why it was shed.
    pub reason: ShedReason,
}

impl ShedEvent {
    /// The event in the observability vocabulary — what the recorder stream carries and the
    /// report's serialization goes through.
    pub fn to_event(&self) -> Event {
        Event::Shed {
            request: self.request,
            tick: self.tick,
            shard: self.shard,
            reason: self.reason.label(),
        }
    }
}

/// One escalation decision of the two-tier policy: which request, the exact tick (its
/// low-pass completion), and whether the high shard admitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationEvent {
    /// The escalated request's id.
    pub request: u64,
    /// The tick the low-tier answer (and its entropy) became available.
    pub tick: u64,
    /// Whether the high shard admitted the escalation (a shed escalation keeps the
    /// low-tier answer).
    pub admitted: bool,
}

impl EscalationEvent {
    /// The event in the observability vocabulary.
    pub fn to_event(&self) -> Event {
        Event::Escalation { request: self.request, tick: self.tick, admitted: self.admitted }
    }
}

/// One autoscaling decision: the epoch tick and the resulting active-shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// The deterministic epoch tick the decision fired at.
    pub tick: u64,
    /// Active shards after the decision.
    pub active: usize,
}

impl ScaleEvent {
    /// The event in the observability vocabulary.
    pub fn to_event(&self) -> Event {
        Event::Scale { tick: self.tick, active: self.active }
    }
}

/// What happened to one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Shed at admission — never answered.
    Shed {
        /// The tick the decision was made at.
        tick: u64,
        /// The shard the router had chosen.
        shard: usize,
        /// Why it was shed.
        reason: ShedReason,
    },
    /// Answered (possibly after an escalation to the high tier).
    Answered {
        /// The shard whose answer the response carries (the high shard for upgrades).
        shard: usize,
        /// The tick the carried answer completed at.
        end_tick: u64,
        /// Whether the two-tier policy escalated this request.
        escalated: bool,
        /// Whether the escalation was admitted and the high-`S` answer is the one carried.
        upgraded: bool,
    },
}

pub use crate::stats::latency_percentile;

// ---------------------------------------------------------------------------------------------
// Phase A: the incremental per-shard simulator
// ---------------------------------------------------------------------------------------------

/// One planned batch of a shard simulator (global request indices).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SimBatch {
    close_tick: u64,
    start_tick: u64,
    end_tick: u64,
    members: Vec<usize>,
    version: usize,
}

/// An incremental replay of one shard's batcher + device timing, mirroring
/// [`crate::batcher::plan_batches`] and [`InferenceEngine::run_with_swaps`] decision for
/// decision so phase B's engine reproduces its batches exactly.
struct ShardSim {
    policy: BatchPolicy,
    /// ε per sample of version 0, then of each scheduled swap, in order.
    epsilon_counts: Vec<usize>,
    /// The serving backend pricing this shard's batches (engine-wide, swap-invariant).
    mode: ServeMode,
    /// Swap activation ticks (parallel to `epsilon_counts[1..]`).
    swap_ticks: Vec<u64>,
    /// Fault-injected slow windows on this shard's device (empty outside fault plans).
    slowdowns: Vec<Slowdown>,
    open: Vec<(usize, usize)>, // (global request index, effective sample count)
    open_deadline: u64,
    device_free: u64,
    batches: Vec<SimBatch>,
    /// Closed-but-incomplete batches as (end_tick, size), popped as queried time passes.
    in_flight: VecDeque<(u64, usize)>,
    in_flight_requests: usize,
}

impl ShardSim {
    fn new(
        policy: BatchPolicy,
        mode: ServeMode,
        base_epsilon: usize,
        swaps: &[VersionSwap],
        slowdowns: &[Slowdown],
    ) -> ShardSim {
        let mut epsilon_counts = vec![base_epsilon];
        epsilon_counts.extend(swaps.iter().map(|s| s.source.epsilon_count()));
        ShardSim {
            policy,
            epsilon_counts,
            mode,
            swap_ticks: swaps.iter().map(|s| s.at_tick).collect(),
            slowdowns: slowdowns.to_vec(),
            open: Vec::new(),
            open_deadline: 0,
            device_free: 0,
            batches: Vec::new(),
            in_flight: VecDeque::new(),
            in_flight_requests: 0,
        }
    }

    /// Closes the open batch at `close_tick`, replaying the engine's device serialization:
    /// service starts at `max(close, device_free)`, the active version is decided at that
    /// start tick, and the batch pays overhead plus its members' ε volume.
    fn close_open(&mut self, close_tick: u64) {
        let start_tick = close_tick.max(self.device_free);
        let version = self.swap_ticks.iter().take_while(|&&at| at <= start_tick).count();
        let service: u64 = BATCH_OVERHEAD_TICKS
            + self
                .open
                .iter()
                .map(|&(_, samples)| {
                    request_service_cost(self.mode, self.epsilon_counts[version], samples)
                })
                .sum::<u64>();
        let end_tick = start_tick + slow_multiplier(&self.slowdowns, start_tick) * service;
        self.device_free = end_tick;
        let members: Vec<usize> = self.open.drain(..).map(|(i, _)| i).collect();
        self.in_flight.push_back((end_tick, members.len()));
        self.in_flight_requests += members.len();
        self.batches.push(SimBatch { close_tick, start_tick, end_tick, members, version });
    }

    /// Advances simulated time to `t`: a batch whose wait deadline has passed closes at that
    /// deadline, exactly when `plan_batches` would close it on the next arrival.
    fn advance_to(&mut self, t: u64) {
        if !self.open.is_empty() && t > self.open_deadline {
            let deadline = self.open_deadline;
            self.close_open(deadline);
        }
    }

    /// Backlog at tick `t`: requests admitted but not yet completed (waiting in the open
    /// batch, queued behind the device, or in service). Callers must query with
    /// non-decreasing `t`.
    fn backlog(&mut self, t: u64) -> usize {
        self.advance_to(t);
        while let Some(&(end, size)) = self.in_flight.front() {
            if end > t {
                break;
            }
            self.in_flight_requests -= size;
            self.in_flight.pop_front();
        }
        self.open.len() + self.in_flight_requests
    }

    /// Admission-time completion estimate for a request of `samples` arriving at `t`: the
    /// device drains its current queue, then one fresh batch (overhead + this request's ε
    /// volume) runs. Ignores co-members the open batch would contribute, so it is a lower
    /// bound used only to shed requests that *cannot* make their deadline.
    fn estimate_end(&self, t: u64, samples: usize) -> u64 {
        let start = t.max(self.device_free);
        let version = self.swap_ticks.iter().take_while(|&&at| at <= start).count();
        start
            + slow_multiplier(&self.slowdowns, start)
                * (BATCH_OVERHEAD_TICKS
                    + request_service_cost(self.mode, self.epsilon_counts[version], samples))
    }

    /// Joins the open batch at `t`, mirroring `plan_batches`: an empty batch opens with a
    /// fresh wait deadline; a full batch closes immediately at the joining arrival.
    fn admit(&mut self, index: usize, samples: usize, t: u64) {
        self.advance_to(t);
        if self.open.is_empty() {
            self.open_deadline = t + self.policy.max_wait_ticks;
        }
        self.open.push((index, samples));
        if self.open.len() == self.policy.max_batch {
            self.close_open(t);
        }
    }

    /// Evicts the open (not yet dispatched) batch at crash tick `t` — the fail-stop boundary
    /// of [`crate::faults::FaultEvent::ShardDown`]: a batch whose wait deadline already
    /// passed closed (committed to the device) *before* the crash and completes normally;
    /// whatever is still open at `t` never dispatches and is returned for failover. The
    /// evicted members are, by construction, the exact tail of this shard's admission order.
    fn evict_open(&mut self, t: u64) -> Vec<(usize, usize)> {
        self.advance_to(t);
        std::mem::take(&mut self.open)
    }

    /// Closes the trailing batch at its deadline (the open-loop "no end-of-input oracle"
    /// rule `plan_batches` ends with).
    fn finish(&mut self) {
        if !self.open.is_empty() {
            let deadline = self.open_deadline;
            self.close_open(deadline);
        }
    }
}

// ---------------------------------------------------------------------------------------------
// Phase A output: the plan
// ---------------------------------------------------------------------------------------------

/// The routing/admission/timing plan of a cluster run — everything except the answers.
///
/// Produced by [`Cluster::plan`] without materializing a single network replica, so it scales
/// to arbitrarily long traces; [`Cluster::run`] executes the same plan and fills in real
/// responses.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    /// Per submitted request, in trace order.
    pub outcomes: Vec<RequestOutcome>,
    /// Every shed decision, in decision order.
    pub sheds: Vec<ShedEvent>,
    /// Every autoscaling decision, in epoch order.
    pub scale_events: Vec<ScaleEvent>,
    /// Answered-request latencies (completion − arrival), in trace order of the answered.
    pub latencies: Vec<u64>,
    /// Tick the last batch on any shard completes at (0 for an empty plan).
    pub makespan_ticks: u64,
    /// Batches planned per shard.
    pub batches_per_shard: Vec<usize>,
    /// Everything the fault plan caused: retries, ladder transitions, checkpoint fallbacks
    /// and per-request serving levels (empty under [`FaultPlan::none`]).
    pub faults: FaultTrace,
}

impl ClusterPlan {
    /// Nearest-rank latency percentile over the answered requests.
    ///
    /// # Panics
    ///
    /// Panics when nothing was answered.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        latency_percentile(&self.latencies, q)
    }

    /// Shed requests over submitted requests (0 for an empty trace).
    pub fn shed_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.sheds.len() as f64 / self.outcomes.len() as f64
    }

    /// Answered requests over submitted requests (1 for an empty trace).
    pub fn availability(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        (self.outcomes.len() - self.sheds.len()) as f64 / self.outcomes.len() as f64
    }
}

/// Phase-A working state shared by `plan` and `run`.
struct Routing {
    sims: Vec<ShardSim>,
    /// Admitted global request indices per shard, in admission order (non-decreasing ticks).
    routed: Vec<Vec<usize>>,
    /// Effective per-request sample count (two-tier low passes and the degradation ladder
    /// override the request's own; `0` is the analytic-moment sentinel).
    effective_samples: Vec<usize>,
    /// The tick each request was (finally) admitted at — its arrival tick unless a crash
    /// evicted it into the retry path, in which case the last retry's submission tick.
    admitted_ticks: Vec<u64>,
    outcomes: Vec<Option<RequestOutcome>>,
    sheds: Vec<ShedEvent>,
    scale_events: Vec<ScaleEvent>,
    retries: Vec<RetryEvent>,
    degrades: Vec<DegradeEvent>,
    levels: Vec<DegradeLevel>,
}

// ---------------------------------------------------------------------------------------------
// The cluster
// ---------------------------------------------------------------------------------------------

/// A deterministic tick-domain cluster: router + N bounded-queue replica shards.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
}

impl Cluster {
    /// Creates a cluster after validating the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard/worker/queue/batch bound, a two-tier cluster with fewer than
    /// two shards or zero sample counts, or an autoscale policy with inverted watermarks, a
    /// zero interval, or `min_active` outside `1..=routable shards`.
    pub fn new(config: ClusterConfig) -> Cluster {
        assert!(config.shards >= 1, "a cluster needs at least one shard");
        assert!(config.workers_per_shard >= 1, "each shard needs at least one worker");
        assert!(config.queue_cap >= 1, "queue_cap must be at least 1");
        assert!(config.batch.max_batch >= 1, "max_batch must be at least 1");
        if let RoutingPolicy::TwoTier { low_samples, high_samples, .. } = config.routing {
            assert!(config.shards >= 2, "two-tier routing reserves the last shard as high tier");
            assert!(low_samples >= 1 && high_samples >= 1, "sample counts must be at least 1");
            assert!(
                config.mode == ServeMode::MonteCarlo,
                "two-tier routing escalates by sample count, which the analytic moment \
                 backend has no use for — serve a moment cluster with a single tier"
            );
        }
        if let Some(scale) = config.autoscale {
            assert!(scale.interval_ticks >= 1, "autoscale interval must be at least 1 tick");
            assert!(scale.low_watermark < scale.high_watermark, "watermarks must be ordered");
            let routable = Cluster::routable(&config);
            assert!(
                scale.min_active >= 1 && scale.min_active <= routable,
                "min_active must be in 1..={routable}"
            );
        }
        Cluster { config }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Shards the router may target (all of them, minus the reserved high tier).
    fn routable(config: &ClusterConfig) -> usize {
        match config.routing {
            RoutingPolicy::TwoTier { .. } => config.shards - 1,
            _ => config.shards,
        }
    }

    /// Groups a swap schedule by shard and validates it.
    fn swaps_by_shard(&self, swaps: &[ShardSwap]) -> Vec<Vec<VersionSwap>> {
        let mut grouped: Vec<Vec<VersionSwap>> = vec![Vec::new(); self.config.shards];
        for swap in swaps {
            assert!(swap.shard < self.config.shards, "swap targets shard {}", swap.shard);
            grouped[swap.shard].push(swap.swap.clone());
        }
        for shard in &grouped {
            for pair in shard.windows(2) {
                assert!(
                    pair[0].at_tick <= pair[1].at_tick,
                    "per-shard swap schedules must be sorted by at_tick"
                );
            }
        }
        grouped
    }

    /// Phase A: a merged tick-ordered event loop over arrivals, failover retries, fault
    /// transitions and autoscale epochs, making every scaling, routing, degradation and
    /// admission decision against the incremental shard simulators.
    ///
    /// Event ordering, the whole determinism argument in four rules:
    ///
    /// 1. *submissions* (fresh arrivals merged with the retry heap) are processed in
    ///    non-decreasing tick order; a retry tying with an arrival goes first (it is the
    ///    older request), retries tying with each other go in schedule order;
    /// 2. *control events* at or before the next submission's tick fire before it, in tick
    ///    order — fault transitions before autoscale epochs on ties;
    /// 3. after the last submission, remaining fault transitions still fire (a trailing
    ///    crash can evict an open batch, whose retries then re-enter rule 1), but no further
    ///    autoscale epochs do — matching the fault-free router, which never scales after the
    ///    last arrival;
    /// 4. nothing reads anything but (trace, config, swaps, fault plan) — no clock, no
    ///    iteration order of any unordered container.
    ///
    /// Under [`FaultPlan::none`] the loop degenerates to exactly the pre-fault router:
    /// arrivals in trace order, epochs before each, no retries, every level `Normal`.
    ///
    /// The recorder observes every decision the loop makes — admissions (with the queue
    /// depth the admission control compared), sheds, retries, ladder transitions, scale
    /// epochs — at the exact ticks the typed event lists carry. It is written to, never
    /// read, so routing is byte-identical with any recorder.
    fn route<R: Recorder>(
        &self,
        trace: &[InferRequest],
        swaps: &[Vec<VersionSwap>],
        faults: &FaultPlan,
        timeline: &FaultTimeline,
        rec: &mut R,
    ) -> Routing {
        let routable = Cluster::routable(&self.config);
        let base_epsilon = self.config.source.epsilon_count();
        let mut sims: Vec<ShardSim> = (0..self.config.shards)
            .map(|s| {
                ShardSim::new(
                    self.config.batch,
                    self.config.mode,
                    base_epsilon,
                    &swaps[s],
                    &timeline.slowdowns[s],
                )
            })
            .collect();
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); self.config.shards];
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
        let mut sheds = Vec::new();
        let mut scale_events = Vec::new();
        let mut effective_samples = vec![0usize; trace.len()];
        let mut admitted_ticks = vec![0u64; trace.len()];
        let mut levels = vec![DegradeLevel::Normal; trace.len()];
        let mut retries: Vec<RetryEvent> = Vec::new();
        let mut degrades: Vec<DegradeEvent> = Vec::new();

        let mut active = match self.config.autoscale {
            Some(scale) => scale.min_active,
            None => routable,
        };
        let mut next_epoch = self.config.autoscale.map(|s| s.interval_ticks);
        let mut rr_cursor = 0usize;
        let mut previous_arrival = 0u64;

        // Liveness per routable shard, flipped by the fault timeline's transitions.
        let mut up = vec![true; routable];
        let mut tr_idx = 0usize;
        // Retry heap: Reverse<(retry tick, schedule sequence, trace index)> pops the
        // earliest retry, in schedule order on ties.
        let mut retry_heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut retry_seq = 0u64;
        let mut attempts = vec![0u32; trace.len()];
        let mut current_level = DegradeLevel::Normal;
        let mut arrival_idx = 0usize;

        loop {
            // Rule 1: the next submission is the earliest of the retry heap and the arrival
            // cursor; the retry wins ties.
            let next_retry = retry_heap.peek().map(|&Reverse(key)| key);
            let next_arrival = (arrival_idx < trace.len()).then(|| trace[arrival_idx].arrival_tick);
            let next_sub_tick = match (next_retry, next_arrival) {
                (Some((rt, _, _)), Some(at)) => Some(rt.min(at)),
                (Some((rt, _, _)), None) => Some(rt),
                (None, Some(at)) => Some(at),
                (None, None) => None,
            };

            // Rules 2 and 3: fire one due control event and re-evaluate (a transition can
            // schedule a retry earlier than the submission we were advancing toward).
            let next_tr = timeline.transitions.get(tr_idx).copied();
            let tr_due = next_tr.is_some_and(|(tt, _, _)| next_sub_tick.is_none_or(|st| tt <= st));
            let ep_due = match (next_epoch, next_sub_tick) {
                (Some(e), Some(st)) => e <= st,
                _ => false,
            };
            if tr_due && (!ep_due || next_tr.is_some_and(|(tt, _, _)| tt <= next_epoch.unwrap())) {
                let (tick, shard, down) = next_tr.expect("tr_due implies a transition");
                tr_idx += 1;
                if !down {
                    up[shard] = true;
                } else if up[shard] {
                    up[shard] = false;
                    // Fail-stop at the dispatch boundary: committed batches complete, the
                    // open batch's members fail over. They are the exact tail of this
                    // shard's admission order, so un-routing them is a truncation.
                    let evicted = sims[shard].evict_open(tick);
                    if !evicted.is_empty() {
                        let keep = routed[shard].len() - evicted.len();
                        debug_assert!(
                            routed[shard][keep..].iter().zip(&evicted).all(|(&r, &(e, _))| r == e),
                            "the open batch must be the tail of the shard's admission order"
                        );
                        routed[shard].truncate(keep);
                        for &(i, _) in &evicted {
                            attempts[i] += 1;
                            let attempt = attempts[i];
                            if attempt <= faults.retry.max_retries {
                                let retry_tick = tick + faults.retry.backoff_ticks(attempt);
                                retry_heap.push(Reverse((retry_tick, retry_seq, i)));
                                retry_seq += 1;
                                let event = RetryEvent {
                                    request: trace[i].id,
                                    failed_tick: tick,
                                    retry_tick,
                                    shard: Some(shard),
                                    attempt,
                                };
                                if R::ENABLED {
                                    rec.record(event.to_event());
                                }
                                retries.push(event);
                            } else {
                                let reason = ShedReason::RetryBudgetExhausted;
                                let event = ShedEvent { request: trace[i].id, tick, shard, reason };
                                if R::ENABLED {
                                    rec.record(event.to_event());
                                }
                                sheds.push(event);
                                outcomes[i] = Some(RequestOutcome::Shed { tick, shard, reason });
                            }
                        }
                    }
                }
                continue;
            }
            if ep_due {
                let scale = self.config.autoscale.expect("ep_due implies autoscaling");
                let epoch = next_epoch.expect("ep_due implies an epoch");
                let backlog: usize = sims[..active].iter_mut().map(|sim| sim.backlog(epoch)).sum();
                if backlog > scale.high_watermark * active && active < routable {
                    active += 1;
                    if R::ENABLED {
                        rec.record(Event::Scale { tick: epoch, active });
                    }
                    scale_events.push(ScaleEvent { tick: epoch, active });
                } else if backlog < scale.low_watermark * active && active > scale.min_active {
                    active -= 1;
                    if R::ENABLED {
                        rec.record(Event::Scale { tick: epoch, active });
                    }
                    scale_events.push(ScaleEvent { tick: epoch, active });
                }
                next_epoch = Some(epoch + scale.interval_ticks);
                continue;
            }

            // No controls due: process the submission itself (or finish).
            if next_sub_tick.is_none() {
                break;
            }
            let (t, i) = match (next_retry, next_arrival) {
                (Some((rt, _, ri)), at) if at.is_none_or(|at| rt <= at) => {
                    retry_heap.pop();
                    (rt, ri)
                }
                _ => {
                    let i = arrival_idx;
                    arrival_idx += 1;
                    let t = trace[i].arrival_tick;
                    assert!(
                        t >= previous_arrival,
                        "request trace must be sorted by arrival_tick (index {i})"
                    );
                    previous_arrival = t;
                    (t, i)
                }
            };
            let request = &trace[i];

            // Failover's last resort: with every routable-and-active shard down, the
            // submission re-enters the retry path, and sheds `ShardUnavailable` (shard 0 by
            // convention — there is no shard to cite) once its budget is spent.
            let live = (0..active).filter(|&s| up[s]).count();
            if live == 0 {
                attempts[i] += 1;
                let attempt = attempts[i];
                if attempt <= faults.retry.max_retries {
                    let retry_tick = t + faults.retry.backoff_ticks(attempt);
                    retry_heap.push(Reverse((retry_tick, retry_seq, i)));
                    retry_seq += 1;
                    let event = RetryEvent {
                        request: request.id,
                        failed_tick: t,
                        retry_tick,
                        shard: None,
                        attempt,
                    };
                    if R::ENABLED {
                        rec.record(event.to_event());
                    }
                    retries.push(event);
                } else {
                    let reason = ShedReason::ShardUnavailable;
                    let event = ShedEvent { request: request.id, tick: t, shard: 0, reason };
                    if R::ENABLED {
                        rec.record(event.to_event());
                    }
                    sheds.push(event);
                    outcomes[i] = Some(RequestOutcome::Shed { tick: t, shard: 0, reason });
                }
                continue;
            }

            // The degradation ladder reads cluster-wide pressure over the live shards at
            // every submission; a level change is a tick-stamped event.
            let level = match faults.ladder {
                Some(ladder) => {
                    let pressure: usize =
                        (0..active).filter(|&s| up[s]).map(|s| sims[s].backlog(t)).sum();
                    let level = ladder.level_for(pressure, live);
                    if level != current_level {
                        let event = DegradeEvent {
                            tick: t,
                            from: current_level,
                            to: level,
                            backlog: pressure,
                        };
                        if R::ENABLED {
                            rec.record(event.to_event());
                        }
                        degrades.push(event);
                        current_level = level;
                    }
                    level
                }
                None => DegradeLevel::Normal,
            };
            levels[i] = level;

            let samples = match self.config.routing {
                RoutingPolicy::TwoTier { low_samples, .. } => low_samples,
                _ => match level {
                    DegradeLevel::Normal | DegradeLevel::Shed => request.samples,
                    DegradeLevel::ReducedSamples => request
                        .samples
                        .min(faults.ladder.expect("level implies ladder").reduced_samples),
                    // 0 is the analytic sentinel: priced and answered as one moment pass.
                    DegradeLevel::Moment => 0,
                },
            };
            let shard = match self.config.routing {
                RoutingPolicy::RoundRobin => {
                    let position = rr_cursor % live;
                    rr_cursor += 1;
                    (0..active)
                        .filter(|&s| up[s])
                        .nth(position)
                        .expect("position is within the live count")
                }
                RoutingPolicy::LeastLoaded | RoutingPolicy::TwoTier { .. } => (0..active)
                    .filter(|&s| up[s])
                    .min_by_key(|&s| (sims[s].backlog(t), s))
                    .expect("at least one live shard"),
            };

            if level == DegradeLevel::Shed {
                let reason = ShedReason::Overload;
                let event = ShedEvent { request: request.id, tick: t, shard, reason };
                if R::ENABLED {
                    rec.record(event.to_event());
                }
                sheds.push(event);
                outcomes[i] = Some(RequestOutcome::Shed { tick: t, shard, reason });
                continue;
            }
            // The backlog at the admission decision doubles as the recorded queue depth.
            let depth = sims[shard].backlog(t);
            if depth >= self.config.queue_cap {
                let reason = ShedReason::QueueFull;
                let event = ShedEvent { request: request.id, tick: t, shard, reason };
                if R::ENABLED {
                    rec.record(event.to_event());
                }
                sheds.push(event);
                outcomes[i] = Some(RequestOutcome::Shed { tick: t, shard, reason });
                continue;
            }
            if let Some(deadline) = self.config.deadline_ticks {
                if sims[shard].estimate_end(t, samples) > t + deadline {
                    let reason = ShedReason::Deadline;
                    let event = ShedEvent { request: request.id, tick: t, shard, reason };
                    if R::ENABLED {
                        rec.record(event.to_event());
                    }
                    sheds.push(event);
                    outcomes[i] = Some(RequestOutcome::Shed { tick: t, shard, reason });
                    continue;
                }
            }
            if R::ENABLED {
                rec.record(Event::Admit {
                    request: request.id,
                    tick: t,
                    shard,
                    queue_depth: depth,
                });
            }
            sims[shard].admit(i, samples, t);
            routed[shard].push(i);
            effective_samples[i] = samples;
            admitted_ticks[i] = t;
        }
        for sim in &mut sims {
            sim.finish();
        }
        Routing {
            sims,
            routed,
            effective_samples,
            admitted_ticks,
            outcomes,
            sheds,
            scale_events,
            retries,
            degrades,
            levels,
        }
    }

    /// Plans a swap-free run without computing any responses: routing, admission, shedding,
    /// scaling and complete tick timing. Usable with arbitrarily long traces (nothing
    /// per-request but bookkeeping), which is what the large-trace stress benchmarks drive.
    /// For a run with scheduled hot-swaps, use [`Cluster::plan_with_swaps`].
    ///
    /// # Panics
    ///
    /// Panics under [`RoutingPolicy::TwoTier`] — escalation decisions need real predictive
    /// entropy, so the two-tier policy only supports [`Cluster::run`].
    pub fn plan(&self, trace: &[InferRequest]) -> ClusterPlan {
        self.plan_with_swaps(trace, &[])
    }

    /// [`Cluster::plan`] under a scheduled per-shard hot-swap schedule: batch timing prices
    /// each batch at the version active at its service start, exactly as
    /// [`Cluster::run_with_swaps`] executes it, so a swapped run's timing can be pre-planned
    /// and cross-checked the same way a swap-free run's can.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Cluster::plan`], or when a swap targets a shard
    /// out of range or a per-shard schedule is not sorted by `at_tick`.
    pub fn plan_with_swaps(&self, trace: &[InferRequest], swaps: &[ShardSwap]) -> ClusterPlan {
        self.plan_with_faults(trace, swaps, &FaultPlan::none())
    }

    /// [`Cluster::plan_with_swaps`] under a [`FaultPlan`]: crashes, recoveries, slow windows
    /// and checkpoint corruptions fire at their exact ticks, failover retries and the
    /// degradation ladder react, and the plan's `faults` trace records every one of them.
    /// Still plan-only — no replica is ever materialized — so the chaos grid can sweep fault
    /// schedules over arbitrarily long traces. Under [`FaultPlan::none`] this *is*
    /// `plan_with_swaps`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Cluster::plan_with_swaps`], or when the fault
    /// plan fails validation ([`FaultPlan`] events unsorted, shard out of range, ladder
    /// watermarks inverted, or a ladder on a non-Monte-Carlo cluster).
    pub fn plan_with_faults(
        &self,
        trace: &[InferRequest],
        swaps: &[ShardSwap],
        faults: &FaultPlan,
    ) -> ClusterPlan {
        assert!(
            !matches!(self.config.routing, RoutingPolicy::TwoTier { .. }),
            "two-tier escalation needs real entropies; use Cluster::run"
        );
        let timeline = FaultTimeline::build(
            faults,
            Cluster::routable(&self.config),
            self.config.shards,
            self.config.mode,
        );
        let mut grouped = self.swaps_by_shard(swaps);
        let checkpoint_faults = timeline.cancel_corrupted_swaps(&mut grouped);
        let routing = self.route(trace, &grouped, faults, &timeline, &mut NullRecorder);
        let mut outcomes = routing.outcomes;
        let mut end_ticks = vec![0u64; trace.len()];
        let mut makespan = 0u64;
        for sim in &routing.sims {
            for batch in &sim.batches {
                makespan = makespan.max(batch.end_tick);
                for &i in &batch.members {
                    end_ticks[i] = batch.end_tick;
                }
            }
        }
        for (shard, members) in routing.routed.iter().enumerate() {
            for &i in members {
                outcomes[i] = Some(RequestOutcome::Answered {
                    shard,
                    end_tick: end_ticks[i],
                    escalated: false,
                    upgraded: false,
                });
            }
        }
        let outcomes: Vec<RequestOutcome> =
            outcomes.into_iter().map(|o| o.expect("every request has an outcome")).collect();
        // Latency is measured from the ORIGINAL arrival: a retried request's failover delay
        // is real waiting its caller experienced, so it lands in the tail percentiles.
        let latencies: Vec<u64> = outcomes
            .iter()
            .zip(trace)
            .filter_map(|(outcome, request)| match outcome {
                RequestOutcome::Answered { end_tick, .. } => Some(end_tick - request.arrival_tick),
                RequestOutcome::Shed { .. } => None,
            })
            .collect();
        ClusterPlan {
            outcomes,
            sheds: routing.sheds,
            scale_events: routing.scale_events,
            latencies,
            makespan_ticks: makespan,
            batches_per_shard: routing.sims.iter().map(|s| s.batches.len()).collect(),
            faults: FaultTrace {
                retries: routing.retries,
                degrades: routing.degrades,
                checkpoint_faults,
                levels: routing.levels,
            },
        }
    }

    /// Serves a trace through the cluster: plan (phase A), then answer every admitted
    /// request on its shard's own engine (phase B), escalating high-entropy two-tier
    /// answers to the high shard.
    ///
    /// # Panics
    ///
    /// Panics when the trace is not sorted by arrival tick, a request's input shape
    /// mismatches the source, or a request asks for zero samples.
    pub fn run(&self, trace: &[InferRequest]) -> ClusterRunReport {
        self.run_with_swaps(trace, &[])
    }

    /// [`Cluster::run`] with scheduled per-shard hot-swaps: each shard's engine answers its
    /// sub-trace under its own swap schedule, with the same deterministic
    /// version-at-service-start boundary as [`InferenceEngine::run_with_swaps`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Cluster::run`], or when a swap targets a shard
    /// out of range or a per-shard schedule is not sorted by `at_tick`.
    pub fn run_with_swaps(&self, trace: &[InferRequest], swaps: &[ShardSwap]) -> ClusterRunReport {
        self.run_with_faults(trace, swaps, &FaultPlan::none())
    }

    /// [`Cluster::run_with_swaps`] under a [`FaultPlan`] — the executed twin of
    /// [`Cluster::plan_with_faults`]: the same phase-A decisions, then real answers for
    /// every finally-admitted request on its shard's own engine. The fail-stop eviction
    /// boundary keeps phase B honest: an evicted request never appears in a shard's
    /// sub-trace, so the engine replays exactly the batches the plan committed
    /// (`assert_sim_matches_engine` still checks every batch, faults or not), and requests
    /// the degradation ladder downgraded to the analytic backend are answered by the
    /// engine's moment sentinel (`samples == 0`). Under [`FaultPlan::none`] this *is*
    /// `run_with_swaps`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Cluster::run_with_swaps`] and
    /// [`Cluster::plan_with_faults`], or when a non-empty fault plan is combined with
    /// [`RoutingPolicy::TwoTier`] (escalation across crashing shards is not modelled).
    pub fn run_with_faults(
        &self,
        trace: &[InferRequest],
        swaps: &[ShardSwap],
        faults: &FaultPlan,
    ) -> ClusterRunReport {
        self.run_traced(trace, swaps, faults, &mut NullRecorder)
    }

    /// [`Cluster::run_with_faults`] with structured tracing: every routing decision, batch
    /// transition, fault reaction and final answer is recorded as a tick-stamped
    /// [`Event`], keyed by request id. The recorder is written to and never read, so the
    /// returned report — responses, outcomes, timing, digests — is byte-identical to the
    /// untraced run's at any worker or shard count (the obs benchmark asserts this on every
    /// record it commits). Recorded streams attribute 100% of every answered request's
    /// end-to-end latency to named stages via [`bnn_obs::assemble_traces`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Cluster::run_with_faults`].
    pub fn run_traced<R: Recorder>(
        &self,
        trace: &[InferRequest],
        swaps: &[ShardSwap],
        faults: &FaultPlan,
        rec: &mut R,
    ) -> ClusterRunReport {
        if matches!(self.config.routing, RoutingPolicy::TwoTier { .. }) {
            assert!(
                faults.is_empty(),
                "fault injection does not support two-tier routing: escalation across \
                 crashing shards is not modelled"
            );
        }
        let timeline = FaultTimeline::build(
            faults,
            Cluster::routable(&self.config),
            self.config.shards,
            self.config.mode,
        );
        let mut grouped = self.swaps_by_shard(swaps);
        let checkpoint_faults = timeline.cancel_corrupted_swaps(&mut grouped);
        if R::ENABLED {
            for fault in &checkpoint_faults {
                rec.record(fault.to_event());
            }
        }
        let routing = self.route(trace, &grouped, faults, &timeline, rec);

        // Phase B: each shard's admitted sub-trace runs on that shard's own engine; the
        // engine re-derives batch timing from the sub-trace, and it must agree with the
        // plan's batch for batch — the cluster's timing and answers come from one clock.
        // A retried request enters the sub-trace at its final admission tick (its failover
        // history lives in phase A; the engine sees only the admission that stuck).
        // Under two-tier routing the router never targets the reserved high shard, so its
        // engine (and report) is built once by the escalation block below, not here.
        let phase_b_shards = Cluster::routable(&self.config);
        let mut shard_reports: Vec<ServeRunReport> = Vec::with_capacity(self.config.shards);
        for (shard, shard_swaps) in grouped.iter().enumerate().take(phase_b_shards) {
            let sub_trace: Vec<InferRequest> = routing.routed[shard]
                .iter()
                .map(|&i| {
                    let mut request = trace[i].clone();
                    request.arrival_tick = routing.admitted_ticks[i];
                    request.samples = routing.effective_samples[i];
                    request
                })
                .collect();
            let engine = InferenceEngine::from_source_with_mode(
                self.config.source.clone(),
                self.config.mode,
                self.config.batch,
                self.config.workers_per_shard,
            );
            let report = engine.run_recorded(
                &sub_trace,
                shard_swaps,
                &timeline.slowdowns[shard],
                shard,
                rec,
            );
            assert_sim_matches_engine(&routing.sims[shard], &report, shard);
            shard_reports.push(report);
        }

        let mut outcomes = routing.outcomes;
        let mut responses: Vec<Option<InferResponse>> = vec![None; trace.len()];
        let mut end_ticks = vec![0u64; trace.len()];
        for (shard, members) in routing.routed.iter().enumerate() {
            for (j, &i) in members.iter().enumerate() {
                let end = routing.admitted_ticks[i] + shard_reports[shard].latencies[j];
                end_ticks[i] = end;
                responses[i] = Some(shard_reports[shard].responses[j].clone());
                outcomes[i] = Some(RequestOutcome::Answered {
                    shard,
                    end_tick: end,
                    escalated: false,
                    upgraded: false,
                });
            }
        }

        // Two-tier escalation: low-pass answers whose entropy crosses the threshold re-enter
        // at the high shard, arriving at their low-pass completion tick.
        let mut escalations: Vec<EscalationEvent> = Vec::new();
        if let RoutingPolicy::TwoTier { high_samples, entropy_threshold, .. } = self.config.routing
        {
            let high = self.config.shards - 1;
            let mut candidates: Vec<(u64, usize)> = routing
                .routed
                .iter()
                .take(high)
                .flatten()
                .filter_map(|&i| {
                    let response = responses[i].as_ref().expect("admitted requests answered");
                    (f64::from(response.entropy) > entropy_threshold).then_some((end_ticks[i], i))
                })
                .collect();
            candidates.sort_unstable();

            let mut high_sim = ShardSim::new(
                self.config.batch,
                self.config.mode,
                self.config.source.epsilon_count(),
                &grouped[high],
                &[], // two-tier runs carry no fault plan (asserted above)
            );
            // `high_trace[k]` escalates the request at trace index `high_indices[k]`; ids
            // are caller-chosen and never used as positions.
            let mut high_trace: Vec<InferRequest> = Vec::new();
            let mut high_indices: Vec<usize> = Vec::new();
            let mut kept_low: Vec<usize> = Vec::new();
            for &(tick, i) in &candidates {
                let full = high_sim.backlog(tick) >= self.config.queue_cap;
                let late = self.config.deadline_ticks.is_some_and(|deadline| {
                    high_sim.estimate_end(tick, high_samples) > tick + deadline
                });
                let admit = !full && !late;
                let event = EscalationEvent { request: trace[i].id, tick, admitted: admit };
                if R::ENABLED {
                    rec.record(event.to_event());
                }
                escalations.push(event);
                if admit {
                    high_sim.admit(i, high_samples, tick);
                    let mut request = trace[i].clone();
                    request.arrival_tick = tick;
                    request.samples = high_samples;
                    high_trace.push(request);
                    high_indices.push(i);
                } else {
                    kept_low.push(i);
                }
            }
            high_sim.finish();

            let engine = InferenceEngine::from_source(
                self.config.source.clone(),
                self.config.batch,
                self.config.workers_per_shard,
            );
            let high_report = engine.run_recorded(&high_trace, &grouped[high], &[], high, rec);
            assert_sim_matches_engine(&high_sim, &high_report, high);

            for (k, &i) in high_indices.iter().enumerate() {
                let end = high_trace[k].arrival_tick + high_report.latencies[k];
                end_ticks[i] = end;
                responses[i] = Some(high_report.responses[k].clone());
                outcomes[i] = Some(RequestOutcome::Answered {
                    shard: high,
                    end_tick: end,
                    escalated: true,
                    upgraded: true,
                });
            }
            for &i in &kept_low {
                if let Some(RequestOutcome::Answered { escalated, .. }) = &mut outcomes[i] {
                    *escalated = true;
                }
            }
            shard_reports.push(high_report);
        }

        let outcomes: Vec<RequestOutcome> =
            outcomes.into_iter().map(|o| o.expect("every request has an outcome")).collect();
        if R::ENABLED {
            // Terminal leaves for the answered side (sheds already recorded theirs at the
            // decision): the carried answer's completion tick, post-escalation-upgrade.
            for (outcome, request) in outcomes.iter().zip(trace) {
                if let RequestOutcome::Answered { end_tick, .. } = outcome {
                    rec.record(Event::Answer { request: request.id, tick: *end_tick });
                }
            }
        }
        let latencies: Vec<u64> = outcomes
            .iter()
            .zip(trace)
            .filter_map(|(outcome, request)| match outcome {
                RequestOutcome::Answered { end_tick, .. } => Some(end_tick - request.arrival_tick),
                RequestOutcome::Shed { .. } => None,
            })
            .collect();
        let makespan_ticks = shard_reports.iter().map(|r| r.makespan_ticks).max().unwrap_or(0);

        ClusterRunReport {
            routing: self.config.routing.label().to_string(),
            shards: self.config.shards,
            queue_cap: self.config.queue_cap,
            workers_per_shard: self.config.workers_per_shard,
            outcomes,
            responses,
            latencies,
            sheds: routing.sheds,
            escalations,
            scale_events: routing.scale_events,
            shard_reports,
            makespan_ticks,
            faults: FaultTrace {
                retries: routing.retries,
                degrades: routing.degrades,
                checkpoint_faults,
                levels: routing.levels,
            },
        }
    }
}

/// Pins phase A to phase B: the incremental simulator's batches must replay the engine's
/// batch stats exactly — same closes, same service starts and ends, same sizes, same
/// versions. A divergence would mean routing decisions were made against a different clock
/// than the one the report carries, so it is a hard error, not a tolerance.
fn assert_sim_matches_engine(sim: &ShardSim, report: &ServeRunReport, shard: usize) {
    assert_eq!(
        sim.batches.len(),
        report.batches.len(),
        "shard {shard}: plan and engine disagree on batch count"
    );
    for (planned, executed) in sim.batches.iter().zip(&report.batches) {
        assert!(
            planned.close_tick == executed.close_tick
                && planned.start_tick == executed.start_tick
                && planned.end_tick == executed.end_tick
                && planned.members.len() == executed.size
                && planned.version == executed.version,
            "shard {shard}: plan batch {planned:?} diverged from engine batch {executed:?}"
        );
    }
}

// ---------------------------------------------------------------------------------------------
// The report
// ---------------------------------------------------------------------------------------------

/// The result of one cluster run: per-request outcomes and answers, every shed / escalation /
/// scaling decision with its exact tick, and the per-shard engine reports.
///
/// Every field except `workers_per_shard` is a pure function of (trace, config, swap
/// schedule); `to_json` omits the worker count, so two runs of the same inputs serialize
/// byte-identically at any worker count.
#[derive(Debug, Clone)]
pub struct ClusterRunReport {
    /// The routing policy's label.
    pub routing: String,
    /// Shard count (for two-tier runs the last is the high tier).
    pub shards: usize,
    /// The per-shard backlog bound the run enforced.
    pub queue_cap: usize,
    /// Pool workers per shard (wall-clock only; never affects any other field).
    pub workers_per_shard: usize,
    /// Per submitted request, in trace order.
    pub outcomes: Vec<RequestOutcome>,
    /// Per submitted request, in trace order: the carried answer, `None` when shed.
    pub responses: Vec<Option<InferResponse>>,
    /// Answered-request latencies (carried answer's completion − arrival), in trace order
    /// of the answered requests.
    pub latencies: Vec<u64>,
    /// Every shed decision, in decision order.
    pub sheds: Vec<ShedEvent>,
    /// Every two-tier escalation decision, in decision order.
    pub escalations: Vec<EscalationEvent>,
    /// Every autoscaling decision, in epoch order.
    pub scale_events: Vec<ScaleEvent>,
    /// One engine report per shard (the high shard's holds the escalation sub-trace).
    pub shard_reports: Vec<ServeRunReport>,
    /// Tick the last batch on any shard completed at (0 for an empty run).
    pub makespan_ticks: u64,
    /// Everything the fault plan caused: retries, ladder transitions, checkpoint fallbacks
    /// and per-request serving levels (empty under [`FaultPlan::none`]).
    pub faults: FaultTrace,
}

impl ClusterRunReport {
    /// Submitted request count.
    pub fn submitted(&self) -> usize {
        self.outcomes.len()
    }

    /// Answered request count (`submitted − shed`).
    pub fn answered(&self) -> usize {
        self.outcomes.len() - self.sheds.len()
    }

    /// Shed requests over submitted requests (0 for an empty trace).
    pub fn shed_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.sheds.len() as f64 / self.outcomes.len() as f64
    }

    /// Answered requests over submitted requests (1 for an empty trace) — the headline
    /// robustness metric the chaos grid gates: under a fault plan it measures how much of
    /// the offered load survived crashes and overload via failover and degradation.
    pub fn availability(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.answered() as f64 / self.submitted() as f64
    }

    /// Counts of answered requests per degradation level `(normal, reduced_samples,
    /// moment)` — the ladder's occupancy. All-normal without a ladder.
    pub fn degrade_occupancy(&self) -> (usize, usize, usize) {
        self.faults
            .occupancy(self.outcomes.iter().map(|o| matches!(o, RequestOutcome::Answered { .. })))
    }

    /// Escalated requests over submitted requests (0 outside two-tier routing).
    pub fn escalation_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.escalations.len() as f64 / self.outcomes.len() as f64
    }

    /// Nearest-rank latency percentile over the answered requests.
    ///
    /// # Panics
    ///
    /// Panics when nothing was answered.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        latency_percentile(&self.latencies, q)
    }

    /// The canonical response bytes (shed requests serialize as `null`) — what the cluster
    /// determinism contract compares across shard and worker counts.
    pub fn responses_json(&self) -> String {
        let items: Vec<Json> = self
            .responses
            .iter()
            .map(|r| r.as_ref().map_or(Json::Null, |resp| resp.to_json()))
            .collect();
        Json::Array(items).to_compact()
    }

    /// FNV-1a digest of [`responses_json`](Self::responses_json), 16 hex characters.
    pub fn responses_digest(&self) -> String {
        fnv1a_hex(self.responses_json().bytes())
    }

    /// The decision events in the observability vocabulary, family by family in report
    /// order — the one stream both serializations below go through.
    fn decision_events(&self) -> Vec<Event> {
        self.sheds
            .iter()
            .map(ShedEvent::to_event)
            .chain(self.escalations.iter().map(EscalationEvent::to_event))
            .chain(self.scale_events.iter().map(ScaleEvent::to_event))
            .collect()
    }

    /// The canonical decision bytes: every shed, escalation and scaling event with its exact
    /// tick, serialized through the observability exporter ([`export::decision_events_json`]
    /// — the single emission code path). The committed cluster baseline pins this digest.
    pub fn events_json(&self) -> String {
        export::decision_events_json(&self.decision_events()).to_compact()
    }

    /// FNV-1a digest of [`events_json`](Self::events_json), 16 hex characters.
    pub fn events_digest(&self) -> String {
        fnv1a_hex(self.events_json().bytes())
    }

    /// The canonical fault-event bytes: every failover retry, ladder transition and
    /// checkpoint fallback with its exact tick. Deliberately separate from
    /// [`events_json`](Self::events_json), whose digest pre-dates fault injection and stays
    /// byte-identical under [`FaultPlan::none`].
    pub fn fault_events_json(&self) -> String {
        self.faults.to_json().to_compact()
    }

    /// FNV-1a digest of [`fault_events_json`](Self::fault_events_json), 16 hex characters —
    /// what the committed chaos baseline pins.
    pub fn fault_events_digest(&self) -> String {
        fnv1a_hex(self.fault_events_json().bytes())
    }

    /// Serializes the full report. Worker count is deliberately omitted: every serialized
    /// field is a pure function of (trace, config, swap schedule), so 1-worker and N-worker
    /// runs — and re-runs on any machine — produce identical bytes.
    pub fn to_json(&self) -> Json {
        let percentile = |q| {
            if self.latencies.is_empty() {
                Json::Null
            } else {
                Json::UInt(self.latency_percentile(q))
            }
        };
        Json::obj([
            ("routing", Json::Str(self.routing.clone())),
            ("shards", Json::UInt(self.shards as u64)),
            ("queue_cap", Json::UInt(self.queue_cap as u64)),
            ("submitted", Json::UInt(self.submitted() as u64)),
            ("answered", Json::UInt(self.answered() as u64)),
            ("shed", Json::UInt(self.sheds.len() as u64)),
            ("shed_rate", Json::Float(self.shed_rate())),
            ("escalated", Json::UInt(self.escalations.len() as u64)),
            ("escalation_rate", Json::Float(self.escalation_rate())),
            ("makespan_ticks", Json::UInt(self.makespan_ticks)),
            (
                "latency_ticks",
                Json::obj([
                    ("p50", percentile(0.50)),
                    ("p95", percentile(0.95)),
                    ("p99", percentile(0.99)),
                    ("p999", percentile(0.999)),
                ]),
            ),
            ("availability", Json::Float(self.availability())),
            (
                "degrade_occupancy",
                Json::obj([
                    ("normal", Json::UInt(self.degrade_occupancy().0 as u64)),
                    ("reduced_samples", Json::UInt(self.degrade_occupancy().1 as u64)),
                    ("moment", Json::UInt(self.degrade_occupancy().2 as u64)),
                ]),
            ),
            (
                "sheds",
                Json::Array(
                    self.sheds.iter().map(|e| export::event_payload(&e.to_event())).collect(),
                ),
            ),
            (
                "escalations",
                Json::Array(
                    self.escalations.iter().map(|e| export::event_payload(&e.to_event())).collect(),
                ),
            ),
            (
                "scale_events",
                Json::Array(
                    self.scale_events
                        .iter()
                        .map(|e| export::event_payload(&e.to_event()))
                        .collect(),
                ),
            ),
            ("faults", self.faults.to_json()),
            (
                "shard_batches",
                Json::Array(
                    self.shard_reports.iter().map(|r| Json::UInt(r.batches.len() as u64)).collect(),
                ),
            ),
            (
                "responses",
                Json::Array(
                    self.responses
                        .iter()
                        .map(|r| r.as_ref().map_or(Json::Null, |resp| resp.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use crate::workload::{ArrivalProcess, WorkloadSpec};

    fn spec() -> ModelSpec {
        ModelSpec::mlp(2021)
    }

    fn config(shards: usize, routing: RoutingPolicy) -> ClusterConfig {
        ClusterConfig {
            source: ModelSource::Spec(spec()),
            mode: ServeMode::MonteCarlo,
            shards,
            workers_per_shard: 1,
            batch: BatchPolicy { max_batch: 4, max_wait_ticks: 8 },
            queue_cap: 8,
            deadline_ticks: None,
            routing,
            autoscale: None,
        }
    }

    fn trace(requests: usize, interarrival: u64) -> Vec<InferRequest> {
        WorkloadSpec::uniform(requests, interarrival, 2, 33).generate(&spec())
    }

    #[test]
    fn every_request_has_exactly_one_outcome() {
        let cluster = Cluster::new(config(3, RoutingPolicy::LeastLoaded));
        let trace = trace(48, 1);
        let report = cluster.run(&trace);
        assert_eq!(report.outcomes.len(), 48);
        assert_eq!(report.answered() + report.sheds.len(), report.submitted());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                RequestOutcome::Answered { end_tick, .. } => {
                    assert!(responses_present(&report, i));
                    assert!(*end_tick >= trace[i].arrival_tick);
                }
                RequestOutcome::Shed { .. } => assert!(!responses_present(&report, i)),
            }
        }
    }

    fn responses_present(report: &ClusterRunReport, i: usize) -> bool {
        report.responses[i].is_some()
    }

    #[test]
    fn round_robin_spreads_and_least_loaded_balances() {
        let trace = trace(32, 2);
        for routing in [RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded] {
            let report = Cluster::new(config(4, routing)).run(&trace);
            let served: Vec<usize> =
                report.shard_reports.iter().map(|r| r.responses.len()).collect();
            assert!(served.iter().all(|&n| n > 0), "{}: idle shard {served:?}", routing.label());
        }
    }

    #[test]
    fn queue_cap_sheds_under_adversarial_spikes() {
        let spikes = WorkloadSpec::uniform(64, 1, 2, 33)
            .with_arrival(ArrivalProcess::Adversarial { spike: 32 })
            .generate(&spec());
        let mut cfg = config(2, RoutingPolicy::LeastLoaded);
        cfg.queue_cap = 4;
        let report = Cluster::new(cfg).run(&spikes);
        assert!(!report.sheds.is_empty(), "a 32-request spike must overflow cap-4 queues");
        assert!(report.shed_rate() > 0.0);
        for event in &report.sheds {
            assert_eq!(event.reason, ShedReason::QueueFull);
            assert_eq!(event.tick, spikes[event.request as usize].arrival_tick);
        }
    }

    #[test]
    fn deadline_admission_sheds_hopeless_requests() {
        let mut cfg = config(1, RoutingPolicy::LeastLoaded);
        cfg.deadline_ticks = Some(70); // one batch overhead (64) + a couple of service ticks
        cfg.queue_cap = 1000;
        let dense = trace(32, 1);
        let report = Cluster::new(cfg).run(&dense);
        assert!(
            report.sheds.iter().any(|s| s.reason == ShedReason::Deadline),
            "a deadline barely above the batch overhead must shed queued requests"
        );
        // Every answered request a deadline shed would have displaced still completed.
        assert_eq!(report.answered() + report.sheds.len(), 32);
    }

    #[test]
    fn two_tier_escalates_high_entropy_answers() {
        let cfg = ClusterConfig {
            routing: RoutingPolicy::TwoTier {
                low_samples: 1,
                high_samples: 8,
                entropy_threshold: 0.0, // escalate everything: entropy is always positive
            },
            ..config(3, RoutingPolicy::LeastLoaded)
        };
        let trace = trace(24, 4);
        let report = Cluster::new(cfg).run(&trace);
        assert_eq!(report.escalations.len(), report.answered());
        for outcome in &report.outcomes {
            if let RequestOutcome::Answered { escalated, upgraded, shard, .. } = outcome {
                assert!(escalated);
                if *upgraded {
                    assert_eq!(*shard, 2, "upgraded answers come from the high shard");
                }
            }
        }
        let upgraded = report
            .outcomes
            .iter()
            .filter(|o| matches!(o, RequestOutcome::Answered { upgraded: true, .. }))
            .count();
        assert!(upgraded > 0, "some escalations must be admitted");
        for (outcome, request) in report.outcomes.iter().zip(&trace) {
            if let RequestOutcome::Answered { upgraded: true, .. } = outcome {
                let response = report.responses[request.id as usize].as_ref().unwrap();
                assert_eq!(response.samples, 8, "upgraded answers carry the high-S ensemble");
            }
        }
    }

    #[test]
    fn two_tier_with_infinite_threshold_never_escalates() {
        let cfg = ClusterConfig {
            routing: RoutingPolicy::TwoTier {
                low_samples: 2,
                high_samples: 8,
                entropy_threshold: f64::INFINITY,
            },
            ..config(2, RoutingPolicy::LeastLoaded)
        };
        let report = Cluster::new(cfg).run(&trace(16, 4));
        assert!(report.escalations.is_empty());
        assert_eq!(report.escalation_rate(), 0.0);
        assert!(report.shard_reports[1].responses.is_empty(), "high shard stays idle");
    }

    #[test]
    fn autoscaling_activates_and_drains_at_epoch_ticks() {
        let scale = AutoscalePolicy {
            interval_ticks: 32,
            high_watermark: 3,
            low_watermark: 1,
            min_active: 1,
        };
        let mut cfg = config(4, RoutingPolicy::LeastLoaded);
        cfg.autoscale = Some(scale);
        cfg.queue_cap = 64;
        // A burst early (forces scale-up), then a long quiet tail (forces drain).
        let mut trace = trace(48, 1);
        for request in trace.iter_mut().skip(40) {
            request.arrival_tick += 4000;
        }
        let report = Cluster::new(cfg).run(&trace);
        assert!(!report.scale_events.is_empty(), "the burst must trigger scaling");
        for event in &report.scale_events {
            assert_eq!(event.tick % 32, 0, "scale decisions land on epoch ticks only");
            assert!(event.active >= 1 && event.active <= 4);
        }
        let peak = report.scale_events.iter().map(|e| e.active).max().unwrap();
        let last = report.scale_events.last().unwrap().active;
        assert!(peak > 1, "the burst must activate extra shards");
        assert!(last < peak, "the quiet tail must drain them");
    }

    #[test]
    fn two_tier_handles_caller_chosen_request_ids() {
        // Ids are caller-chosen opaque labels, not trace positions: a run whose ids are far
        // outside 0..n must behave exactly like the same trace with index ids.
        let cfg = || ClusterConfig {
            routing: RoutingPolicy::TwoTier {
                low_samples: 1,
                high_samples: 8,
                entropy_threshold: 0.0,
            },
            ..config(3, RoutingPolicy::LeastLoaded)
        };
        let indexed = trace(24, 4);
        let mut relabeled = indexed.clone();
        for request in relabeled.iter_mut() {
            request.id = 10_000 + request.id * 7;
        }
        let baseline = Cluster::new(cfg()).run(&indexed);
        let report = Cluster::new(cfg()).run(&relabeled);
        assert_eq!(report.outcomes, baseline.outcomes);
        assert_eq!(report.latencies, baseline.latencies);
        // Answers match payload-for-payload; only the echoed caller id may differ.
        assert_eq!(report.responses.len(), baseline.responses.len());
        for (response, twin) in report.responses.iter().zip(&baseline.responses) {
            match (response, twin) {
                (Some(r), Some(t)) => {
                    assert_eq!(r.id, 10_000 + t.id * 7);
                    assert_eq!((&r.mean, &r.variance), (&t.mean, &t.variance));
                    assert_eq!((r.samples, r.entropy), (t.samples, t.entropy));
                }
                (None, None) => {}
                _ => panic!("relabeling changed a shed decision"),
            }
        }
        for (event, twin) in report.escalations.iter().zip(&baseline.escalations) {
            assert_eq!(event.request, 10_000 + twin.request * 7);
            assert_eq!((event.tick, event.admitted), (twin.tick, twin.admitted));
        }
    }

    #[test]
    fn plan_with_swaps_matches_swapped_run_timing() {
        let cluster = Cluster::new(config(2, RoutingPolicy::LeastLoaded));
        let trace = trace(32, 2);
        let swaps = vec![ShardSwap {
            shard: 1,
            swap: VersionSwap { at_tick: 80, source: ModelSource::Spec(ModelSpec::mlp(77)) },
        }];
        let plan = cluster.plan_with_swaps(&trace, &swaps);
        let report = cluster.run_with_swaps(&trace, &swaps);
        assert_eq!(plan.outcomes, report.outcomes);
        assert_eq!(plan.sheds, report.sheds);
        assert_eq!(plan.latencies, report.latencies);
        assert_eq!(plan.makespan_ticks, report.makespan_ticks);
        // The swap engaged: the swapped shard served batches on both sides of the boundary
        // (run_with_swaps cross-checks the plan's per-batch version against the engine's).
        let versions: Vec<usize> =
            report.shard_reports[1].batches.iter().map(|b| b.version).collect();
        assert!(versions.contains(&0) && versions.contains(&1), "swap never engaged: {versions:?}");
    }

    #[test]
    fn plan_matches_run_timing_without_computing_responses() {
        let cluster = Cluster::new(config(3, RoutingPolicy::RoundRobin));
        let trace = trace(40, 2);
        let plan = cluster.plan(&trace);
        let report = cluster.run(&trace);
        assert_eq!(plan.outcomes, report.outcomes);
        assert_eq!(plan.sheds, report.sheds);
        assert_eq!(plan.latencies, report.latencies);
        assert_eq!(plan.makespan_ticks, report.makespan_ticks);
        assert_eq!(
            plan.batches_per_shard,
            report.shard_reports.iter().map(|r| r.batches.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fault_plan_none_is_byte_identical_to_a_plain_run() {
        let cluster = Cluster::new(config(2, RoutingPolicy::LeastLoaded));
        let trace = trace(24, 2);
        let plain = cluster.run(&trace);
        let faulted = cluster.run_with_faults(&trace, &[], &FaultPlan::none());
        assert_eq!(plain.to_json().to_compact(), faulted.to_json().to_compact());
        assert_eq!(plain.events_digest(), faulted.events_digest());
        assert!(faulted.faults.retries.is_empty());
        assert!((faulted.availability() - (1.0 - faulted.shed_rate())).abs() < 1e-12);
    }

    #[test]
    fn crash_fails_over_the_open_batch_and_conserves_every_request() {
        use crate::faults::FaultEvent;
        // Dense arrivals on 2 shards; shard 0 crashes mid-trace and recovers later. The
        // open batch at the crash tick fails over; everything still ends answered or shed.
        let mut cfg = config(2, RoutingPolicy::LeastLoaded);
        cfg.queue_cap = 64;
        let cluster = Cluster::new(cfg);
        let trace = trace(32, 3);
        let faults = FaultPlan::new(vec![
            FaultEvent::ShardDown { tick: 20, shard: 0 },
            FaultEvent::ShardUp { tick: 400, shard: 0 },
        ]);
        let plan = cluster.plan_with_faults(&trace, &[], &faults);
        let report = cluster.run_with_faults(&trace, &[], &faults);
        assert_eq!(report.answered() + report.sheds.len(), report.submitted());
        assert_eq!(plan.outcomes, report.outcomes);
        assert_eq!(plan.latencies, report.latencies);
        assert_eq!(plan.makespan_ticks, report.makespan_ticks);
        assert_eq!(plan.faults, report.faults);
        assert!(!report.faults.retries.is_empty(), "the crash must evict an open batch");
        for retry in &report.faults.retries {
            assert_eq!(retry.failed_tick, 20);
            assert_eq!(retry.shard, Some(0));
            assert_eq!(
                retry.retry_tick,
                20 + faults.retry.backoff_ticks(retry.attempt),
                "backoff is exact in the tick domain"
            );
        }
        // A retried request that was answered completed at or after its retry tick.
        for retry in &report.faults.retries {
            let i = trace.iter().position(|r| r.id == retry.request).unwrap();
            if let RequestOutcome::Answered { end_tick, .. } = report.outcomes[i] {
                assert!(end_tick >= retry.retry_tick, "no answer before the failover retry");
            }
        }
        assert!(report.availability() == 1.0, "with capacity to spare, nothing is lost");
    }

    #[test]
    fn exhausted_retry_budget_sheds_with_typed_reasons() {
        use crate::faults::{FaultEvent, RetryPolicy};
        // Both shards stay down across the whole trace with a zero retry budget: every
        // submission finds no live shard and sheds ShardUnavailable at its arrival tick.
        let cluster = Cluster::new(config(2, RoutingPolicy::RoundRobin));
        let trace = trace(8, 4);
        let faults = FaultPlan::new(vec![
            FaultEvent::ShardDown { tick: 0, shard: 0 },
            FaultEvent::ShardDown { tick: 0, shard: 1 },
        ])
        .with_retry(RetryPolicy {
            base_backoff_ticks: 16,
            max_backoff_ticks: 64,
            max_retries: 0,
        });
        let report = cluster.run_with_faults(&trace, &[], &faults);
        assert_eq!(report.answered(), 0);
        assert_eq!(report.sheds.len(), 8);
        for (shed, request) in report.sheds.iter().zip(&trace) {
            assert_eq!(shed.reason, ShedReason::ShardUnavailable);
            assert_eq!(shed.tick, request.arrival_tick);
            assert_eq!(shed.shard, 0, "no shard to cite: 0 by convention");
        }
        assert_eq!(report.availability(), 0.0);
    }

    #[test]
    fn slow_shard_stretches_its_batches_and_diverts_load() {
        use crate::faults::FaultEvent;
        let cluster = Cluster::new(config(2, RoutingPolicy::LeastLoaded));
        let trace = trace(40, 24);
        let faults = FaultPlan::new(vec![FaultEvent::SlowShard {
            shard: 1,
            from_tick: 0,
            until_tick: u64::MAX,
            multiplier: 6,
        }]);
        let healthy = cluster.run(&trace);
        let report = cluster.run_with_faults(&trace, &[], &faults);
        assert!(report.makespan_ticks > healthy.makespan_ticks);
        for batch in &report.shard_reports[1].batches {
            assert_eq!((batch.end_tick - batch.start_tick) % 6, 0, "shard 1 runs 6x slow");
        }
        // Least-loaded routing sees the stretched backlog and diverts work to shard 0: the
        // slow shard answers less, and the overflow sheds cite the healthy shard's queue.
        assert!(
            report.shard_reports[1].responses.len() < healthy.shard_reports[1].responses.len(),
            "the slow shard must absorb less load"
        );
        assert!(!report.sheds.is_empty());
        assert!(
            report.sheds.iter().all(|s| s.shard == 0 && s.reason == ShedReason::QueueFull),
            "diverted overflow lands on the healthy shard's bounded queue"
        );
        assert_eq!(report.answered() + report.sheds.len(), report.submitted());
    }

    #[test]
    fn degradation_ladder_trades_samples_for_availability() {
        use crate::faults::{DegradeLadder, DegradeLevel};
        // One slow-ish shard, bursty oversubscription: without the ladder the queue cap
        // sheds; with it, requests degrade to fewer samples / the analytic backend first.
        let mut cfg = config(1, RoutingPolicy::LeastLoaded);
        cfg.queue_cap = 12;
        let cluster = Cluster::new(cfg);
        let dense = trace(40, 1);
        let ladder = DegradeLadder {
            reduced_samples: 1,
            reduce_watermark: 2,
            moment_watermark: 5,
            shed_watermark: 64,
        };
        let without = cluster.run_with_faults(&dense, &[], &FaultPlan::none());
        let with = cluster.run_with_faults(&dense, &[], &FaultPlan::none().with_ladder(ladder));
        assert!(!with.faults.degrades.is_empty(), "pressure must move the ladder");
        let (normal, reduced, moment) = with.degrade_occupancy();
        assert!(reduced + moment > 0, "some requests must serve degraded");
        assert_eq!(normal + reduced + moment, with.answered());
        assert!(
            with.availability() >= without.availability(),
            "degrading quality must not lose more requests than full-quality serving"
        );
        // Analytic answers are marked: samples == 0.
        for (i, level) in with.faults.levels.iter().enumerate() {
            if *level == DegradeLevel::Moment {
                if let Some(response) = &with.responses[i] {
                    assert_eq!(response.samples, 0, "moment-degraded answers are analytic");
                }
            }
        }
        // Transitions reconstruct the per-request levels: both serialize deterministically.
        assert_eq!(with.fault_events_digest(), {
            let again =
                cluster.run_with_faults(&dense, &[], &FaultPlan::none().with_ladder(ladder));
            again.fault_events_digest()
        });
    }

    #[test]
    fn overload_ladder_rung_sheds_with_typed_reason() {
        use crate::faults::DegradeLadder;
        let mut cfg = config(1, RoutingPolicy::LeastLoaded);
        cfg.queue_cap = 1000;
        let cluster = Cluster::new(cfg);
        let dense = trace(48, 1);
        let ladder = DegradeLadder {
            reduced_samples: 1,
            reduce_watermark: 1,
            moment_watermark: 2,
            shed_watermark: 3,
        };
        let report = cluster.run_with_faults(&dense, &[], &FaultPlan::none().with_ladder(ladder));
        assert!(
            report.sheds.iter().any(|s| s.reason == ShedReason::Overload),
            "a shed watermark this low must trip the top rung"
        );
        assert_eq!(report.answered() + report.sheds.len(), report.submitted());
    }

    #[test]
    fn corrupt_checkpoint_cancels_the_swap_and_keeps_the_prior_version() {
        use crate::faults::FaultEvent;
        let cluster = Cluster::new(config(2, RoutingPolicy::LeastLoaded));
        let trace = trace(32, 2);
        let swaps = vec![ShardSwap {
            shard: 1,
            swap: VersionSwap { at_tick: 80, source: ModelSource::Spec(ModelSpec::mlp(77)) },
        }];
        let faults = FaultPlan::new(vec![FaultEvent::CorruptCheckpoint { tick: 80, shard: 1 }]);
        let swapped = cluster.run_with_swaps(&trace, &swaps);
        let report = cluster.run_with_faults(&trace, &swaps, &faults);
        assert_eq!(
            report.faults.checkpoint_faults,
            vec![crate::faults::CheckpointFaultEvent { tick: 80, shard: 1, cancelled_swaps: 1 }]
        );
        assert!(
            report.shard_reports[1].batches.iter().all(|b| b.version == 0),
            "the corrupt version must never activate"
        );
        assert_ne!(
            swapped.responses_digest(),
            report.responses_digest(),
            "the cancelled swap visibly changes post-boundary answers"
        );
        // And the same run without the corruption matches a swap-free run byte for byte.
        let unswapped = cluster.run(&trace);
        assert_eq!(unswapped.responses_digest(), report.responses_digest());
    }

    #[test]
    fn faulted_reports_are_worker_invariant() {
        use crate::faults::{DegradeLadder, FaultEvent};
        let trace = trace(32, 2);
        let faults = FaultPlan::new(vec![
            FaultEvent::ShardDown { tick: 30, shard: 0 },
            FaultEvent::SlowShard { shard: 1, from_tick: 50, until_tick: 500, multiplier: 3 },
            FaultEvent::ShardUp { tick: 600, shard: 0 },
        ])
        .with_ladder(DegradeLadder {
            reduced_samples: 1,
            reduce_watermark: 3,
            moment_watermark: 6,
            shed_watermark: 12,
        });
        let mut reports = Vec::new();
        for workers in [1, 4] {
            let mut cfg = config(2, RoutingPolicy::LeastLoaded);
            cfg.workers_per_shard = workers;
            reports.push(Cluster::new(cfg).run_with_faults(&trace, &[], &faults));
        }
        assert_eq!(reports[0].to_json().to_compact(), reports[1].to_json().to_compact());
        assert_eq!(reports[0].fault_events_digest(), reports[1].fault_events_digest());
        assert_eq!(reports[0].responses_digest(), reports[1].responses_digest());
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let report = Cluster::new(config(2, RoutingPolicy::LeastLoaded)).run(&[]);
        assert_eq!(report.submitted(), 0);
        assert_eq!(report.makespan_ticks, 0);
        assert_eq!(report.shed_rate(), 0.0);
        let json = report.to_json().to_compact();
        assert!(json.contains("\"p999\":null"));
    }

    #[test]
    fn reports_serialize_deterministically() {
        let cluster = Cluster::new(config(2, RoutingPolicy::LeastLoaded));
        let trace = trace(12, 2);
        let a = cluster.run(&trace);
        let b = cluster.run(&trace);
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
        assert_eq!(a.responses_digest(), b.responses_digest());
        assert_eq!(a.events_digest(), b.events_digest());
    }
}
