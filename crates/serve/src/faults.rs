//! **Fault injection and graceful degradation** for the cluster simulator: typed tick-domain
//! fault events, a deterministic failover/retry policy, and a backlog-pressure degradation
//! ladder — the robustness layer above [`crate::cluster`].
//!
//! A [`FaultPlan`] schedules [`FaultEvent`]s at exact ticks and travels with a trace into
//! [`Cluster::plan_with_faults`](crate::Cluster::plan_with_faults) /
//! [`Cluster::run_with_faults`](crate::Cluster::run_with_faults). Everything the router does
//! in response stays a pure function of (trace, config, swap schedule, fault plan), so a
//! faulted run serializes byte-identically at any shard × worker count, exactly like a
//! healthy one.
//!
//! # The failure model: fail-stop at the dispatch boundary
//!
//! [`FaultEvent::ShardDown`] models a replica crash with connection draining: batches already
//! *closed* (dispatched to the simulated device) complete and their answers are delivered,
//! but the downed shard's **open batch** — requests admitted and still waiting to dispatch —
//! fails over. Each evicted request re-enters the router after a deterministic exponential
//! backoff ([`RetryPolicy`]), and a request that exhausts its retry budget is shed with
//! [`ShedReason::RetryBudgetExhausted`](crate::ShedReason) — conservation
//! `answered + shed == submitted` holds under every fault plan. While a shard is down the
//! router simply routes around it; if *every* routable shard is down, arrivals retry too, and
//! shed with [`ShedReason::ShardUnavailable`](crate::ShedReason) as the last resort.
//!
//! Drawing the crash at the dispatch boundary is what keeps phase A (the plan) and phase B
//! (real engines) batch-for-batch identical under faults: evicted requests never appear in a
//! shard's final sub-trace, so the engine replays exactly the batches the plan committed.
//! The retry schedule itself is deterministic because it lives in the tick domain — backoff
//! is `min(base · 2^(attempt−1), max)` ticks from the observed failure tick, retries re-enter
//! the arrival stream in (tick, schedule-order) order, and ties against fresh arrivals
//! resolve in favour of the retry (it is the older request). No randomness, no wall clock.
//!
//! # The degradation ladder
//!
//! [`DegradeLadder`] turns overload into graceful quality loss instead of sheds: at each
//! submission the cluster-wide backlog pressure (summed over the live shards, compared per
//! live shard) picks a [`DegradeLevel`] —
//!
//! 1. **Normal** — requests serve at their own `S`;
//! 2. **ReducedSamples** — `S` is capped at [`DegradeLadder::reduced_samples`] (the paper's
//!    S=16 → S=4 step: a four-fold ε-volume cut for modestly wider predictive bands);
//! 3. **Moment** — requests serve the single-pass analytic moment backend (`samples = 0`
//!    marks the answer analytic), cutting service cost to two weight-wide passes;
//! 4. **Shed** — the last rung: admission sheds with
//!    [`ShedReason::Overload`](crate::ShedReason).
//!
//! Every level change is recorded as a tick-stamped [`DegradeEvent`]. The ladder is a pure
//! threshold function of instantaneous pressure (no hysteresis), so it is as deterministic
//! as the admission control it extends.
//!
//! # Checkpoint corruption
//!
//! [`FaultEvent::CorruptCheckpoint`] models a published registry version that fails
//! [`Checkpoint::from_bytes`] validation at activation time: the scheduled hot-swap at that
//! (shard, tick) is cancelled, the shard keeps serving its prior version, and a typed
//! [`CheckpointFaultEvent`] records the fallback — never a panic, never garbage served. The
//! store-side mirror is `ModelRegistry::load_latest_valid`, which skips corrupt newest
//! versions on disk the same way.
//!
//! [`Checkpoint::from_bytes`]: ../../bnn_store/struct.Checkpoint.html#method.from_bytes

use crate::engine::Slowdown;
use crate::spec::ServeMode;
use shift_bnn::sweep::json::Json;

/// One scheduled fault, pinned to an exact tick in the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The shard crashes at `tick`: its open batch fails over (see the module docs' failure
    /// model) and the router stops targeting it until a matching [`FaultEvent::ShardUp`].
    /// A `ShardDown` for an already-down shard is a no-op.
    ShardDown {
        /// The crash tick.
        tick: u64,
        /// The crashing shard.
        shard: usize,
    },
    /// The shard recovers at `tick` and is routable again from that tick on (inclusive).
    /// A `ShardUp` for an already-up shard is a no-op.
    ShardUp {
        /// The recovery tick.
        tick: u64,
        /// The recovering shard.
        shard: usize,
    },
    /// The shard's device slows down: batches whose service *starts* inside
    /// `[from_tick, until_tick)` take `multiplier ×` their normal service time (thermal
    /// throttling, a noisy neighbour, a degraded link — anything that stretches service
    /// without dropping work).
    SlowShard {
        /// The affected shard.
        shard: usize,
        /// First tick of the slow window (inclusive).
        from_tick: u64,
        /// End of the slow window (exclusive).
        until_tick: u64,
        /// Service-time multiplier (≥ 1; 1 is a no-op).
        multiplier: u64,
    },
    /// The model version scheduled to hot-swap into `shard` at exactly `tick` fails
    /// checkpoint validation: the swap is cancelled, the shard keeps its prior version, and
    /// a [`CheckpointFaultEvent`] records the fallback. A mark with no matching swap still
    /// records the (harmless) validation failure.
    CorruptCheckpoint {
        /// The `at_tick` of the swap that fails validation.
        tick: u64,
        /// The shard whose swap fails.
        shard: usize,
    },
}

impl FaultEvent {
    /// The tick the event fires at (`from_tick` for a slow window).
    pub fn tick(&self) -> u64 {
        match *self {
            FaultEvent::ShardDown { tick, .. }
            | FaultEvent::ShardUp { tick, .. }
            | FaultEvent::CorruptCheckpoint { tick, .. } => tick,
            FaultEvent::SlowShard { from_tick, .. } => from_tick,
        }
    }

    /// The shard the event targets.
    pub fn shard(&self) -> usize {
        match *self {
            FaultEvent::ShardDown { shard, .. }
            | FaultEvent::ShardUp { shard, .. }
            | FaultEvent::CorruptCheckpoint { shard, .. }
            | FaultEvent::SlowShard { shard, .. } => shard,
        }
    }

    /// A short machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::ShardDown { .. } => "shard_down",
            FaultEvent::ShardUp { .. } => "shard_up",
            FaultEvent::SlowShard { .. } => "slow_shard",
            FaultEvent::CorruptCheckpoint { .. } => "corrupt_checkpoint",
        }
    }
}

/// Deterministic failover retry policy: bounded exponential backoff in ticks with a
/// per-request retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backoff of the first retry, in ticks (attempt `n` waits `base · 2^(n−1)`, capped).
    pub base_backoff_ticks: u64,
    /// Upper bound every backoff is clamped to.
    pub max_backoff_ticks: u64,
    /// Per-request retry budget; a request failing past it is shed
    /// ([`ShedReason::RetryBudgetExhausted`](crate::ShedReason) /
    /// [`ShedReason::ShardUnavailable`](crate::ShedReason)). `0` disables failover.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    /// 32-tick base, 256-tick cap, 3 attempts — half a batch overhead to start, never more
    /// than a few service times, bounded work per request.
    fn default() -> Self {
        RetryPolicy { base_backoff_ticks: 32, max_backoff_ticks: 256, max_retries: 3 }
    }
}

impl RetryPolicy {
    /// The backoff of retry attempt `n ≥ 1`: `min(base · 2^(n−1), max)` ticks, saturating.
    ///
    /// # Panics
    ///
    /// Panics on `attempt == 0` (attempts are 1-indexed).
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        assert!(attempt >= 1, "retry attempts are 1-indexed");
        let shift = attempt - 1;
        // A shift wide enough to push the base's top bit out saturates instead of wrapping.
        let raw = if shift >= self.base_backoff_ticks.leading_zeros() {
            u64::MAX
        } else {
            self.base_backoff_ticks << shift
        };
        raw.min(self.max_backoff_ticks)
    }
}

/// The graceful-degradation ladder: backlog-pressure thresholds that trade answer quality
/// for admission capacity (see the module docs). Pressure is the summed backlog of the live
/// shards; each watermark is compared per live shard, mirroring
/// [`AutoscalePolicy`](crate::AutoscalePolicy)'s arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeLadder {
    /// The sample cap of the [`DegradeLevel::ReducedSamples`] rung (≥ 1).
    pub reduced_samples: usize,
    /// Mean backlog per live shard at or above which `S` is capped.
    pub reduce_watermark: usize,
    /// Mean backlog per live shard at or above which requests serve analytically
    /// (must be > `reduce_watermark`).
    pub moment_watermark: usize,
    /// Mean backlog per live shard at or above which admission sheds
    /// (must be > `moment_watermark`).
    pub shed_watermark: usize,
}

impl DegradeLadder {
    /// The level the ladder selects at `pressure` total backlog across `live` shards.
    pub fn level_for(&self, pressure: usize, live: usize) -> DegradeLevel {
        if pressure >= self.shed_watermark * live {
            DegradeLevel::Shed
        } else if pressure >= self.moment_watermark * live {
            DegradeLevel::Moment
        } else if pressure >= self.reduce_watermark * live {
            DegradeLevel::ReducedSamples
        } else {
            DegradeLevel::Normal
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.reduced_samples >= 1, "reduced_samples must be at least 1");
        assert!(
            self.reduce_watermark < self.moment_watermark
                && self.moment_watermark < self.shed_watermark,
            "ladder watermarks must be strictly increasing (reduce < moment < shed)"
        );
    }
}

/// The serving level the degradation ladder applied to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeLevel {
    /// Full service: the request's own `S`.
    Normal,
    /// `S` capped at [`DegradeLadder::reduced_samples`].
    ReducedSamples,
    /// Single-pass analytic moment serving (`samples = 0` in the answer).
    Moment,
    /// Admission sheds ([`ShedReason::Overload`](crate::ShedReason)).
    Shed,
}

impl DegradeLevel {
    /// A short machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::ReducedSamples => "reduced_samples",
            DegradeLevel::Moment => "moment",
            DegradeLevel::Shed => "shed",
        }
    }
}

/// One ladder transition: the exact submission tick the level changed at, and the pressure
/// that drove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeEvent {
    /// The submission tick of the transition.
    pub tick: u64,
    /// The level before.
    pub from: DegradeLevel,
    /// The level after.
    pub to: DegradeLevel,
    /// The cluster-wide backlog (summed over live shards) that selected `to`.
    pub backlog: usize,
}

impl DegradeEvent {
    /// The event in the observability vocabulary — what the recorder stream carries and the
    /// fault trace's serialization goes through.
    pub fn to_event(&self) -> bnn_obs::Event {
        bnn_obs::Event::Degrade {
            tick: self.tick,
            from: self.from.label(),
            to: self.to.label(),
            backlog: self.backlog,
        }
    }
}

/// One failover retry: a request evicted by a crash (or stranded with no live shard) and
/// re-scheduled after its deterministic backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryEvent {
    /// The retried request's id.
    pub request: u64,
    /// The tick the failure was observed at (the crash tick for evictions, the submission
    /// tick when no shard was live).
    pub failed_tick: u64,
    /// The tick the request re-enters the router at (`failed + backoff(attempt)`).
    pub retry_tick: u64,
    /// The shard whose crash evicted the request; `None` when the failure was "no live
    /// shard" rather than a specific crash.
    pub shard: Option<usize>,
    /// Which retry attempt this is (1-indexed).
    pub attempt: u32,
}

impl RetryEvent {
    /// The event in the observability vocabulary.
    pub fn to_event(&self) -> bnn_obs::Event {
        bnn_obs::Event::Retry {
            request: self.request,
            failed_tick: self.failed_tick,
            retry_tick: self.retry_tick,
            shard: self.shard,
            attempt: self.attempt,
        }
    }
}

/// One checkpoint-corruption fallback: a hot-swap whose incoming version failed validation
/// at activation, leaving the shard on its prior version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointFaultEvent {
    /// The `at_tick` of the failed swap.
    pub tick: u64,
    /// The shard that kept its prior version.
    pub shard: usize,
    /// How many scheduled swaps at this (shard, tick) were cancelled (0 when the corrupt
    /// version was never scheduled to activate).
    pub cancelled_swaps: usize,
}

impl CheckpointFaultEvent {
    /// The event in the observability vocabulary.
    pub fn to_event(&self) -> bnn_obs::Event {
        bnn_obs::Event::CheckpointFault {
            tick: self.tick,
            shard: self.shard,
            cancelled_swaps: self.cancelled_swaps,
        }
    }
}

/// A complete fault schedule for one cluster run, plus the policies that govern the
/// reaction: failover retry and (optionally) the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled events, sorted by [`FaultEvent::tick`].
    pub events: Vec<FaultEvent>,
    /// The failover retry policy.
    pub retry: RetryPolicy,
    /// The degradation ladder; `None` serves every admitted request at full quality and
    /// sheds under overload exactly like a fault-free cluster.
    pub ladder: Option<DegradeLadder>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no events, default retry policy, no ladder. A run under it behaves
    /// — and serializes — exactly like the corresponding un-faulted run.
    pub fn none() -> FaultPlan {
        FaultPlan { events: Vec::new(), retry: RetryPolicy::default(), ladder: None }
    }

    /// A plan scheduling `events` under the default retry policy, no ladder.
    pub fn new(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { events, ..FaultPlan::none() }
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> FaultPlan {
        self.retry = retry;
        self
    }

    /// Enables the degradation ladder.
    pub fn with_ladder(mut self, ladder: DegradeLadder) -> FaultPlan {
        self.ladder = Some(ladder);
        self
    }

    /// Whether the plan changes anything at all (no events *and* no ladder).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.ladder.is_none()
    }
}

/// The preprocessed, validated form of a [`FaultPlan`] the router consumes: up/down
/// transitions in firing order, per-shard slowdown windows, and corruption marks.
#[derive(Debug, Clone)]
pub(crate) struct FaultTimeline {
    /// `(tick, shard, down)` in tick order (schedule order on ties).
    pub(crate) transitions: Vec<(u64, usize, bool)>,
    /// Slow windows grouped per shard.
    pub(crate) slowdowns: Vec<Vec<Slowdown>>,
    /// `(tick, shard)` corruption marks, in schedule order.
    pub(crate) corrupt: Vec<(u64, usize)>,
}

impl FaultTimeline {
    /// Validates and preprocesses a plan against a cluster of `shards` shards, of which the
    /// first `routable` receive router traffic.
    ///
    /// # Panics
    ///
    /// Panics when events are not sorted by tick, target a shard out of range, a slow window
    /// is empty or has a zero multiplier, the ladder's watermarks are not strictly
    /// increasing, or a ladder is paired with a non-Monte-Carlo cluster.
    pub(crate) fn build(
        plan: &FaultPlan,
        routable: usize,
        shards: usize,
        mode: ServeMode,
    ) -> FaultTimeline {
        if let Some(ladder) = &plan.ladder {
            ladder.validate();
            assert!(
                mode == ServeMode::MonteCarlo,
                "the degradation ladder trades Monte-Carlo samples for capacity; a moment \
                 cluster is already at the ladder's floor"
            );
        }
        for pair in plan.events.windows(2) {
            assert!(
                pair[0].tick() <= pair[1].tick(),
                "fault events must be sorted by tick ({} at {} after {} at {})",
                pair[1].label(),
                pair[1].tick(),
                pair[0].label(),
                pair[0].tick(),
            );
        }
        let mut transitions = Vec::new();
        let mut slowdowns: Vec<Vec<Slowdown>> = vec![Vec::new(); shards];
        let mut corrupt = Vec::new();
        for event in &plan.events {
            match *event {
                FaultEvent::ShardDown { tick, shard } => {
                    assert!(shard < routable, "ShardDown targets non-routable shard {shard}");
                    transitions.push((tick, shard, true));
                }
                FaultEvent::ShardUp { tick, shard } => {
                    assert!(shard < routable, "ShardUp targets non-routable shard {shard}");
                    transitions.push((tick, shard, false));
                }
                FaultEvent::SlowShard { shard, from_tick, until_tick, multiplier } => {
                    assert!(shard < routable, "SlowShard targets non-routable shard {shard}");
                    assert!(from_tick < until_tick, "slow window must be non-empty");
                    assert!(multiplier >= 1, "slowdown multiplier must be at least 1");
                    slowdowns[shard].push(Slowdown { from_tick, until_tick, multiplier });
                }
                FaultEvent::CorruptCheckpoint { tick, shard } => {
                    assert!(shard < shards, "CorruptCheckpoint targets shard {shard}");
                    corrupt.push((tick, shard));
                }
            }
        }
        FaultTimeline { transitions, slowdowns, corrupt }
    }

    /// Cancels every scheduled swap a corruption mark hits (the incoming version fails
    /// validation, so the shard keeps its prior version), returning the typed fallback
    /// events in mark order.
    pub(crate) fn cancel_corrupted_swaps(
        &self,
        swaps: &mut [Vec<crate::engine::VersionSwap>],
    ) -> Vec<CheckpointFaultEvent> {
        self.corrupt
            .iter()
            .map(|&(tick, shard)| {
                let before = swaps[shard].len();
                swaps[shard].retain(|swap| swap.at_tick != tick);
                CheckpointFaultEvent { tick, shard, cancelled_swaps: before - swaps[shard].len() }
            })
            .collect()
    }
}

/// Everything a faulted run recorded beyond the healthy-run events: retries, ladder
/// transitions, checkpoint fallbacks, and the level each request was finally served (or
/// shed) at. Empty — and serialization-invisible in the digests that predate it — for a run
/// under [`FaultPlan::none`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTrace {
    /// Every failover retry, in schedule order.
    pub retries: Vec<RetryEvent>,
    /// Every ladder transition, in tick order.
    pub degrades: Vec<DegradeEvent>,
    /// Every checkpoint-corruption fallback, in mark order.
    pub checkpoint_faults: Vec<CheckpointFaultEvent>,
    /// Per submitted request, in trace order: the [`DegradeLevel`] applied at its final
    /// submission ([`DegradeLevel::Normal`] without a ladder).
    pub levels: Vec<DegradeLevel>,
}

impl FaultTrace {
    /// The canonical fault-event bytes: every retry, ladder transition and checkpoint
    /// fallback with its exact tick, serialized through the observability exporter
    /// ([`bnn_obs::export::fault_events_json`] — the single emission code path). Kept
    /// separate from [`ClusterRunReport::events_json`](crate::ClusterRunReport::events_json)
    /// so pre-existing committed digests stay valid.
    pub fn to_json(&self) -> Json {
        let events: Vec<bnn_obs::Event> = self
            .retries
            .iter()
            .map(RetryEvent::to_event)
            .chain(self.degrades.iter().map(DegradeEvent::to_event))
            .chain(self.checkpoint_faults.iter().map(CheckpointFaultEvent::to_event))
            .collect();
        bnn_obs::export::fault_events_json(&events)
    }

    /// Counts of *answered* requests per serving level `(normal, reduced_samples, moment)`,
    /// given the parallel answered mask — the degradation-mode occupancy the chaos benchmark
    /// reports.
    pub fn occupancy(&self, answered: impl Iterator<Item = bool>) -> (usize, usize, usize) {
        let (mut normal, mut reduced, mut moment) = (0, 0, 0);
        for (level, answered) in self.levels.iter().zip(answered) {
            if !answered {
                continue;
            }
            match level {
                DegradeLevel::Normal => normal += 1,
                DegradeLevel::ReducedSamples => reduced += 1,
                DegradeLevel::Moment => moment += 1,
                DegradeLevel::Shed => {}
            }
        }
        (normal, reduced, moment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates_at_the_cap() {
        let retry = RetryPolicy { base_backoff_ticks: 8, max_backoff_ticks: 50, max_retries: 9 };
        assert_eq!(retry.backoff_ticks(1), 8);
        assert_eq!(retry.backoff_ticks(2), 16);
        assert_eq!(retry.backoff_ticks(3), 32);
        assert_eq!(retry.backoff_ticks(4), 50, "clamped to the cap");
        assert_eq!(retry.backoff_ticks(64), 50, "wide shifts saturate instead of overflowing");
    }

    #[test]
    fn ladder_levels_follow_the_watermarks() {
        let ladder = DegradeLadder {
            reduced_samples: 4,
            reduce_watermark: 2,
            moment_watermark: 5,
            shed_watermark: 8,
        };
        assert_eq!(ladder.level_for(0, 3), DegradeLevel::Normal);
        assert_eq!(ladder.level_for(5, 3), DegradeLevel::Normal);
        assert_eq!(ladder.level_for(6, 3), DegradeLevel::ReducedSamples);
        assert_eq!(ladder.level_for(15, 3), DegradeLevel::Moment);
        assert_eq!(ladder.level_for(24, 3), DegradeLevel::Shed);
        // Fewer live shards lower every absolute threshold.
        assert_eq!(ladder.level_for(5, 1), DegradeLevel::Moment);
    }

    #[test]
    fn corruption_marks_cancel_only_matching_swaps() {
        use crate::engine::VersionSwap;
        use crate::spec::{ModelSource, ModelSpec};
        let plan = FaultPlan::new(vec![FaultEvent::CorruptCheckpoint { tick: 100, shard: 0 }]);
        let timeline = FaultTimeline::build(&plan, 2, 2, ServeMode::MonteCarlo);
        let source = ModelSource::Spec(ModelSpec::mlp(1));
        let mut swaps = vec![
            vec![
                VersionSwap { at_tick: 100, source: source.clone() },
                VersionSwap { at_tick: 200, source: source.clone() },
            ],
            vec![VersionSwap { at_tick: 100, source }],
        ];
        let events = timeline.cancel_corrupted_swaps(&mut swaps);
        assert_eq!(events, vec![CheckpointFaultEvent { tick: 100, shard: 0, cancelled_swaps: 1 }]);
        assert_eq!(swaps[0].len(), 1, "only the matching swap is cancelled");
        assert_eq!(swaps[0][0].at_tick, 200);
        assert_eq!(swaps[1].len(), 1, "other shards keep their schedules");
    }

    #[test]
    #[should_panic(expected = "sorted by tick")]
    fn unsorted_events_are_rejected() {
        let plan = FaultPlan::new(vec![
            FaultEvent::ShardDown { tick: 50, shard: 0 },
            FaultEvent::ShardUp { tick: 20, shard: 0 },
        ]);
        FaultTimeline::build(&plan, 2, 2, ServeMode::MonteCarlo);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn inverted_ladder_watermarks_are_rejected() {
        let plan = FaultPlan::none().with_ladder(DegradeLadder {
            reduced_samples: 4,
            reduce_watermark: 5,
            moment_watermark: 5,
            shed_watermark: 8,
        });
        FaultTimeline::build(&plan, 2, 2, ServeMode::MonteCarlo);
    }

    #[test]
    fn fault_trace_occupancy_counts_answered_levels() {
        let trace = FaultTrace {
            levels: vec![
                DegradeLevel::Normal,
                DegradeLevel::ReducedSamples,
                DegradeLevel::Moment,
                DegradeLevel::Moment,
                DegradeLevel::Shed,
            ],
            ..FaultTrace::default()
        };
        let answered = [true, true, true, false, false];
        assert_eq!(trace.occupancy(answered.into_iter()), (1, 1, 1));
    }
}
