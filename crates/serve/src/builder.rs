//! Declarative engine construction: one [`EngineSpec`] instead of a constructor ladder.
//!
//! PR 8 collapses the three-step `new` / `from_source` / `from_source_with_mode` ladders of
//! [`InferenceEngine`](crate::InferenceEngine) and [`ServeReplica`](crate::ServeReplica) into
//! a single builder. A spec names everything an engine needs up front — posterior source,
//! serving backend, batching policy, pool workers, kernel tier and the fused-sampling switch
//! — and [`InferenceEngine::build`](crate::InferenceEngine::build) /
//! [`ServeReplica::build`](crate::ServeReplica::build) consume it. The old constructors
//! remain as thin shims over default specs (every committed golden test keeps passing
//! unmodified), but new call sites should write:
//!
//! ```
//! use bnn_serve::{BatchPolicy, EngineSpec, InferenceEngine, ModelSpec, ServeMode};
//!
//! let engine = InferenceEngine::build(
//!     EngineSpec::new(ModelSpec::mlp(7))
//!         .mode(ServeMode::MonteCarlo)
//!         .policy(BatchPolicy { max_batch: 4, max_wait_ticks: 16 })
//!         .workers(2),
//! );
//! assert_eq!(engine.workers(), 2);
//! ```
//!
//! The spec also settles the old by-ref-vs-by-value [`ModelSource`] inconsistency
//! (`InferenceEngine` consumed sources, `ServeReplica` borrowed them): a spec takes anything
//! `Into<ModelSource>` **by value** exactly once, and everything downstream borrows the spec.

use crate::batcher::BatchPolicy;
use crate::spec::{ModelSource, ServeMode};
use bnn_tensor::{KernelConfig, KernelTier};

/// A declarative description of a serving engine: the single construction surface consumed
/// by [`InferenceEngine::build`](crate::InferenceEngine::build) and
/// [`ServeReplica::build`](crate::ServeReplica::build).
///
/// Defaults mirror the historical constructors: Monte-Carlo backend, unbatched policy, one
/// worker, the process-default [`KernelTier`], one GEMM worker, fused sampling **on** (the
/// fused path is bit-identical to per-sample execution, so enabling it changes speed, never
/// bytes — pinned by `tests/fused_identity.rs`).
#[derive(Debug, Clone)]
pub struct EngineSpec {
    pub(crate) source: ModelSource,
    pub(crate) mode: ServeMode,
    pub(crate) policy: BatchPolicy,
    pub(crate) workers: usize,
    pub(crate) kernel: KernelConfig,
    pub(crate) fused_sampling: bool,
}

impl EngineSpec {
    /// Starts a spec for any posterior source ([`crate::ModelSpec`],
    /// [`crate::CheckpointReplica`], or an explicit [`ModelSource`]).
    pub fn new(source: impl Into<ModelSource>) -> EngineSpec {
        EngineSpec {
            source: source.into(),
            mode: ServeMode::default(),
            policy: BatchPolicy::unbatched(),
            workers: 1,
            kernel: KernelConfig::default(),
            fused_sampling: true,
        }
    }

    /// Sets the serving backend (default [`ServeMode::MonteCarlo`]).
    pub fn mode(mut self, mode: ServeMode) -> EngineSpec {
        self.mode = mode;
        self
    }

    /// Sets the batching policy (default [`BatchPolicy::unbatched`]).
    pub fn policy(mut self, policy: BatchPolicy) -> EngineSpec {
        self.policy = policy;
        self
    }

    /// Sets the pool worker count responses are computed on (default 1; never affects
    /// response bytes).
    pub fn workers(mut self, workers: usize) -> EngineSpec {
        self.workers = workers;
        self
    }

    /// Forces a GEMM kernel tier for every replica (default: the process tier,
    /// [`KernelTier::default`]). Bit-exact tiers cannot change any response;
    /// [`KernelTier::FastMath`] can, and is never a default.
    pub fn kernel_tier(mut self, tier: KernelTier) -> EngineSpec {
        self.kernel.tier = tier;
        self
    }

    /// Sets the per-replica GEMM worker budget for the deterministic M-split parallel path
    /// (default 1 = serial; byte-identical at any count).
    pub fn gemm_workers(mut self, workers: usize) -> EngineSpec {
        self.kernel.gemm_workers = workers;
        self
    }

    /// Enables or disables fused sampling: all `S` sampled forward passes of a Monte-Carlo
    /// request batched into one stacked walk (default **on**; bit-identical either way,
    /// ignored by [`ServeMode::Moment`]).
    pub fn fused_sampling(mut self, fused: bool) -> EngineSpec {
        self.fused_sampling = fused;
        self
    }

    /// The posterior source replicas are built from.
    pub fn source_ref(&self) -> &ModelSource {
        &self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;

    #[test]
    fn defaults_mirror_the_historical_constructors() {
        let spec = EngineSpec::new(ModelSpec::mlp(3));
        assert_eq!(spec.mode, ServeMode::MonteCarlo);
        assert_eq!(spec.policy, BatchPolicy::unbatched());
        assert_eq!(spec.workers, 1);
        assert_eq!(spec.kernel, KernelConfig::default());
        assert!(spec.fused_sampling);
    }

    #[test]
    fn setters_are_chainable_and_land() {
        let spec = EngineSpec::new(ModelSpec::lenet(5))
            .mode(ServeMode::Moment)
            .policy(BatchPolicy { max_batch: 8, max_wait_ticks: 32 })
            .workers(4)
            .kernel_tier(KernelTier::Blocked)
            .gemm_workers(3)
            .fused_sampling(false);
        assert_eq!(spec.mode, ServeMode::Moment);
        assert_eq!(spec.policy, BatchPolicy { max_batch: 8, max_wait_ticks: 32 });
        assert_eq!(spec.workers, 4);
        assert_eq!(spec.kernel.tier, KernelTier::Blocked);
        assert_eq!(spec.kernel.gemm_workers, 3);
        assert!(!spec.fused_sampling);
    }
}
