//! Inference requests and responses.

use bnn_tensor::Tensor;
use shift_bnn::sweep::json::{Json, ToJson};

/// One inference request: an input, a Monte-Carlo sample count and the 64-bit seed that
/// deterministically regenerates the request's entire ε ensemble on any worker replica.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Caller-chosen request identifier, echoed in the response.
    pub id: u64,
    /// Arrival time in the simulated tick domain (the batcher's clock).
    pub arrival_tick: u64,
    /// The input example.
    pub input: Tensor,
    /// Monte-Carlo sample count `S`: how many posterior draws to aggregate.
    pub samples: usize,
    /// Base seed of the request's ε streams (sample `s` uses [`mix_seed`]`(seed, s)`).
    pub seed: u64,
}

/// The aggregated answer to one request: predictive mean, per-class variance and predictive
/// entropy over the `S` sampled forward passes.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// The request's identifier.
    pub id: u64,
    /// Monte-Carlo samples aggregated.
    pub samples: usize,
    /// Predictive class probabilities (mean over the sampled models).
    pub mean: Vec<f32>,
    /// Per-class variance across the sampled models (epistemic spread).
    pub variance: Vec<f32>,
    /// Predictive entropy of the mean, in nats.
    pub entropy: f32,
}

impl ToJson for &InferResponse {
    fn to_json(&self) -> Json {
        let floats =
            |xs: &[f32]| Json::Array(xs.iter().map(|&x| Json::Float(f64::from(x))).collect());
        Json::obj([
            ("id", Json::UInt(self.id)),
            ("samples", Json::UInt(self.samples as u64)),
            ("mean", floats(&self.mean)),
            ("variance", floats(&self.variance)),
            ("entropy", Json::Float(f64::from(self.entropy))),
        ])
    }
}

/// Derives the per-sample (or per-request) seed `index` from a base seed — a SplitMix64 step,
/// so neighbouring indices land in unrelated LFSR states.
pub fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..64).map(|i| mix_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collisions");
        assert_eq!(mix_seed(42, 7), seeds[7]);
        assert_ne!(mix_seed(42, 7), mix_seed(43, 7));
    }

    #[test]
    fn response_serializes_deterministically() {
        let response = InferResponse {
            id: 3,
            samples: 8,
            mean: vec![0.25, 0.75],
            variance: vec![0.0, 0.125],
            entropy: 0.5623,
        };
        let a = (&response).to_json().to_compact();
        assert_eq!(a, (&response).to_json().to_compact());
        assert!(a.contains("\"id\":3"));
        assert!(a.contains("\"mean\":[0.25,0.75]"));
    }
}
