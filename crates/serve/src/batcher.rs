//! The dynamic batcher: deterministic request coalescing in a simulated tick domain.
//!
//! Production batchers trade latency for throughput with two knobs — close a batch when it is
//! *full* or when its oldest request has *waited long enough*. Both knobs here operate on
//! simulated **ticks** carried by the requests themselves; the batcher never reads a wall
//! clock, so the same trace always coalesces into the same batches, on any machine, at any
//! worker count. That determinism is what lets the serving tests compare batch-size-1 against
//! coalesced execution and 1 worker against N workers byte-for-byte.

use crate::request::InferRequest;

/// The two-knob coalescing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// A batch closes the moment it holds this many requests.
    pub max_batch: usize,
    /// A batch closes `max_wait_ticks` after its first request arrived, full or not.
    pub max_wait_ticks: u64,
}

impl BatchPolicy {
    /// The degenerate policy that never coalesces: every request is its own batch, closed on
    /// arrival. The baseline the batched-vs-unbatched speedup is measured against.
    pub fn unbatched() -> BatchPolicy {
        BatchPolicy { max_batch: 1, max_wait_ticks: 0 }
    }

    /// A short machine-readable label, e.g. `"b8w32"`.
    pub fn label(&self) -> String {
        format!("b{}w{}", self.max_batch, self.max_wait_ticks)
    }
}

/// One planned batch: which requests it coalesced and the tick it closed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Tick at which the batch closed (became eligible to execute).
    pub close_tick: u64,
    /// Indices into the planned request slice, in arrival order.
    pub requests: Vec<usize>,
}

/// Coalesces an arrival-ordered request trace into batches under `policy`.
///
/// Semantics, in arrival order:
///
/// * a batch *opens* when its first request arrives, setting its deadline to
///   `arrival + max_wait_ticks`;
/// * a request arriving at or before the open batch's deadline joins it; one arriving after
///   the deadline closes the open batch at the deadline and opens a new one;
/// * a batch also closes — immediately, at the joining request's arrival tick — when it
///   reaches `max_batch` requests;
/// * the trailing batch closes at its deadline (the engine has no "end of input" oracle a
///   real open-loop arrival process wouldn't have).
///
/// # Panics
///
/// Panics when `policy.max_batch` is zero or the trace is not sorted by `arrival_tick`.
pub fn plan_batches(requests: &[InferRequest], policy: BatchPolicy) -> Vec<BatchPlan> {
    assert!(policy.max_batch >= 1, "max_batch must be at least 1");
    let mut plans: Vec<BatchPlan> = Vec::new();
    let mut open: Vec<usize> = Vec::new();
    let mut deadline: u64 = 0;
    let mut previous_arrival: u64 = 0;
    for (i, request) in requests.iter().enumerate() {
        assert!(
            request.arrival_tick >= previous_arrival,
            "request trace must be sorted by arrival_tick (index {i})"
        );
        previous_arrival = request.arrival_tick;
        if !open.is_empty() && request.arrival_tick > deadline {
            plans.push(BatchPlan { close_tick: deadline, requests: std::mem::take(&mut open) });
        }
        if open.is_empty() {
            deadline = request.arrival_tick + policy.max_wait_ticks;
        }
        open.push(i);
        if open.len() == policy.max_batch {
            plans.push(BatchPlan {
                close_tick: request.arrival_tick,
                requests: std::mem::take(&mut open),
            });
        }
    }
    if !open.is_empty() {
        plans.push(BatchPlan { close_tick: deadline, requests: open });
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_tensor::Tensor;

    fn trace(arrivals: &[u64]) -> Vec<InferRequest> {
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &arrival_tick)| InferRequest {
                id: i as u64,
                arrival_tick,
                input: Tensor::filled(&[2], 0.0),
                samples: 1,
                seed: i as u64,
            })
            .collect()
    }

    fn shape(plans: &[BatchPlan]) -> Vec<(u64, Vec<usize>)> {
        plans.iter().map(|p| (p.close_tick, p.requests.clone())).collect()
    }

    #[test]
    fn unbatched_policy_closes_every_request_on_arrival() {
        let plans = plan_batches(&trace(&[0, 3, 9]), BatchPolicy::unbatched());
        assert_eq!(shape(&plans), vec![(0, vec![0]), (3, vec![1]), (9, vec![2])]);
    }

    #[test]
    fn size_trigger_closes_at_the_filling_requests_arrival() {
        let policy = BatchPolicy { max_batch: 2, max_wait_ticks: 100 };
        let plans = plan_batches(&trace(&[0, 4, 5, 7]), policy);
        assert_eq!(shape(&plans), vec![(4, vec![0, 1]), (7, vec![2, 3])]);
    }

    #[test]
    fn wait_trigger_closes_at_the_deadline() {
        let policy = BatchPolicy { max_batch: 8, max_wait_ticks: 5 };
        // Request at t=6 is past the first batch's deadline (0 + 5); request at t=5 is not.
        let plans = plan_batches(&trace(&[0, 5, 6]), policy);
        assert_eq!(shape(&plans), vec![(5, vec![0, 1]), (11, vec![2])]);
    }

    #[test]
    fn arrival_exactly_at_the_deadline_still_joins() {
        let policy = BatchPolicy { max_batch: 8, max_wait_ticks: 10 };
        let plans = plan_batches(&trace(&[2, 12]), policy);
        assert_eq!(shape(&plans), vec![(12, vec![0, 1])]);
    }

    #[test]
    fn trailing_batch_closes_at_its_deadline() {
        let policy = BatchPolicy { max_batch: 8, max_wait_ticks: 7 };
        let plans = plan_batches(&trace(&[40]), policy);
        assert_eq!(shape(&plans), vec![(47, vec![0])]);
    }

    #[test]
    fn every_request_lands_in_exactly_one_batch() {
        let arrivals: Vec<u64> = (0..37).map(|i| i * 3).collect();
        for policy in [
            BatchPolicy::unbatched(),
            BatchPolicy { max_batch: 4, max_wait_ticks: 2 },
            BatchPolicy { max_batch: 5, max_wait_ticks: 50 },
        ] {
            let plans = plan_batches(&trace(&arrivals), policy);
            let mut seen: Vec<usize> = plans.iter().flat_map(|p| p.requests.clone()).collect();
            let in_order = seen.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen, (0..37).collect::<Vec<_>>(), "{}", policy.label());
            assert_eq!(in_order, (0..37).collect::<Vec<_>>(), "batches preserve arrival order");
            for plan in &plans {
                assert!(plan.requests.len() <= policy.max_batch);
            }
        }
    }

    #[test]
    fn empty_trace_plans_no_batches() {
        assert!(plan_batches(&[], BatchPolicy::unbatched()).is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted by arrival_tick")]
    fn unsorted_trace_is_rejected() {
        plan_batches(&trace(&[5, 3]), BatchPolicy::unbatched());
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(BatchPolicy::unbatched().label(), "b1w0");
        assert_eq!(BatchPolicy { max_batch: 16, max_wait_ticks: 64 }.label(), "b16w64");
    }
}
