//! **bnn-serve** — a batched Monte-Carlo uncertainty-serving engine over frozen Shift-BNN
//! posteriors.
//!
//! Training is only half of the paper's story. The reason anyone trains a Bayesian network is
//! to *serve* calibrated uncertainty: every inference request runs `S` sampled forward passes
//! (`w = μ + ε∘σ` per pass) and aggregates them into a predictive mean, per-class variance
//! and predictive entropy. The ε-storage problem the paper solves for training reappears at
//! serving time in a different costume — a naive engine would materialize (or ship between
//! replicas) the per-request ε ensembles — and the same insight dissolves it: the ε stream is
//! a pure function of an LFSR seed, so a request carries only a 64-bit seed and **any** worker
//! replica regenerates the exact sampled ensemble locally. Nothing per-request is ever stored;
//! this is the serving-side mirror of the paper's Fig. 1 trick.
//!
//! The engine is built for determinism first:
//!
//! * [`batcher`] coalesces requests in a simulated **tick** domain (max-batch-size /
//!   max-wait-ticks policy). No wall clock is ever read on the result path, so batch
//!   composition — and therefore every latency statistic — is reproducible bit-for-bit.
//! * [`engine`] executes requests on the workspace's work-stealing pool
//!   ([`shift_bnn::pool`]), one frozen-posterior replica per worker
//!   ([`shift_bnn::pool::run_indexed_with`]); responses merge by request index, so a 1-worker
//!   engine and an N-worker engine produce **byte-identical** [`InferResponse`]s (enforced by
//!   `tests/serve_determinism.rs` and at runtime by the `serve_bench` binary).
//! * [`workload`] generates seeded synthetic open-loop request traces, the serving analogue
//!   of the training side's synthetic datasets — uniform, bursty, diurnal or adversarial
//!   arrival shapes over the same seeded inputs ([`ArrivalProcess`]).
//! * [`cluster`] scales the engine out: a deterministic tick-domain **cluster simulator** —
//!   router, N bounded-queue replica shards, admission control / load shedding,
//!   uncertainty-aware two-tier escalation and queue-depth-driven autoscaling — whose
//!   reports serialize byte-identically at any shard × worker count.
//! * [`faults`] injects deterministic failures into the cluster: a [`FaultPlan`] schedules
//!   shard crashes/recoveries, slow devices and corrupt checkpoints at exact ticks; the
//!   router reacts with tick-domain failover retries and a backlog-pressure degradation
//!   ladder (full `S` → reduced `S` → single-pass moment → shed), and every reaction is a
//!   typed, digest-pinned event.
//!
//! # Example
//!
//! ```
//! use bnn_serve::{BatchPolicy, InferenceEngine, ModelSpec, WorkloadSpec};
//!
//! let spec = ModelSpec::mlp(2021);
//! let policy = BatchPolicy { max_batch: 4, max_wait_ticks: 16 };
//! let engine = InferenceEngine::new(spec.clone(), policy, 2);
//! let trace = WorkloadSpec::uniform(12, 3, 4, 7).generate(&spec);
//! let report = engine.run(&trace);
//! assert_eq!(report.responses.len(), 12);
//! let p99 = report.latency_percentile(0.99);
//! assert!(p99 >= report.latency_percentile(0.50));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batcher;
pub mod builder;
pub mod cluster;
pub mod engine;
pub mod faults;
pub mod request;
pub mod spec;
pub mod stats;
pub mod workload;

pub use batcher::{plan_batches, BatchPlan, BatchPolicy};
pub use builder::EngineSpec;
pub use cluster::{
    AutoscalePolicy, Cluster, ClusterConfig, ClusterPlan, ClusterRunReport, EscalationEvent,
    RequestOutcome, RoutingPolicy, ScaleEvent, ShardSwap, ShedEvent, ShedReason,
};
pub use engine::{InferenceEngine, ServeReplica, ServeRunReport, Slowdown, VersionSwap};
pub use faults::{
    CheckpointFaultEvent, DegradeEvent, DegradeLadder, DegradeLevel, FaultEvent, FaultPlan,
    FaultTrace, RetryEvent, RetryPolicy,
};
pub use request::{mix_seed, InferRequest, InferResponse};
pub use spec::{CheckpointReplica, ModelSource, ModelSpec, ServeMode};
pub use stats::latency_percentile;
pub use workload::{ArrivalProcess, WorkloadSpec};
