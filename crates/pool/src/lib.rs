//! A small work-stealing pool of scoped `std::thread` workers.
//!
//! The container this workspace builds in has no crates.io access (no `rayon`, no
//! `crossbeam`), so the workspace brings its own scheduler. It began life inside the
//! design-space sweep engine of `shift-bnn` (which keeps `shift_bnn::pool` and `sweep::pool`
//! re-exports) and is now a bottom-of-the-stack crate because the tensor kernels
//! (`bnn-tensor`, for M-split parallel GEMM) and the serving engine (`bnn-serve`, for batched
//! Monte-Carlo inference jobs) share it. It is deliberately tiny:
//!
//! * jobs are the indices `0..jobs` of a known-size batch — exactly what a design-space grid
//!   enumeration, a coalesced inference workload, or a row-partitioned GEMM produces;
//! * every worker owns a deque seeded with a contiguous slice of the index space and pops work
//!   from its front; an idle worker *steals* the back half of the fullest victim's deque, so an
//!   unlucky worker stuck with the expensive B-VGG points sheds load to the ones that drew
//!   B-MLP;
//! * results are collected per worker as `(index, value)` pairs and merged by index, so the
//!   output order is the *grid* order regardless of which worker finished what when — the
//!   property both the sweep and serving determinism tests pin down;
//! * [`run_indexed_with`] additionally gives every worker a private state value built once per
//!   worker (an inference engine's model replica, for instance), so jobs that need an expensive
//!   mutable context don't rebuild it per job — and because results still merge by index, the
//!   state must never let one job's outcome depend on which worker ran it.
//!
//! Workers are `std::thread::scope` threads: they may borrow the job closure (and everything it
//! captures) from the caller's stack, and a panicking job propagates to the caller on join.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `job(i)` for every `i in 0..jobs` on `workers` threads and returns the results in
/// index order.
///
/// `workers` is clamped to `1..=jobs` (a single worker runs the batch inline on the calling
/// thread). The output at position `i` is `job(i)` — completion order never leaks into the
/// result, which is what makes sweep reports byte-identical across worker counts.
///
/// # Panics
///
/// Propagates the first panic raised by any job.
pub fn run_indexed<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(jobs, workers, |_| (), move |(), i| job(i))
}

/// Like [`run_indexed`], but every worker first builds a private state value with `init(w)`
/// (called on the worker's own thread) and each job receives `&mut` access to the state of
/// whichever worker runs it.
///
/// This is how the serving engine gives each worker its own replica of a frozen model
/// posterior: replicas are built once per worker, not once per request. Because work stealing
/// makes the job→worker assignment nondeterministic, `job(state, i)`'s *result* must be a pure
/// function of `i` — worker state may cache and scratch, but it must not change outcomes. The
/// determinism tests (sweep and serving) exist to catch violations.
///
/// The state type `S` needs neither `Send` nor `Sync`: each state is created, used and dropped
/// entirely on one worker thread.
///
/// # Panics
///
/// Propagates the first panic raised by `init` or any job.
pub fn run_indexed_with<S, T, I, F>(jobs: usize, workers: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs);
    if workers == 1 {
        let mut state = init(0);
        return (0..jobs).map(|i| job(&mut state, i)).collect();
    }

    // Seed each worker's deque with a contiguous slice of the index space; stealing rebalances
    // from there. Striding (round-robin) would balance statically but destroy the locality of
    // neighbouring grid points, and stealing makes static balance unnecessary anyway.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = jobs * w / workers;
            let hi = jobs * (w + 1) / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let mut results: Vec<Option<T>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);
    let slots = Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let init = &init;
            let job = &job;
            let slots = &slots;
            scope.spawn(move || {
                let mut state = init(w);
                let mut local: Vec<(usize, T)> = Vec::new();
                while let Some(index) = next_job(queues, w) {
                    local.push((index, job(&mut state, index)));
                }
                let mut slots = slots.lock().unwrap();
                for (index, value) in local {
                    slots[index] = Some(value);
                }
            });
        }
    });

    results.into_iter().map(|v| v.expect("every job index produced a result")).collect()
}

/// Pops the next index for worker `w`: front of its own deque, else steal from a victim.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(index) = queues[w].lock().unwrap().pop_front() {
        return Some(index);
    }
    steal_into(queues, w)
}

/// Steals the back half of the fullest other deque into worker `w`'s deque and returns the
/// first stolen index, or `None` when every deque is empty (the batch is done).
fn steal_into(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    loop {
        // Pick the victim with the most queued work. Lengths are read without holding more
        // than one lock at a time; a stale read just means another stealing round.
        let victim = (0..queues.len())
            .filter(|&v| v != w)
            .map(|v| (v, queues[v].lock().unwrap().len()))
            .max_by_key(|&(_, len)| len)
            .filter(|&(_, len)| len > 0);
        let (victim, _) = victim?;
        let stolen: Vec<usize> = {
            let mut q = queues[victim].lock().unwrap();
            let keep = q.len() / 2;
            q.split_off(keep).into()
        };
        // The victim may have drained between the length read and the lock; try again.
        if stolen.is_empty() {
            continue;
        }
        let mut own = queues[w].lock().unwrap();
        own.extend(stolen);
        return own.pop_front();
    }
}

/// The worker count the sweep engine uses by default: the machine's available parallelism,
/// capped at 8 (the paper grid has few hundred points; more threads only add contention).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "workers {workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let runs: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(100, 4, |i| runs[i].fetch_add(1, Ordering::SeqCst));
        assert!(runs.iter().all(|r| r.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_job_costs_still_complete_in_order() {
        // The first worker's contiguous slice is artificially expensive; stealing redistributes
        // it, and the merged output must still be in index order.
        let out = run_indexed(64, 4, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn steal_takes_the_back_half_of_the_fullest_victim() {
        let queues: Vec<Mutex<VecDeque<usize>>> = vec![
            Mutex::new(VecDeque::new()),
            Mutex::new((0..4).collect()),
            Mutex::new((10..20).collect()),
        ];
        // Worker 0 is empty; the fullest victim is queue 2, whose back half (15..20) moves over.
        let got = steal_into(&queues, 0).unwrap();
        assert_eq!(got, 15);
        assert_eq!(
            queues[0].lock().unwrap().iter().copied().collect::<Vec<_>>(),
            vec![16, 17, 18, 19]
        );
        assert_eq!(queues[2].lock().unwrap().len(), 5);
        assert_eq!(queues[1].lock().unwrap().len(), 4, "the smaller victim is untouched");
    }

    #[test]
    fn steal_returns_none_when_all_queues_are_empty() {
        let queues: Vec<Mutex<VecDeque<usize>>> =
            vec![Mutex::new(VecDeque::new()), Mutex::new(VecDeque::new())];
        assert!(steal_into(&queues, 0).is_none());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(run_indexed(3, 16, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_worker_runs_inline_without_spawning() {
        let main_thread = std::thread::current().id();
        let out = run_indexed(4, 1, |i| {
            assert_eq!(std::thread::current().id(), main_thread);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn default_workers_is_at_least_one() {
        let w = default_workers();
        assert!((1..=8).contains(&w));
    }

    #[test]
    fn worker_state_is_built_once_per_worker_and_reused() {
        let inits = AtomicUsize::new(0);
        let workers = 4;
        let out = run_indexed_with(
            64,
            workers,
            |w| {
                inits.fetch_add(1, Ordering::SeqCst);
                (w, 0usize) // (worker id, jobs served by this state)
            },
            |state, i| {
                state.1 += 1;
                i * 2
            },
        );
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        // One init per spawned worker — never one per job.
        let built = inits.load(Ordering::SeqCst);
        assert!(built <= workers, "built {built} states for {workers} workers");
        assert!(built >= 1);
    }

    #[test]
    fn single_worker_state_runs_inline() {
        let main_thread = std::thread::current().id();
        let out = run_indexed_with(
            5,
            1,
            |w| {
                assert_eq!(w, 0);
                assert_eq!(std::thread::current().id(), main_thread);
                Vec::<usize>::new()
            },
            |scratch, i| {
                scratch.push(i);
                scratch.len()
            },
        );
        // A single worker serves all jobs in order with one accumulating state.
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn stateful_results_are_deterministic_across_worker_counts() {
        let baseline = run_indexed_with(40, 1, |_| (), |(), i| i * i + 1);
        for workers in [2, 3, 8] {
            let got = run_indexed_with(40, workers, |_| (), |(), i| i * i + 1);
            assert_eq!(got, baseline, "workers {workers}");
        }
    }
}
