//! Criterion benchmarks of the accelerator simulator itself: how long producing the paper's
//! per-model reports takes (the analytic model must stay fast enough to sweep sample counts and
//! designs), plus the cycle-level RC-tile micro-simulator.

use bnn_arch::config::PeTile;
use bnn_arch::microsim::RcTileSimulator;
use bnn_arch::{simulate_training, EnergyModel};
use bnn_lfsr::Grng;
use bnn_models::ModelKind;
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::Tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use shift_bnn::designs::DesignKind;

fn bench_analytic_model(c: &mut Criterion) {
    let energy = EnergyModel::default();
    let mut group = c.benchmark_group("analytic_simulation");
    for kind in [ModelKind::Mlp, ModelKind::LeNet, ModelKind::Vgg16, ModelKind::ResNet18] {
        let model = kind.bnn();
        group.bench_with_input(
            BenchmarkId::new("shift_bnn_s16", kind.paper_name()),
            &model,
            |b, m| {
                let cfg = DesignKind::ShiftBnn.config();
                b.iter(|| black_box(simulate_training(&cfg, m, 16, &energy)));
            },
        );
    }
    group.finish();
}

fn bench_design_space_sweep(c: &mut Criterion) {
    let energy = EnergyModel::default();
    c.bench_function("four_designs_five_models_s16", |b| {
        b.iter(|| {
            for kind in ModelKind::all() {
                let model = kind.bnn();
                for design in DesignKind::all() {
                    black_box(simulate_training(&design.config(), &model, 16, &energy));
                }
            }
        });
    });
}

fn bench_microsim(c: &mut Criterion) {
    let sim = RcTileSimulator::new(PeTile { rows: 4, cols: 4 });
    let geom = ConvGeometry { in_channels: 3, out_channels: 8, kernel: 3, stride: 1, padding: 1 };
    let input = Tensor::filled(&[3, 16, 16], 0.5);
    let mu = Tensor::filled(&[8, 3, 3, 3], 0.1);
    let sigma = Tensor::filled(&[8, 3, 3, 3], 0.05);
    c.bench_function("microsim_conv_16x16_3to8", |b| {
        b.iter(|| {
            let mut grng = Grng::shift_bnn_default(3).unwrap();
            black_box(sim.forward_conv(&geom, &input, &mu, &sigma, &mut grng));
        });
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_analytic_model, bench_design_space_sweep, bench_microsim
}

fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(benches);
