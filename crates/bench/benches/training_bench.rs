//! Criterion benchmarks of the Bayes-by-Backprop training step: the cost of one training
//! iteration under the baseline ε handling (store + replay) versus Shift-BNN's LFSR retrieval,
//! on MLP- and LeNet-style networks.

use bnn_tensor::Tensor;
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trainer(strategy: EpsilonStrategy, conv: bool) -> (Trainer, Tensor) {
    let mut rng = StdRng::seed_from_u64(5);
    let config = BayesConfig::default();
    let (network, input) = if conv {
        (Network::bayes_lenet(&[3, 16, 16], 4, config, &mut rng), Tensor::filled(&[3, 16, 16], 0.3))
    } else {
        (Network::bayes_mlp(128, &[96], 4, config, &mut rng), Tensor::filled(&[128], 0.3))
    };
    let t =
        Trainer::new(network, TrainerConfig { samples: 4, learning_rate: 0.05, strategy, seed: 9 })
            .unwrap();
    (t, input)
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step_s4");
    for (name, conv) in [("b_mlp", false), ("b_lenet", true)] {
        for (strategy_name, strategy) in [
            ("store_replay", EpsilonStrategy::StoreReplay),
            ("lfsr_retrieve", EpsilonStrategy::LfsrRetrieve),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, strategy_name),
                &strategy,
                |b, &strategy| {
                    let (mut t, input) = trainer(strategy, conv);
                    b.iter(|| black_box(t.train_example(&input, 1).unwrap()));
                },
            );
        }
    }
    group.finish();
}

fn bench_epoch(c: &mut Criterion) {
    c.bench_function("train_epoch_b_mlp_16_examples", |b| {
        let (mut t, _) = trainer(EpsilonStrategy::LfsrRetrieve, false);
        let data = SyntheticDataset::generate(&[128], 4, 4, 0.2, 3);
        b.iter(|| black_box(t.train_epoch(&data).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_train_step, bench_epoch
}

fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(benches);
