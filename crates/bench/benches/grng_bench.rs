//! Criterion benchmarks of the Gaussian RNG: ε generation and retrieval rates, and the ablation
//! called out in DESIGN.md — the incremental pop-count ("initial sum + bit update") path of
//! Fig. 8(b) versus a full adder-tree recount of the pattern.

use bnn_lfsr::{Grng, GrngMode};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_generation_and_retrieval(c: &mut Criterion) {
    let mut group = c.benchmark_group("grng");
    group.bench_function("generate_1k", |b| {
        let mut grng = Grng::shift_bnn_default(11).unwrap();
        b.iter(|| {
            for _ in 0..1000 {
                black_box(grng.next_epsilon());
            }
        });
    });
    group.bench_function("generate_then_retrieve_1k", |b| {
        let mut grng = Grng::shift_bnn_default(13).unwrap();
        b.iter(|| {
            grng.set_mode(GrngMode::Forward);
            for _ in 0..1000 {
                black_box(grng.next_epsilon());
            }
            grng.set_mode(GrngMode::Backward);
            for _ in 0..1000 {
                black_box(grng.retrieve_epsilon());
            }
        });
    });
    group.finish();
}

fn bench_incremental_vs_recount(c: &mut Criterion) {
    let mut group = c.benchmark_group("epsilon_ablation");
    group.bench_function("incremental_popcount", |b| {
        let mut grng = Grng::shift_bnn_default(17).unwrap();
        b.iter(|| {
            for _ in 0..256 {
                black_box(grng.next_epsilon());
            }
        });
    });
    group.bench_function("full_recount_adder_tree", |b| {
        let mut grng = Grng::shift_bnn_default(17).unwrap();
        b.iter(|| {
            for _ in 0..256 {
                grng.next_epsilon();
                black_box(grng.recount_epsilon());
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_generation_and_retrieval, bench_incremental_vs_recount
}

fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(benches);
