//! Criterion benchmarks of the reversible LFSR: forward and backward shifting throughput at the
//! widths relevant to the paper (the 8-bit illustrative example and the 256-bit GRNG register),
//! the quantity that bounds how fast ε can be produced or retrieved on chip.

use bnn_lfsr::Lfsr;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_lfsr_shifting(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfsr_shift");
    for &width in &[8usize, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::new("forward", width), &width, |b, &w| {
            let mut lfsr = Lfsr::with_maximal_taps(w, 0xACE1).unwrap();
            b.iter(|| {
                for _ in 0..64 {
                    black_box(lfsr.step_forward());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("backward", width), &width, |b, &w| {
            let mut lfsr = Lfsr::with_maximal_taps(w, 0xACE1).unwrap();
            lfsr.step_forward_by(1024);
            b.iter(|| {
                for _ in 0..64 {
                    black_box(lfsr.step_backward());
                }
            });
        });
    }
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    c.bench_function("lfsr_round_trip_256bit_1k_steps", |b| {
        let mut lfsr = Lfsr::shift_bnn_default(7).unwrap();
        b.iter(|| {
            lfsr.step_forward_by(black_box(1000));
            lfsr.step_backward_by(black_box(1000));
        });
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_lfsr_shifting, bench_round_trip
}

fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(benches);
