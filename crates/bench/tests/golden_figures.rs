//! Golden-output conformance suite: every figure/table computation runs through the sweep
//! engine and its key scalar outcomes are asserted against the checked-in golden values of
//! `EXPERIMENTS.md`, with explicit tolerances — so the recorded numbers can no longer drift
//! silently when the simulator, the models or the sweep engine change.
//!
//! This file is a custom harness (`harness = false` in `Cargo.toml`):
//!
//! * the simulator-grid goldens (Figs. 2, 3, 10–14, Table 2) are milliseconds of analytic
//!   simulation and run on every plain `cargo test`;
//! * the training-based goldens (Fig. 9, Table 1) train real networks for many epochs and run
//!   only when the literal flag `-- --include-golden` is passed (CI's sweep job does).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::OnceLock;

use bnn_models::ModelKind;
use shift_bnn::designs::DesignKind;
use shift_bnn::sweep::json::Json;
use shift_bnn::sweep::summary::SweepSummary;
use shift_bnn::sweep::{paper_sweep, SweepPrecision, SweepReport};
use shift_bnn_bench::chaos_views::{chaos_summary_json, run_chaos_grid};
use shift_bnn_bench::cluster_views::{cluster_summary_json, run_cluster_grid, run_cluster_stress};
use shift_bnn_bench::moment_views::{moment_summary_json, run_moment_grid};
use shift_bnn_bench::obs_views::{obs_summary_json, run_obs_grid};
use shift_bnn_bench::regression;
use shift_bnn_bench::serve_views::{run_serve_grid, serve_summary_json};
use shift_bnn_bench::views;

fn sweep() -> &'static SweepReport {
    static SWEEP: OnceLock<SweepReport> = OnceLock::new();
    SWEEP.get_or_init(paper_sweep)
}

#[track_caller]
fn assert_close(what: &str, actual: f64, golden: f64, tol: f64) {
    assert!(
        (actual - golden).abs() <= tol,
        "{what}: measured {actual} drifted from golden {golden} (tolerance {tol})"
    );
}

// ---------------------------------------------------------------------------------------------
// Sweep-based goldens (fast; always run)
// ---------------------------------------------------------------------------------------------

fn golden_fig02_transfer_ratios() {
    let view = views::fig02(sweep());
    let avg = |s: usize| {
        view.average_transfer.iter().find(|(c, _)| *c == s).expect("headline sample count").1
    };
    assert_close("Fig. 2 avg transfer at S=8", avg(8), 8.0, 0.05);
    assert_close("Fig. 2 avg transfer at S=32", avg(32), 27.2, 0.05);
    let row = view
        .rows
        .iter()
        .find(|r| r.label == "MLP / B-MLP" && r.samples == 16)
        .expect("B-MLP S=16 row");
    assert_close("Fig. 2 B-MLP S=16 transfer", row.transfer, 14.0, 0.05);
    assert_close("Fig. 2 B-MLP S=16 energy", row.energy, 13.8, 0.05);
    assert_close("Fig. 2 B-MLP S=16 latency", row.latency, 8.8, 0.05);
}

fn golden_fig03_epsilon_shares() {
    let view = views::fig03(sweep());
    let golden = [0.848, 0.615, 0.827, 0.634, 0.462];
    for ((model, _, eps, _), golden) in view.rows.iter().zip(golden) {
        assert_close(&format!("Fig. 3 {model} epsilon share"), *eps, golden, 0.001);
    }
    assert_close("Fig. 3 average epsilon share", view.average_epsilon, 0.677, 0.001);
}

fn golden_fig10_energy_reductions() {
    let view = views::fig10(sweep());
    let golden_rows = [
        ("B-MLP", [1.000, 0.153, 0.994, 0.146]),
        ("B-LeNet", [1.000, 0.405, 0.830, 0.235]),
        ("B-AlexNet", [1.000, 0.223, 0.993, 0.214]),
        ("B-VGG", [1.000, 0.515, 0.887, 0.396]),
        ("B-ResNet", [1.000, 0.656, 0.814, 0.463]),
    ];
    for (row, (model, [mn, mnshift, rc, shift])) in view.rows.iter().zip(golden_rows) {
        assert_eq!(row.model, model);
        assert_close(&format!("Fig. 10 {model} MN-Acc"), row.mn, mn, 0.0005);
        assert_close(&format!("Fig. 10 {model} MNShift-Acc"), row.mnshift, mnshift, 0.0005);
        assert_close(&format!("Fig. 10 {model} RC-Acc"), row.rc, rc, 0.0005);
        assert_close(&format!("Fig. 10 {model} Shift-BNN"), row.shift, shift, 0.0005);
    }
    assert_close("Fig. 10 reduction vs RC-Acc", view.reduction_vs_rc, 0.704, 0.001);
    assert_close("Fig. 10 reduction vs MN-Acc", view.reduction_vs_mn, 0.733, 0.001);
    assert_close("Fig. 10 reduction vs MNShift-Acc", view.reduction_vs_mnshift, 0.220, 0.001);
}

fn golden_fig11_speedups() {
    let view = views::fig11(sweep());
    assert_close("Fig. 11 Shift-BNN avg speedup over RC-Acc", view.shift_over_rc, 1.70, 0.01);
    let bmlp = &view.rows[0];
    assert_close("Fig. 11 B-MLP Shift-BNN speedup", bmlp.shift, 6.74, 0.01);
    assert_close("Fig. 11 B-LeNet Shift-BNN speedup", view.rows[1].shift, 1.89, 0.01);
}

fn golden_fig12_efficiency_ratios() {
    let view = views::fig12(sweep());
    assert_close("Fig. 12 Shift-BNN vs RC-Acc", view.shift_vs_rc, 3.38, 0.01);
    assert_close("Fig. 12 Shift-BNN vs MN-Acc", view.shift_vs_mn, 3.75, 0.01);
    assert_close("Fig. 12 Shift-BNN vs GPU", view.shift_vs_gpu, 3.66, 0.01);
    let blenet = &view.rows[1];
    assert_close("Fig. 12 B-LeNet GPU point", blenet.gpu, 2.78, 0.01);
}

fn golden_fig13_scalability_endpoints() {
    let view = views::fig13(sweep());
    let points =
        |kind: ModelKind| &view.models.iter().find(|(k, _)| *k == kind).expect("Fig. 13 model").1;
    let blenet = points(ModelKind::LeNet);
    assert_close(
        "Fig. 13 B-LeNet reduction at S=4",
        blenet.first().unwrap().shift_energy_reduction,
        0.494,
        0.001,
    );
    assert_close(
        "Fig. 13 B-LeNet reduction at S=128",
        blenet.last().unwrap().shift_energy_reduction,
        0.799,
        0.001,
    );
    let bmlp = points(ModelKind::Mlp);
    assert_close(
        "Fig. 13 B-MLP reduction at S=16",
        bmlp.iter().find(|p| p.samples == 16).unwrap().shift_energy_reduction,
        0.853,
        0.001,
    );
    for (kind, points) in &view.models {
        for pair in points.windows(2) {
            assert!(
                pair[1].shift_energy_reduction >= pair[0].shift_energy_reduction - 5e-3,
                "Fig. 13 {}: reduction must grow with S",
                kind.paper_name()
            );
        }
    }
}

fn golden_fig14_footprint_ratios() {
    let view = views::fig14(sweep());
    let golden_shift_footprint = [0.20, 0.25, 0.21, 0.25, 0.31];
    for (row, golden) in view.footprint_rows.iter().zip(golden_shift_footprint) {
        assert_close(
            &format!("Fig. 14 {} Shift-BNN footprint", row.model),
            row.shift,
            golden,
            0.005,
        );
    }
    assert_close(
        "Fig. 14 average footprint reduction",
        view.average_footprint_reduction,
        0.756,
        0.001,
    );
    // The mechanism behind the ratios, pinned exactly: reversion designs move and store zero ε.
    for kind in ModelKind::all() {
        for design in [DesignKind::MnShiftAcc, DesignKind::ShiftBnn] {
            let record = sweep()
                .record(design, kind.paper_name(), 16, SweepPrecision::Bits16)
                .expect("grid point");
            assert_eq!(record.report.dram_traffic.epsilon, 0, "{}", kind.paper_name());
            assert_eq!(record.report.footprint.epsilon_bytes, 0, "{}", kind.paper_name());
        }
    }
}

fn golden_table2_resource_totals() {
    let view = views::table2();
    let golden = [
        ("PE tile", 985, 478, 16, 0, 0.076),
        ("Shift array", 222, 464, 0, 0, 0.016),
        ("Function units", 785, 399, 32, 0, 0.008),
        ("GRNGs", 2277, 4224, 0, 0, 0.005),
        ("NBin/NBout", 0, 0, 0, 48, 0.112),
    ];
    for ((name, usage), (g_name, lut, ff, dsp, bram, power)) in view.components.iter().zip(golden) {
        assert_eq!(name, g_name);
        assert_eq!((usage.lut, usage.ff, usage.dsp, usage.bram), (lut, ff, dsp, bram), "{name}");
        assert_close(&format!("Table 2 {name} power"), usage.avg_power_w, power, 0.0005);
    }
    assert_eq!((view.spu.lut, view.spu.ff, view.spu.dsp, view.spu.bram), (4269, 5565, 48, 48));
    assert_close("Table 2 SPU power", view.spu.avg_power_w, 0.217, 0.0005);
    let a = &view.accelerator;
    assert_eq!((a.lut, a.ff, a.dsp, a.bram), (72504, 92140, 768, 882));
    assert_close("Table 2 accelerator power", a.avg_power_w, 3.822, 0.0005);
}

// ---------------------------------------------------------------------------------------------
// Committed regression baselines: the compact summaries in the repo root must match a fresh
// recomputation exactly. These are the same comparisons the CI `bench_regression` gate runs
// against nightly full-grid artifacts; here they run on every `cargo test`, so a simulator or
// engine change cannot shift the committed numbers without updating the baseline in the diff.
// ---------------------------------------------------------------------------------------------

fn repo_root_file(name: &str) -> Json {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {name}: {e}"))
}

fn assert_matches_baseline(name: &str, fresh: &Json) {
    let baseline = repo_root_file(name);
    let mismatches = regression::compare(&baseline, fresh, 1e-12);
    assert!(
        mismatches.is_empty(),
        "{name} drifted from a fresh recomputation ({} mismatch(es)):\n  {}\n\
         regenerate it with the sweep_all / serve_bench binary and commit the update",
        mismatches.len(),
        mismatches.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n  ")
    );
}

fn golden_sweep_summary_matches_committed() {
    // The committed baseline was produced by a full-grid `sweep_all` run, but the summary only
    // reads the S = 16 / 16-bit reference slice — which the reduced CI grid shares, so a
    // 40-point sweep reproduces the committed bytes exactly.
    let report = shift_bnn::sweep::run_sweep(
        &shift_bnn::sweep::SweepGrid::reduced(),
        2,
        &bnn_arch::EnergyModel::default(),
    );
    let fresh = SweepSummary::from_report(&report).to_json();
    assert_matches_baseline("BENCH_sweep_summary.json", &fresh);
}

fn golden_serve_summary_matches_committed() {
    // Recompute the full (non-reduced) serving grid; every scalar in the summary is
    // tick-domain or a response digest, so worker count and machine cannot perturb it.
    let fresh = serve_summary_json(&run_serve_grid(false, 2), false);
    assert_matches_baseline("BENCH_serve_summary.json", &fresh);
}

fn golden_moment_summary_matches_committed() {
    // Recompute the full moment-vs-MC grid; every scalar is tick-domain, a response digest,
    // or a deterministic accuracy deviation, so worker count and machine cannot perturb it.
    let fresh = moment_summary_json(&run_moment_grid(false, 2), false);
    assert_matches_baseline("BENCH_moment_summary.json", &fresh);
}

fn golden_cluster_summary_matches_committed() {
    // Recompute the full cluster grid (real engines) and the plan-only stress arm; every
    // scalar is tick-domain or a digest, so shard/worker parallelism cannot perturb it.
    let fresh =
        cluster_summary_json(&run_cluster_grid(false, 2), &run_cluster_stress(false), false);
    assert_matches_baseline("BENCH_cluster_summary.json", &fresh);
}

fn golden_chaos_summary_matches_committed() {
    // Recompute the full chaos grid (faults + failover + degradation ladder on real
    // engines); every scalar is tick-domain or a digest, so worker parallelism cannot
    // perturb it — any drift means the fault path's determinism contract broke.
    let fresh = chaos_summary_json(&run_chaos_grid(false, 2), false);
    assert_matches_baseline("BENCH_chaos_summary.json", &fresh);
}

fn golden_obs_summary_matches_committed() {
    // Recompute the full traced-replay grid. The run itself asserts the tracing contract
    // (byte-identical responses tracing-on vs -off, exact 100% stage attribution); this
    // golden then pins every digest and attribution percentile against the committed
    // baseline — drift means the recorder changed what the cluster does or sees.
    let fresh = obs_summary_json(&run_obs_grid(false, 2), false);
    assert_matches_baseline("BENCH_obs_summary.json", &fresh);
}

// ---------------------------------------------------------------------------------------------
// Training-based goldens (slow; only with `-- --include-golden`)
// ---------------------------------------------------------------------------------------------

fn golden_fig09_bit_identical_training() {
    let view = views::fig09(12);
    assert!(view.identical, "Fig. 9: the two training curves must be bit-identical");
    assert_eq!(view.baseline_stored, 50_878_080, "Fig. 9 baseline stored epsilons");
    assert_eq!(view.shift_stored, 0, "Fig. 9 Shift-BNN stored epsilons");
    assert_close("Fig. 9 epoch-1 loss", view.rows[0].loss_baseline as f64, 6.8850, 5e-4);
    assert_close("Fig. 9 epoch-12 loss", view.rows[11].loss_baseline as f64, 6.4339, 5e-4);
}

fn golden_table1_precision_accuracies() {
    let view = views::table1();
    let golden: [(&str, [Option<f64>; 3]); 5] = [
        ("B-MLP", [Some(1.0), Some(1.0), Some(1.0)]),
        ("B-LeNet", [Some(0.917), Some(1.0), Some(1.0)]),
        ("B-AlexNet (reduced)", [Some(0.500), Some(1.0), Some(0.917)]),
        ("B-VGG (reduced)", [Some(0.917), Some(0.917), Some(1.0)]),
        ("B-ResNet (reduced)", [Some(1.0), Some(1.0), Some(0.917)]),
    ];
    for (row, (name, accs)) in view.rows.iter().zip(golden) {
        assert_eq!(row.network, name);
        for (i, (measured, golden)) in row.accuracies.iter().zip(accs).enumerate() {
            match (measured, golden) {
                (Some(m), Some(g)) => {
                    assert_close(&format!("Table 1 {name} precision column {i}"), *m, g, 0.002)
                }
                (None, None) => {}
                other => panic!("Table 1 {name} column {i}: divergence mismatch {other:?}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------------------------

fn main() {
    let include_golden = std::env::args().any(|a| a == "--include-golden");
    let fast: &[(&str, fn())] = &[
        ("fig02_transfer_ratios", golden_fig02_transfer_ratios),
        ("fig03_epsilon_shares", golden_fig03_epsilon_shares),
        ("fig10_energy_reductions", golden_fig10_energy_reductions),
        ("fig11_speedups", golden_fig11_speedups),
        ("fig12_efficiency_ratios", golden_fig12_efficiency_ratios),
        ("fig13_scalability_endpoints", golden_fig13_scalability_endpoints),
        ("fig14_footprint_ratios", golden_fig14_footprint_ratios),
        ("table2_resource_totals", golden_table2_resource_totals),
        ("sweep_summary_matches_committed", golden_sweep_summary_matches_committed),
        ("serve_summary_matches_committed", golden_serve_summary_matches_committed),
        ("moment_summary_matches_committed", golden_moment_summary_matches_committed),
        ("cluster_summary_matches_committed", golden_cluster_summary_matches_committed),
        ("chaos_summary_matches_committed", golden_chaos_summary_matches_committed),
        ("obs_summary_matches_committed", golden_obs_summary_matches_committed),
    ];
    let heavy: &[(&str, fn())] = &[
        ("fig09_bit_identical_training", golden_fig09_bit_identical_training),
        ("table1_precision_accuracies", golden_table1_precision_accuracies),
    ];

    let mut failures = 0usize;
    let mut run = |name: &str, test: fn()| match catch_unwind(AssertUnwindSafe(test)) {
        Ok(()) => println!("golden {name} ... ok"),
        Err(err) => {
            failures += 1;
            let msg = err
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| err.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            println!("golden {name} ... FAILED\n    {msg}");
        }
    };

    for &(name, test) in fast {
        run(name, test);
    }
    if include_golden {
        for &(name, test) in heavy {
            run(name, test);
        }
    } else {
        for (name, _) in heavy {
            println!("golden {name} ... skipped (pass `-- --include-golden` to run)");
        }
    }

    let executed = fast.len() + if include_golden { heavy.len() } else { 0 };
    println!("\ngolden conformance: {} executed, {failures} failed", executed);
    if failures > 0 {
        std::process::exit(1);
    }
}
