//! Enforces the scratch-arena rewrite's core contract at the allocator: after warmup, a
//! steady-state training iteration and a steady-state served request perform **zero** heap
//! allocations (and zero deallocations — churn would mean buffers were dropped instead of
//! recycled).
//!
//! The whole test binary runs under a counting `#[global_allocator]`. The counter is
//! process-global, so each test holds one mutex for its *entire* body — construction and
//! warmup included — ensuring no other test thread's (heavily allocating) setup can land
//! inside a measured zero-allocation window.

use shift_bnn_bench::alloc::CountingAlloc;
use shift_bnn_bench::hot::{MomentProbe, ServeProbe, TracedServeProbe, TrainingProbe};
use std::sync::Mutex;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

/// Serializes whole test bodies so parallel test threads cannot pollute each other's
/// counter windows.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn measure(mut work: impl FnMut()) -> (u64, u64) {
    let (a0, d0) = (ALLOC.allocations(), ALLOC.deallocations());
    work();
    (ALLOC.allocations() - a0, ALLOC.deallocations() - d0)
}

#[test]
fn steady_state_training_iteration_allocates_nothing() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let mut probe = TrainingProbe::new();
    // Warmup: grows the scratch arenas, caches and Vec capacities.
    probe.run(2);
    let (allocs, deallocs) = measure(|| probe.run(3));
    assert_eq!(allocs, 0, "training iterations allocated in the steady state");
    assert_eq!(deallocs, 0, "training iterations freed buffers instead of recycling them");
}

#[test]
fn steady_state_served_request_allocates_nothing() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let mut probe = ServeProbe::new();
    probe.run(2);
    let (allocs, deallocs) = measure(|| probe.run(5));
    assert_eq!(allocs, 0, "served requests allocated in the steady state");
    assert_eq!(deallocs, 0, "served requests freed buffers instead of recycling them");
    assert!(probe.last_entropy() >= 0.0);
}

#[test]
fn steady_state_moment_request_allocates_nothing() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let mut probe = MomentProbe::new();
    probe.run(2);
    let (allocs, deallocs) = measure(|| probe.run(5));
    assert_eq!(allocs, 0, "analytic requests allocated in the steady state");
    assert_eq!(deallocs, 0, "analytic requests freed buffers instead of recycling them");
    assert!(probe.last_entropy() >= 0.0);
}

#[test]
fn steady_state_traced_request_allocates_nothing() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // The enabled recorder's recording path: serving plus five `record()` calls per request
    // into warmed capacity must stay invisible to the allocator.
    let mut probe = TracedServeProbe::new();
    probe.run(5);
    let (allocs, deallocs) = measure(|| probe.run(5));
    assert_eq!(allocs, 0, "traced requests allocated in the steady state");
    assert_eq!(deallocs, 0, "traced requests freed buffers instead of recycling them");
    assert_eq!(probe.events_recorded(), 5 * TracedServeProbe::EVENTS_PER_REQUEST);
    assert!(probe.last_entropy() >= 0.0);
}

#[test]
fn the_counter_itself_counts() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // Sanity: the instrument is live (a plain Vec allocation registers).
    let (allocs, _) = measure(|| {
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
    });
    assert!(allocs >= 1, "counting allocator is not installed");
}
