//! The `obs_bench` traced-replay grid and its deterministic summary.
//!
//! Same division of labor as [`crate::chaos_views`]: the binary drives the grid and
//! measures wall clocks; this module owns what the grid *is* and which scalars are
//! deterministic enough to commit (`BENCH_obs_summary.json`) and regression-check. Every
//! recorded number is tick-domain — event counts, stream digests, per-stage p50/p99
//! attribution tables, metrics-registry digests — so the committed summary reproduces
//! bit-for-bit on any machine at any worker count.
//!
//! The grid replays the chaos benchmark's everything-at-once `crash_storm` scenario under
//! all four arrival processes, plus a fault-free two-tier escalation run, each **twice**:
//! once untraced and once through a [`TraceRecorder`]. Every record asserts the tracing
//! contract before it is committed:
//!
//! * responses, decision events and fault events are **byte-identical** tracing-on vs
//!   tracing-off;
//! * the recorder-derived serialization of sheds/escalations/scales and of the fault trace
//!   equals the report's own (one emission code path, same committed digests);
//! * span assembly attributes **exactly 100%** of every answered request's end-to-end tick
//!   latency to the five named stages (queue / batch_wait / compute / retry_backoff /
//!   escalation) — the issue's ≥ 99% acceptance bar, met with equality.
//!
//! A separate profile section replays B-LeNet requests through
//! [`ServeReplica::answer_profiled`] and commits the per-request hot-path cost — per-tier
//! GEMM calls/MACs, ε values, scratch high water — the numbers the paper's traffic/energy
//! argument is about.

use bnn_obs::{
    assemble_traces, export, percentile, Event, Registry, StageBreakdown, TraceRecorder, STAGES,
};
use bnn_serve::{
    ArrivalProcess, Cluster, ClusterConfig, ClusterRunReport, EngineSpec, FaultPlan, InferRequest,
    InferResponse, ModelSpec, RoutingPolicy, ServeReplica,
};
use shift_bnn::sweep::json::Json;

use crate::chaos_views::{
    chaos_arrivals, chaos_cluster_config, chaos_request_count, chaos_scenarios,
    CHAOS_INTERARRIVAL_TICKS, CHAOS_SAMPLES, CHAOS_WEIGHT_SEED, CHAOS_WORKLOAD_SEED,
};

/// Two-tier escalation parameters of the grid's fault-free arm (the cluster benchmark's
/// escalation example): 1-sample low pass, 8-sample high pass, escalate above 1.35 nats.
pub const OBS_TWO_TIER: RoutingPolicy =
    RoutingPolicy::TwoTier { low_samples: 1, high_samples: 8, entropy_threshold: 1.35 };

/// One point of the obs grid: a named scenario (fault plan + swaps + routing) × arrival.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Stable record key.
    pub scenario: &'static str,
    /// The arrival shape of the trace.
    pub arrival: ArrivalProcess,
    /// The cluster to run (routing differs between the chaos and two-tier arms).
    pub cluster: ClusterConfig,
    /// The fault plan.
    pub faults: FaultPlan,
    /// Scheduled hot-swaps.
    pub swaps: Vec<bnn_serve::ShardSwap>,
}

/// One completed grid point: the (traced) report plus its recorded event stream.
#[derive(Debug, Clone)]
pub struct ObsRun {
    /// The grid point.
    pub config: ObsConfig,
    /// The traced run's report (asserted byte-identical to the untraced run's).
    pub report: ClusterRunReport,
    /// The recorded stream, in recording order.
    pub events: Vec<Event>,
}

/// Enumerates the grid in committed order: `crash_storm` × the four arrivals, then the
/// fault-free `two_tier` escalation run under uniform arrivals.
pub fn obs_configs(reduced: bool, workers: usize) -> Vec<ObsConfig> {
    let storm = chaos_scenarios(reduced)
        .into_iter()
        .find(|s| s.name == "crash_storm")
        .expect("chaos grid defines crash_storm");
    let mut configs: Vec<ObsConfig> = chaos_arrivals()
        .into_iter()
        .map(|arrival| ObsConfig {
            scenario: "crash_storm",
            arrival,
            cluster: chaos_cluster_config(workers),
            faults: storm.faults.clone(),
            swaps: storm.swaps.clone(),
        })
        .collect();
    let mut two_tier = chaos_cluster_config(workers);
    two_tier.routing = OBS_TWO_TIER;
    configs.push(ObsConfig {
        scenario: "two_tier",
        arrival: ArrivalProcess::Uniform,
        cluster: two_tier,
        faults: FaultPlan::none(),
        swaps: Vec::new(),
    });
    configs
}

fn obs_trace(arrival: ArrivalProcess, requests: usize) -> Vec<InferRequest> {
    let spec = ModelSpec::mlp(CHAOS_WEIGHT_SEED);
    bnn_serve::WorkloadSpec::uniform(
        requests,
        CHAOS_INTERARRIVAL_TICKS,
        CHAOS_SAMPLES,
        CHAOS_WORKLOAD_SEED,
    )
    .with_arrival(arrival)
    .generate(&spec)
}

/// Runs every grid config traced *and* untraced with `workers` pool threads per shard and
/// asserts the tracing contract on each: byte-identical responses/events/faults between the
/// two runs, recorder-derived serialization equal to the report's, and exact 100% stage
/// coverage for every answered request.
///
/// # Panics
///
/// Panics if any record violates the tracing contract — that is the point.
pub fn run_obs_grid(reduced: bool, workers: usize) -> Vec<ObsRun> {
    let requests = chaos_request_count(reduced);
    obs_configs(reduced, workers)
        .into_iter()
        .map(|config| {
            let trace = obs_trace(config.arrival, requests);
            let cluster = Cluster::new(config.cluster.clone());
            let untraced = cluster.run_with_faults(&trace, &config.swaps, &config.faults);
            let mut rec = TraceRecorder::new();
            let report = cluster.run_traced(&trace, &config.swaps, &config.faults, &mut rec);
            let key = format!("{} x {}", config.scenario, config.arrival.label());

            // Tracing on vs off: the report's canonical bytes must not move at all.
            assert_eq!(
                untraced.responses_json(),
                report.responses_json(),
                "{key}: responses must be byte-identical tracing-on vs tracing-off"
            );
            assert_eq!(untraced.events_json(), report.events_json(), "{key}: decision events");
            assert_eq!(untraced.fault_events_json(), report.fault_events_json(), "{key}: faults");

            // One emission code path: serializing the recorded stream reproduces the
            // report's own decision/fault documents byte for byte.
            let events = rec.into_events();
            assert_eq!(
                export::decision_events_json(&events).to_compact(),
                report.events_json(),
                "{key}: recorder-derived decision events must match the report's"
            );
            assert_eq!(
                export::fault_events_json(&events).to_compact(),
                report.fault_events_json(),
                "{key}: recorder-derived fault events must match the report's"
            );

            // Attribution: exactly 100% of every answered request's latency lands in the
            // five named stages (the acceptance bar is ≥ 99%; the tiling is exact).
            let traces = assemble_traces(&events).expect("recorded spans are well-formed");
            assert_eq!(
                traces.len(),
                report.submitted(),
                "{key}: every submitted request has a span tree"
            );
            for t in &traces {
                assert_eq!(
                    t.breakdown.coverage(),
                    1.0,
                    "{key}: request {} attribution must tile its window exactly",
                    t.request
                );
            }
            assert_eq!(
                traces.iter().filter(|t| t.breakdown.answered).count(),
                report.answered(),
                "{key}: answered span trees match the report"
            );

            ObsRun { config, report, events }
        })
        .collect()
}

/// Nearest-rank p50/p99 plus the total over one stage's per-request tick values.
fn stage_stats(values: &[u64]) -> Json {
    let total: u64 = values.iter().sum();
    Json::obj([
        ("p50", Json::UInt(percentile(values, 0.50))),
        ("p99", Json::UInt(percentile(values, 0.99))),
        ("total_ticks", Json::UInt(total)),
    ])
}

/// The p50/p99 stage-attribution table over the answered requests' breakdowns: one row per
/// named stage plus the end-to-end row, all in ticks.
pub fn stage_attribution_json(breakdowns: &[&StageBreakdown]) -> Json {
    let mut rows: Vec<(String, Json)> = Vec::new();
    for (s, stage) in STAGES.iter().enumerate() {
        let values: Vec<u64> = breakdowns.iter().map(|b| b.stage_ticks()[s]).collect();
        rows.push((stage.to_string(), stage_stats(&values)));
    }
    let e2e: Vec<u64> = breakdowns.iter().map(|b| b.total()).collect();
    rows.push(("end_to_end".to_string(), stage_stats(&e2e)));
    Json::obj(rows)
}

/// Requests the profile section replays through the B-LeNet replica.
pub fn obs_profile_requests(reduced: bool) -> usize {
    if reduced {
        4
    } else {
        16
    }
}

/// Replays B-LeNet uncertainty requests through [`ServeReplica::answer_profiled`] on the
/// calling thread and serializes the per-request hot-path costs: per-tier GEMM calls/MACs,
/// ε values drawn, scratch high water. Fully deterministic — the counters are exact deltas
/// around each request, independent of whatever ran on this thread before.
pub fn obs_profile_json(reduced: bool) -> Json {
    let samples = 8usize;
    let spec = ModelSpec::lenet(7);
    let mut replica = ServeReplica::build(&EngineSpec::new(spec.clone()));
    let mut request = InferRequest {
        id: 0,
        arrival_tick: 0,
        input: crate::hot::fill_tensor(0xFEED, spec.input_shape()),
        samples,
        seed: 1,
    };
    let mut response =
        InferResponse { id: 0, samples: 0, mean: Vec::new(), variance: Vec::new(), entropy: 0.0 };
    let n = obs_profile_requests(reduced);
    let mut per_request = Vec::with_capacity(n);
    let mut totals = bnn_obs::ProfileSnapshot::default();
    for i in 0..n {
        request.id = i as u64;
        request.seed = 1 + i as u64;
        let profile = replica.answer_profiled(&request, &mut response);
        totals.gemm_calls.iter_mut().zip(profile.gemm_calls).for_each(|(t, v)| *t += v);
        totals.gemm_macs.iter_mut().zip(profile.gemm_macs).for_each(|(t, v)| *t += v);
        totals.epsilon_values += profile.epsilon_values;
        totals.scratch_high_water = totals.scratch_high_water.max(profile.scratch_high_water);
        per_request.push(profile);
    }
    assert!(
        per_request[0].epsilon_values > 0,
        "a Monte-Carlo answer must draw ε values through the counted path"
    );
    Json::obj([
        ("model", Json::Str("lenet".into())),
        ("samples", Json::UInt(samples as u64)),
        ("requests", Json::UInt(n as u64)),
        ("first_request", per_request[0].to_json()),
        ("totals", totals.to_json()),
    ])
}

/// Builds the deterministic summary document from a grid run — the committed
/// `BENCH_obs_summary.json` regression baseline.
pub fn obs_summary_json(grid: &[ObsRun], reduced: bool) -> Json {
    let records: Vec<Json> = grid
        .iter()
        .map(|run| {
            let report = &run.report;
            let traces = assemble_traces(&run.events).expect("grid runs assert well-formedness");
            let answered: Vec<&StageBreakdown> =
                traces.iter().filter(|t| t.breakdown.answered).map(|t| &t.breakdown).collect();
            let min_coverage = answered.iter().map(|b| b.coverage()).fold(f64::INFINITY, f64::min);
            let mut registry = Registry::from_events(&run.events);
            registry.record_traces(&traces);
            Json::obj([
                ("scenario", Json::Str(run.config.scenario.into())),
                ("arrival", Json::Str(run.config.arrival.label())),
                ("submitted", Json::UInt(report.submitted() as u64)),
                ("answered", Json::UInt(report.answered() as u64)),
                ("shed", Json::UInt(report.sheds.len() as u64)),
                ("events_recorded", Json::UInt(run.events.len() as u64)),
                ("min_coverage", Json::Float(min_coverage)),
                ("stage_attribution", stage_attribution_json(&answered)),
                ("responses_digest", Json::Str(report.responses_digest())),
                ("events_digest", Json::Str(report.events_digest())),
                ("fault_events_digest", Json::Str(report.fault_events_digest())),
                ("stream_digest", Json::Str(export::digest(&export::stream_json(&run.events)))),
                ("metrics_digest", Json::Str(export::digest(&registry.to_json()))),
                (
                    "prometheus_digest",
                    Json::Str(shift_bnn::sweep::json::fnv1a_hex(registry.to_prometheus().bytes())),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("shift-bnn-obs-summary/v1".into())),
        ("reduced", Json::Bool(reduced)),
        (
            "workload",
            Json::obj([
                ("requests", Json::UInt(chaos_request_count(reduced) as u64)),
                ("interarrival_ticks", Json::UInt(CHAOS_INTERARRIVAL_TICKS)),
                ("samples", Json::UInt(CHAOS_SAMPLES as u64)),
                ("seed", Json::UInt(CHAOS_WORKLOAD_SEED)),
            ]),
        ),
        ("records", Json::Array(records)),
        ("profile", obs_profile_json(reduced)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_storm_then_two_tier() {
        let configs = obs_configs(true, 1);
        assert_eq!(configs.len(), 5);
        assert!(configs[..4].iter().all(|c| c.scenario == "crash_storm"));
        assert_eq!(configs[0].arrival.label(), "uniform");
        assert_eq!(configs[4].scenario, "two_tier");
        assert!(matches!(configs[4].cluster.routing, RoutingPolicy::TwoTier { .. }));
    }

    #[test]
    fn adversarial_storm_attributes_every_answered_tick() {
        // The acceptance golden in miniature: the adversarial-arrival crash storm — the
        // nastiest fault scenario the repo has — attributes 100% of every answered
        // request's latency, with nonzero queue, compute and retry-backoff mass.
        let grid = run_obs_grid(true, 1);
        let run = grid
            .iter()
            .find(|r| {
                r.config.scenario == "crash_storm" && r.config.arrival.label() == "adversarial150"
            })
            .expect("grid has the adversarial storm");
        let traces = assemble_traces(&run.events).unwrap();
        let answered: Vec<_> = traces.iter().filter(|t| t.breakdown.answered).collect();
        assert!(!answered.is_empty());
        assert!(answered.iter().all(|t| t.breakdown.coverage() == 1.0));
        assert!(answered.iter().any(|t| t.breakdown.queue > 0), "queueing must appear");
        assert!(answered.iter().all(|t| t.breakdown.compute > 0), "every answer computed");
        // Failover backoff shows up under the diurnal arrival in the reduced grid (the
        // adversarial spike sheds its victims instead of retrying them); assert the stage
        // is exercised — and attributed to an *answered* request — somewhere in the storm.
        assert!(
            grid.iter()
                .filter(|r| r.config.scenario == "crash_storm")
                .flat_map(|r| assemble_traces(&r.events).unwrap())
                .any(|t| t.breakdown.answered && t.breakdown.retry_backoff > 0),
            "the storm must send some answered request through failover backoff"
        );
    }

    #[test]
    fn two_tier_run_attributes_escalation_windows() {
        let grid = run_obs_grid(true, 1);
        let run = grid.last().expect("two_tier is the last record");
        assert_eq!(run.config.scenario, "two_tier");
        let traces = assemble_traces(&run.events).unwrap();
        assert!(
            traces.iter().any(|t| t.breakdown.escalation > 0),
            "some escalated request must spend ticks in the escalation window"
        );
    }

    #[test]
    fn reduced_grid_summary_is_worker_invariant() {
        let a = obs_summary_json(&run_obs_grid(true, 1), true);
        let b = obs_summary_json(&run_obs_grid(true, 3), true);
        assert_eq!(a.to_pretty(), b.to_pretty());
    }

    #[test]
    fn profile_counts_gemm_work_and_epsilon_volume() {
        let profile = obs_profile_json(true);
        let first = profile.get("first_request").unwrap();
        assert!(first.get("gemm_macs_total").unwrap().as_u64().unwrap() > 0);
        // 8 samples × one ε per Bayesian weight, word-parallel batches included.
        assert!(first.get("epsilon_values").unwrap().as_u64().unwrap() > 0);
    }
}
